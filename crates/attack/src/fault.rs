//! The fault injector: applies patch effects to perception frames.

use crate::patch::{CurvatureFault, RdFault};
use crate::schedule::AttackScheduler;
use adas_perception::PerceptionFrame;
use serde::{Deserialize, Serialize};

/// The three fault types of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultType {
    /// Adversarial patch on the lead vehicle's rear: relative-distance
    /// misprediction.
    RelativeDistance,
    /// Adversarial patch on the road: desired-curvature misprediction.
    DesiredCurvature,
    /// Both patches deployed.
    Mixed,
}

impl FaultType {
    /// All types, in the paper's table order.
    pub const ALL: [FaultType; 3] = [
        FaultType::RelativeDistance,
        FaultType::DesiredCurvature,
        FaultType::Mixed,
    ];

    /// Row label used in Table VI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultType::RelativeDistance => "Relative Distance",
            FaultType::DesiredCurvature => "Desired Curvature",
            FaultType::Mixed => "Mixed",
        }
    }

    /// Whether this fault perturbs the relative-distance output.
    #[must_use]
    pub fn targets_distance(self) -> bool {
        matches!(self, FaultType::RelativeDistance | FaultType::Mixed)
    }

    /// Whether this fault perturbs the desired-curvature output.
    #[must_use]
    pub fn targets_curvature(self) -> bool {
        matches!(self, FaultType::DesiredCurvature | FaultType::Mixed)
    }
}

impl std::fmt::Display for FaultType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full specification of the injected faults for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Which outputs are attacked.
    pub fault_type: FaultType,
    /// Lead-vehicle patch parameters (used when `fault_type` targets RD).
    pub rd: RdFault,
    /// Road patch parameters (used when `fault_type` targets curvature).
    pub curvature: CurvatureFault,
    /// When the attacker lets the channels go live. `Immediate` is the
    /// paper's fixed policy; `Context` holds everything back until a
    /// vulnerability predicate fires (see [`AttackScheduler`]).
    pub scheduler: AttackScheduler,
}

impl FaultSpec {
    /// The paper's default parameters for a fault type, with the road patch
    /// beginning at `patch_start_s`.
    #[must_use]
    pub fn new(fault_type: FaultType, patch_start_s: f64) -> Self {
        Self {
            fault_type,
            rd: RdFault::default(),
            curvature: CurvatureFault {
                patch_start_s,
                ..CurvatureFault::default()
            },
            scheduler: AttackScheduler::Immediate,
        }
    }

    /// The same spec under a different scheduling policy.
    #[must_use]
    pub fn scheduled(mut self, scheduler: AttackScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Ground-truth context the injector needs each step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultContext {
    /// Simulation clock, seconds.
    pub time: f64,
    /// Ego arc length, metres.
    pub ego_s: f64,
    /// Ego lateral offset from its lane center, metres. Under a road-patch
    /// attack this equals the divergence between the DNN's believed path
    /// (pinned to "centred") and reality, which is what breaks the camera's
    /// lead-vehicle path association.
    pub ego_d: f64,
    /// True bumper-to-bumper gap to the lead vehicle, if one exists.
    pub true_rd: Option<f64>,
    /// Ground-truth time-to-collision with the lead, seconds. `None` when
    /// there is no lead or the gap is opening. Context schedulers watch
    /// this to time the attack.
    pub ttc: Option<f64>,
    /// Road reference-line curvature at the ego's position, 1/m. Context
    /// schedulers use it to trigger on curve entry.
    pub road_curvature: f64,
}

/// Stateful injector: tracks activation times for the mitigation-time
/// metrics.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: Option<FaultSpec>,
    rd_active: bool,
    curvature_started: Option<f64>,
    first_activation: Option<f64>,
    fired: Option<f64>,
}

impl FaultInjector {
    /// Divergence between the believed path and the lead's position beyond
    /// which the camera drops the lead association during a road-patch
    /// attack, metres.
    pub const LEAD_ASSOCIATION_LIMIT: f64 = 1.0;

    /// An injector for the given spec.
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        Self {
            spec: Some(spec),
            rd_active: false,
            curvature_started: None,
            first_activation: None,
            fired: None,
        }
    }

    /// A no-op injector (fault-free runs).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            spec: None,
            rd_active: false,
            curvature_started: None,
            first_activation: None,
            fired: None,
        }
    }

    /// The spec, if any.
    #[must_use]
    pub fn spec(&self) -> Option<&FaultSpec> {
        self.spec.as_ref()
    }

    /// Time the first fault channel activated, if any.
    #[must_use]
    pub fn first_activation_time(&self) -> Option<f64> {
        self.first_activation
    }

    /// Time a context scheduler's vulnerability predicate first fired, if
    /// it has. Always `None` under `Immediate` scheduling.
    #[must_use]
    pub fn fired_time(&self) -> Option<f64> {
        self.fired
    }

    /// True when any fault channel perturbed the last frame.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rd_active || self.curvature_started.is_some()
    }

    fn mark_active(&mut self, time: f64) {
        if self.first_activation.is_none() {
            self.first_activation = Some(time);
        }
    }

    /// Applies the configured faults to `frame` in place. Returns `true`
    /// when anything was perturbed this step.
    pub fn apply(&mut self, frame: &mut PerceptionFrame, ctx: &FaultContext) -> bool {
        let Some(spec) = self.spec else {
            self.rd_active = false;
            return false;
        };
        // Scheduling gate. `Immediate` is always armed (the legacy path,
        // byte-for-byte). A context scheduler arms nothing until its
        // predicate first holds, then latches for the rest of the run —
        // the predicate is never consulted again, so it fires at most
        // once no matter how the world state evolves afterwards.
        let armed = match spec.scheduler {
            AttackScheduler::Immediate => true,
            AttackScheduler::Context(trigger) => {
                if self.fired.is_none()
                    && trigger.fires(ctx.time, ctx.ttc, ctx.ego_d, ctx.road_curvature)
                {
                    self.fired = Some(ctx.time);
                }
                self.fired.is_some()
            }
        };
        let mut active = false;

        // --- Lead-vehicle patch: escalating RD offset -----------------------
        self.rd_active = false;
        if !armed {
            return false;
        }
        if spec.fault_type.targets_distance() {
            if let (Some(true_rd), Some(lead)) = (ctx.true_rd, frame.lead.as_mut()) {
                if let Some(offset) = spec.rd.offset(true_rd) {
                    lead.distance += offset;
                    self.rd_active = true;
                    active = true;
                    self.mark_active(ctx.time);
                }
            }
        }

        // --- Road patch: curvature bias + poisoned path feedback ------------
        if spec.fault_type.targets_curvature() {
            if self.curvature_started.is_none() && spec.curvature.reached(ctx.ego_s) {
                self.curvature_started = Some(ctx.time);
                self.mark_active(ctx.time);
            }
            if let Some(start) = self.curvature_started {
                if spec.curvature.still_active(ctx.time - start) {
                    frame.desired_curvature += spec.curvature.delta_kappa();
                    if spec.curvature.poison_lane_feedback {
                        // The whole planned path is bent: its lane-centering
                        // component is gone (nothing downstream corrects the
                        // drift). The raw lane-line outputs remain usable,
                        // which is why LDW and the driver's predicted-lane-
                        // distance trigger still fire.
                        frame.path_centering = 0.0;
                        // Lead association: the camera matches the lead to
                        // the *believed* path. Once the bent path diverges
                        // from the lead's true position — the ego's own
                        // drift plus the path's curvature error projected to
                        // the lead's range — by more than the association
                        // limit, the lead is dropped and the ACC
                        // re-accelerates toward it (the paper's "aggressive
                        // acceleration toward the LV" that in turn activates
                        // the AEB).
                        // The association check runs against the *perceived*
                        // lead range — under a mixed attack the RD patch has
                        // already inflated it, so the bent path diverges
                        // past the limit immediately and the lateral channel
                        // dominates the outcome (the paper's observation
                        // that mixed attacks mostly end in A2).
                        if let Some(rd) = frame.lead.map(|l| l.distance) {
                            let path_error =
                                0.5 * spec.curvature.delta_kappa().abs() * rd * rd;
                            if ctx.ego_d.abs() + path_error > Self::LEAD_ASSOCIATION_LIMIT {
                                frame.lead = None;
                            }
                        }
                    }
                    active = true;
                }
            }
        }

        active
    }

    /// Resets activation state (new run).
    pub fn reset(&mut self) {
        self.rd_active = false;
        self.curvature_started = None;
        self.first_activation = None;
        self.fired = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_perception::{LeadPrediction, PerceptionFrame};

    fn frame_with_lead(rd: f64) -> PerceptionFrame {
        PerceptionFrame {
            lead: Some(LeadPrediction {
                distance: rd,
                closing_speed: 8.0,
                lead_speed: 13.0,
            }),
            ..PerceptionFrame::neutral(22.0)
        }
    }

    fn ctx(time: f64, ego_s: f64, true_rd: Option<f64>) -> FaultContext {
        FaultContext {
            time,
            ego_s,
            ego_d: 0.0,
            true_rd,
            ttc: None,
            road_curvature: 0.0,
        }
    }

    #[test]
    fn disabled_injector_is_identity() {
        let mut inj = FaultInjector::disabled();
        let mut f = frame_with_lead(50.0);
        let before = f;
        assert!(!inj.apply(&mut f, &ctx(0.0, 0.0, Some(50.0))));
        assert_eq!(f, before);
        assert!(!inj.is_active());
    }

    #[test]
    fn rd_fault_adds_tiered_offset() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::RelativeDistance, 1e9));
        let mut f = frame_with_lead(50.0);
        assert!(inj.apply(&mut f, &ctx(1.0, 0.0, Some(50.0))));
        assert!((f.lead.unwrap().distance - 60.0).abs() < 1e-9);
        assert_eq!(inj.first_activation_time(), Some(1.0));

        let mut f2 = frame_with_lead(18.0);
        let _ = inj.apply(&mut f2, &ctx(2.0, 0.0, Some(18.0)));
        assert!((f2.lead.unwrap().distance - 56.0).abs() < 1e-9);
    }

    #[test]
    fn rd_fault_inactive_outside_range() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::RelativeDistance, 1e9));
        let mut f = frame_with_lead(100.0);
        assert!(!inj.apply(&mut f, &ctx(0.0, 0.0, Some(100.0))));
        assert!((f.lead.unwrap().distance - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rd_fault_does_not_touch_curvature() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::RelativeDistance, 0.0));
        let mut f = frame_with_lead(50.0);
        let _ = inj.apply(&mut f, &ctx(0.0, 500.0, Some(50.0)));
        assert_eq!(f.desired_curvature, 0.0);
    }

    #[test]
    fn curvature_fault_triggers_at_patch() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::DesiredCurvature, 150.0));
        let mut f = frame_with_lead(50.0);
        assert!(!inj.apply(&mut f, &ctx(0.0, 100.0, Some(50.0))));
        assert_eq!(f.desired_curvature, 0.0);
        assert!(inj.apply(&mut f, &ctx(5.0, 151.0, Some(50.0))));
        let expected = CurvatureFault::default().delta_kappa();
        assert!((f.desired_curvature - expected).abs() < 1e-12);
        // The bent path loses its centering; the raw lane lines stay honest
        // and a nearby lead stays associated while the divergence is small.
        assert_eq!(f.path_centering, 0.0);
        assert!(f.lead.is_some());
        assert!((f.lanes.lane_width() - 3.5).abs() < 1e-9);
        assert_eq!(inj.first_activation_time(), Some(5.0));
    }

    #[test]
    fn curvature_fault_drops_lead_once_path_diverges() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::DesiredCurvature, 150.0));
        // Drifted 0.9 m: divergence 0.9 + 0.5·Δκ·rd² > 1.0 at rd = 50.
        let mut f = frame_with_lead(50.0);
        let mut c = ctx(5.0, 151.0, Some(50.0));
        c.ego_d = 0.9;
        assert!(inj.apply(&mut f, &c));
        assert!(f.lead.is_none());
        // Far leads are dropped even without drift (path error grows with
        // range squared).
        let mut f2 = frame_with_lead(90.0);
        let _ = inj.apply(&mut f2, &ctx(6.0, 160.0, Some(90.0)));
        assert!(f2.lead.is_none());
    }

    #[test]
    fn curvature_fault_persists_when_duration_none() {
        let mut spec = FaultSpec::new(FaultType::DesiredCurvature, 150.0);
        spec.curvature.duration = None;
        let mut inj = FaultInjector::new(spec);
        let mut f = frame_with_lead(50.0);
        let _ = inj.apply(&mut f, &ctx(5.0, 151.0, Some(50.0)));
        let mut f2 = frame_with_lead(50.0);
        assert!(inj.apply(&mut f2, &ctx(50.0, 1200.0, Some(50.0))));
    }

    #[test]
    fn curvature_fault_expires_with_duration() {
        let mut spec = FaultSpec::new(FaultType::DesiredCurvature, 150.0);
        spec.curvature.duration = Some(2.0);
        let mut inj = FaultInjector::new(spec);
        let mut f = frame_with_lead(50.0);
        let _ = inj.apply(&mut f, &ctx(5.0, 151.0, Some(50.0)));
        let mut f2 = frame_with_lead(50.0);
        assert!(!inj.apply(&mut f2, &ctx(8.0, 220.0, Some(50.0))));
        assert_eq!(f2.desired_curvature, 0.0);
    }

    #[test]
    fn mixed_fault_hits_both_channels() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::Mixed, 150.0));
        let mut f = frame_with_lead(50.0);
        assert!(inj.apply(&mut f, &ctx(1.0, 200.0, Some(50.0))));
        // Both channels active: bent path plus RD offset. The inflated
        // perceived range pushes the path divergence past the association
        // limit, so the lead is dropped — the lateral channel dominates
        // mixed attacks, as in the paper.
        assert!(f.desired_curvature > 0.0);
        assert_eq!(f.path_centering, 0.0);
        assert!(f.lead.is_none());
        // With a close lead (small divergence) the RD offset shows through.
        let mut inj2 = FaultInjector::new(FaultSpec::new(FaultType::Mixed, 150.0));
        let mut f3 = frame_with_lead(22.0);
        assert!(inj2.apply(&mut f3, &ctx(1.0, 200.0, Some(22.0))));
        assert!((f3.lead.unwrap().distance - 37.0).abs() < 1e-9);
    }

    #[test]
    fn no_lead_means_no_rd_fault() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::RelativeDistance, 1e9));
        let mut f = PerceptionFrame::neutral(22.0);
        assert!(!inj.apply(&mut f, &ctx(0.0, 0.0, None)));
    }

    #[test]
    fn reset_clears_activation() {
        let mut inj = FaultInjector::new(FaultSpec::new(FaultType::Mixed, 150.0));
        let mut f = frame_with_lead(50.0);
        let _ = inj.apply(&mut f, &ctx(1.0, 200.0, Some(50.0)));
        inj.reset();
        assert!(inj.first_activation_time().is_none());
        assert!(!inj.is_active());
    }

    #[test]
    fn context_scheduler_gates_both_channels_until_predicate_fires() {
        use crate::schedule::{AttackScheduler, ContextTrigger};
        let spec = FaultSpec::new(FaultType::Mixed, 150.0)
            .scheduled(AttackScheduler::Context(ContextTrigger::ttc(3.0)));
        let mut inj = FaultInjector::new(spec);
        // World state not yet vulnerable: an Immediate attack would have
        // perturbed both channels here (ego past patch, lead in RD range).
        let mut f = frame_with_lead(50.0);
        let mut c = ctx(1.0, 200.0, Some(50.0));
        c.ttc = Some(8.0);
        assert!(!inj.apply(&mut f, &c));
        assert_eq!(f, frame_with_lead(50.0));
        assert!(inj.fired_time().is_none());
        assert!(inj.first_activation_time().is_none());
        // TTC collapses: the latch fires and both channels go live.
        let mut f2 = frame_with_lead(50.0);
        let mut c2 = ctx(2.0, 220.0, Some(50.0));
        c2.ttc = Some(2.5);
        assert!(inj.apply(&mut f2, &c2));
        assert_eq!(inj.fired_time(), Some(2.0));
        assert!(f2.desired_curvature > 0.0);
    }

    #[test]
    fn context_latch_fires_at_most_once_and_never_rearms() {
        use crate::schedule::{AttackScheduler, ContextTrigger};
        let spec = FaultSpec::new(FaultType::RelativeDistance, 1e9)
            .scheduled(AttackScheduler::Context(ContextTrigger::ttc(3.0)));
        let mut inj = FaultInjector::new(spec);
        let mut f = frame_with_lead(50.0);
        let mut c = ctx(1.0, 100.0, Some(50.0));
        c.ttc = Some(2.0);
        assert!(inj.apply(&mut f, &c));
        assert_eq!(inj.fired_time(), Some(1.0));
        // The world leaves the vulnerable region again — the latch holds
        // and the fire time never moves.
        for step in 2..10 {
            let mut fs = frame_with_lead(50.0);
            let mut cs = ctx(f64::from(step), 100.0, Some(50.0));
            cs.ttc = Some(40.0);
            assert!(inj.apply(&mut fs, &cs));
            assert_eq!(inj.fired_time(), Some(1.0));
        }
    }

    #[test]
    fn context_curvature_duration_is_anchored_at_fire_time() {
        use crate::schedule::{AttackScheduler, ContextTrigger};
        let mut spec = FaultSpec::new(FaultType::DesiredCurvature, 150.0)
            .scheduled(AttackScheduler::Context(ContextTrigger::ttc(3.0)));
        spec.curvature.duration = Some(2.0);
        let mut inj = FaultInjector::new(spec);
        // Ego passed the patch long ago, but the channel only starts when
        // the predicate fires — so the duration window opens at t=10.
        let mut c = ctx(10.0, 400.0, Some(30.0));
        c.ttc = Some(1.0);
        let mut f = frame_with_lead(30.0);
        assert!(inj.apply(&mut f, &c));
        let mut f2 = frame_with_lead(30.0);
        assert!(inj.apply(&mut f2, &ctx(11.5, 430.0, Some(30.0))));
        let mut f3 = frame_with_lead(30.0);
        assert!(!inj.apply(&mut f3, &ctx(12.5, 450.0, Some(30.0))));
        assert_eq!(f3.desired_curvature, 0.0);
    }

    #[test]
    fn reset_clears_the_context_latch() {
        use crate::schedule::{AttackScheduler, ContextTrigger};
        let spec = FaultSpec::new(FaultType::RelativeDistance, 1e9)
            .scheduled(AttackScheduler::Context(ContextTrigger::ttc(3.0)));
        let mut inj = FaultInjector::new(spec);
        let mut f = frame_with_lead(50.0);
        let mut c = ctx(1.0, 100.0, Some(50.0));
        c.ttc = Some(2.0);
        let _ = inj.apply(&mut f, &c);
        assert!(inj.fired_time().is_some());
        inj.reset();
        assert!(inj.fired_time().is_none());
        // After reset the gate is closed again until the predicate refires.
        let mut f2 = frame_with_lead(50.0);
        assert!(!inj.apply(&mut f2, &ctx(2.0, 100.0, Some(50.0))));
    }
}
