//! Source-level fault-injection engine emulating adversarial patch attacks.
//!
//! The paper emulates physical patches (on the lead vehicle's rear, or on
//! the road surface) by perturbing the perception DNN's outputs directly,
//! with parameters taken from prior physical-attack studies (Table III):
//!
//! | Type   | Target variable    | Attack timing                  | Value    |
//! |--------|--------------------|--------------------------------|----------|
//! | Single | Relative distance  | RD < 80 m                      | 10–38 m  |
//! | Single | Desired curvature  | ego drives over the road patch | 3 % FS   |
//! | Mixed  | RD & curvature     | either condition               | as above |
//!
//! The relative-distance offsets escalate as the true gap closes — +10 m
//! below 80 m, +15 m below 25 m, +38 m below 20 m — mirroring the
//! patch-perception behaviour measured by the ACC-attack study the paper
//! draws its numbers from.
//!
//! For the road-patch (curvature) attack, the Dirty-Road-Patch style
//! perturbation bends the *perceived path*: both the desired curvature and
//! the lane-position outputs of the DNN are consistent with the poisoned
//! path, so the injector offsets the curvature and pins the perceived lane
//! position to "centred". Human eyes are unaffected; only DNN outputs are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod patch;
mod schedule;

pub use fault::{FaultContext, FaultInjector, FaultSpec, FaultType};
pub use patch::{rd_offset_for, CurvatureFault, RdFault, RD_TRIGGER_RANGE};
pub use schedule::{AttackScheduler, ContextTrigger};
