//! Parameterisations of the two physical patches.

use serde::{Deserialize, Serialize};

/// Maximum true relative distance at which the lead-vehicle patch is
/// perceived and the RD fault activates, metres (paper Table III).
pub const RD_TRIGGER_RANGE: f64 = 80.0;

/// The escalating RD offset for a given true relative distance, following
/// the paper's tiering: +10 m below 80 m, +15 m below 25 m, +38 m below
/// 20 m; `None` outside the patch's effective range.
#[must_use]
pub fn rd_offset_for(true_rd: f64) -> Option<f64> {
    if true_rd < 20.0 {
        Some(38.0)
    } else if true_rd < 25.0 {
        Some(15.0)
    } else if true_rd < RD_TRIGGER_RANGE {
        Some(10.0)
    } else {
        None
    }
}

/// Parameters of the lead-vehicle rear patch (ACC attack).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdFault {
    /// Activation range, metres.
    pub trigger_range: f64,
    /// Scale applied to the tiered offsets (1.0 = paper values), for
    /// ablation studies.
    pub offset_scale: f64,
}

impl Default for RdFault {
    fn default() -> Self {
        Self {
            trigger_range: RD_TRIGGER_RANGE,
            offset_scale: 1.0,
        }
    }
}

impl RdFault {
    /// Offset to add to the perceived distance, if the patch is effective at
    /// this true distance.
    #[must_use]
    pub fn offset(&self, true_rd: f64) -> Option<f64> {
        if true_rd >= self.trigger_range {
            return None;
        }
        rd_offset_for(true_rd.min(RD_TRIGGER_RANGE - 1e-9)).map(|o| o * self.offset_scale)
    }
}

/// Parameters of the road patch (ALC attack).
///
/// The curvature deviation is specified as the paper's 3 % of the lateral
/// planner's full-scale curvature range; the default full scale of
/// ±0.03 1/m puts the injected bias at 9×10⁻⁴ 1/m — enough to drift a
/// highway-speed vehicle across its lane within a few seconds, matching the
/// attack-success timing of the Dirty-Road-Patch study the paper replays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvatureFault {
    /// Arc length at which the patch area begins, metres.
    pub patch_start_s: f64,
    /// Fractional deviation (0.03 = the paper's 3 %).
    pub deviation: f64,
    /// Full-scale curvature the deviation is relative to, 1/m.
    pub full_scale: f64,
    /// Sign of the induced drift (+1 drifts left).
    pub direction: f64,
    /// How long the DNN outputs stay poisoned once triggered, seconds
    /// (`None` = for the rest of the run, i.e. the patch stays in view).
    pub duration: Option<f64>,
    /// Whether the poisoned path also pins the perceived lane position to
    /// centred (true for Dirty-Road-Patch style attacks, where the whole
    /// path model is bent).
    pub poison_lane_feedback: bool,
}

impl Default for CurvatureFault {
    fn default() -> Self {
        Self {
            patch_start_s: 150.0,
            deviation: 0.03,
            full_scale: 0.024,
            direction: 1.0,
            duration: Some(12.0),
            poison_lane_feedback: true,
        }
    }
}

impl CurvatureFault {
    /// The injected curvature offset, 1/m.
    #[must_use]
    pub fn delta_kappa(&self) -> f64 {
        self.direction.signum() * self.deviation * self.full_scale
    }

    /// True when the ego at arc length `s` has reached the patch.
    #[must_use]
    pub fn reached(&self, ego_s: f64) -> bool {
        ego_s >= self.patch_start_s
    }

    /// True when the fault is still in effect at `elapsed` seconds after
    /// activation.
    #[must_use]
    pub fn still_active(&self, elapsed: f64) -> bool {
        self.duration.is_none_or(|d| elapsed <= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tiering_matches_table_iii() {
        assert_eq!(rd_offset_for(79.0), Some(10.0));
        assert_eq!(rd_offset_for(30.0), Some(10.0));
        assert_eq!(rd_offset_for(24.0), Some(15.0));
        assert_eq!(rd_offset_for(19.0), Some(38.0));
        assert_eq!(rd_offset_for(5.0), Some(38.0));
        assert_eq!(rd_offset_for(80.0), None);
        assert_eq!(rd_offset_for(120.0), None);
    }

    #[test]
    fn rd_fault_respects_custom_range() {
        let f = RdFault {
            trigger_range: 50.0,
            offset_scale: 1.0,
        };
        assert_eq!(f.offset(60.0), None);
        assert_eq!(f.offset(40.0), Some(10.0));
    }

    #[test]
    fn rd_fault_scales_offsets() {
        let f = RdFault {
            offset_scale: 0.5,
            ..RdFault::default()
        };
        assert_eq!(f.offset(19.0), Some(19.0));
    }

    #[test]
    fn curvature_delta_is_three_percent_of_full_scale() {
        let f = CurvatureFault::default();
        assert!((f.delta_kappa() - 0.03 * f.full_scale).abs() < 1e-12);
        let right = CurvatureFault {
            direction: -1.0,
            ..CurvatureFault::default()
        };
        assert!(right.delta_kappa() < 0.0);
    }

    #[test]
    fn patch_trigger_position() {
        let f = CurvatureFault::default();
        assert!(!f.reached(100.0));
        assert!(f.reached(150.0));
        assert!(f.reached(400.0));
    }

    #[test]
    fn duration_bounds_activity() {
        let forever = CurvatureFault {
            duration: None,
            ..CurvatureFault::default()
        };
        assert!(forever.still_active(1e6));
        let brief = CurvatureFault {
            duration: Some(2.0),
            ..CurvatureFault::default()
        };
        assert!(brief.still_active(1.9));
        assert!(!brief.still_active(2.1));
        // The default models driving past a finite road patch.
        let default = CurvatureFault::default();
        assert!(default.still_active(5.0));
        assert!(!default.still_active(20.0));
    }

    proptest! {
        #[test]
        fn offsets_monotone_nonincreasing_range(rd in 0.0f64..200.0) {
            // Offsets only grow as the gap shrinks.
            if let Some(o) = rd_offset_for(rd) {
                prop_assert!((10.0..=38.0).contains(&o));
                if let Some(closer) = rd_offset_for((rd - 6.0).max(0.0)) {
                    prop_assert!(closer >= o);
                }
            } else {
                prop_assert!(rd >= RD_TRIGGER_RANGE);
            }
        }
    }
}
