//! Context-aware attack scheduling.
//!
//! The paper's faults activate on fixed spatial/range triggers (the ego
//! reaches the road patch, the lead enters the RD patch's range). Strategic
//! attackers do better: "Strategic Safety-Critical Attacks Against an ADAS"
//! (Zhou et al.) shows that triggering the perturbation when the world
//! state is most vulnerable — small time-to-collision, mid-curve, already
//! drifted — defeats interventions that comfortably absorb a naively-timed
//! attack. [`AttackScheduler`] is that timing policy: the default
//! [`AttackScheduler::Immediate`] reproduces the paper's behaviour exactly,
//! while [`AttackScheduler::Context`] holds every fault channel back until
//! a configurable vulnerability predicate first fires, then latches.

use serde::{Deserialize, Serialize};

/// A conjunction of world-state vulnerability conditions. Disabled atoms
/// (`None`) are ignored; all enabled atoms must hold simultaneously, and
/// nothing fires before [`ContextTrigger::arm_after`] seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextTrigger {
    /// Fire once ground-truth TTC to the lead drops to this many seconds
    /// or below. A missing lead (no TTC) never satisfies the atom.
    pub ttc_below: Option<f64>,
    /// Fire once the ego's absolute lateral offset from its lane center
    /// reaches this many metres.
    pub lane_excursion_above: Option<f64>,
    /// Fire once the road's absolute reference-line curvature at the ego
    /// reaches this value (1/m) — i.e. on curve entry.
    pub curvature_above: Option<f64>,
    /// Earliest firing time, seconds. With every atom disabled this makes
    /// the trigger a pure delay timer.
    pub arm_after: f64,
}

impl Default for ContextTrigger {
    fn default() -> Self {
        Self {
            ttc_below: None,
            lane_excursion_above: None,
            curvature_above: None,
            arm_after: 0.0,
        }
    }
}

impl ContextTrigger {
    /// A trigger on ground-truth TTC alone.
    #[must_use]
    pub fn ttc(threshold: f64) -> Self {
        Self {
            ttc_below: Some(threshold),
            ..Self::default()
        }
    }

    /// Whether the vulnerability predicate holds for this world state.
    #[must_use]
    pub fn fires(&self, time: f64, ttc: Option<f64>, ego_d: f64, road_curvature: f64) -> bool {
        if time < self.arm_after {
            return false;
        }
        if let Some(limit) = self.ttc_below {
            match ttc {
                Some(t) if t <= limit => {}
                _ => return false,
            }
        }
        if let Some(limit) = self.lane_excursion_above {
            if ego_d.abs() < limit {
                return false;
            }
        }
        if let Some(limit) = self.curvature_above {
            if road_curvature.abs() < limit {
                return false;
            }
        }
        true
    }
}

/// When the injector is allowed to perturb perception.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AttackScheduler {
    /// The paper's fixed policy: fault channels are live from the first
    /// step and activate on their own spatial/range conditions alone.
    #[default]
    Immediate,
    /// Zhou et al.-style strategic policy: every channel is held back
    /// until the context predicate first fires, then stays armed for the
    /// rest of the run (a one-shot latch).
    Context(ContextTrigger),
}

impl AttackScheduler {
    /// True for the legacy fixed-offset policy.
    #[must_use]
    pub fn is_immediate(&self) -> bool {
        matches!(self, AttackScheduler::Immediate)
    }

    /// Compact human label, e.g. `immediate` or `ttc<2.50,arm>10.0`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AttackScheduler::Immediate => "immediate".to_owned(),
            AttackScheduler::Context(t) => {
                let mut parts = Vec::new();
                if let Some(v) = t.ttc_below {
                    parts.push(format!("ttc<{v}"));
                }
                if let Some(v) = t.lane_excursion_above {
                    parts.push(format!("lane>{v}"));
                }
                if let Some(v) = t.curvature_above {
                    parts.push(format!("curv>{v}"));
                }
                if t.arm_after > 0.0 {
                    parts.push(format!("arm>{}", t.arm_after));
                }
                if parts.is_empty() {
                    "context".to_owned()
                } else {
                    parts.join(",")
                }
            }
        }
    }

    /// Parses the `ADAS_ATTACK` knob syntax: `immediate`, or a
    /// comma-separated list of `ttc<S`, `lane>M`, `curv>K`, `arm>S` atoms
    /// (e.g. `ttc<2.5,arm>10`). `None` on any unrecognised atom or
    /// non-finite threshold.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.is_empty() || text.eq_ignore_ascii_case("immediate") {
            return Some(AttackScheduler::Immediate);
        }
        let mut trig = ContextTrigger::default();
        for atom in text.split(',') {
            let atom = atom.trim();
            let value_of = |rest: &str| -> Option<f64> {
                let v = rest.trim().parse::<f64>().ok()?;
                v.is_finite().then_some(v)
            };
            if let Some(rest) = atom.strip_prefix("ttc<") {
                trig.ttc_below = Some(value_of(rest)?);
            } else if let Some(rest) = atom.strip_prefix("lane>") {
                trig.lane_excursion_above = Some(value_of(rest)?);
            } else if let Some(rest) = atom.strip_prefix("curv>") {
                trig.curvature_above = Some(value_of(rest)?);
            } else if let Some(rest) = atom.strip_prefix("arm>") {
                trig.arm_after = value_of(rest)?;
            } else {
                return None;
            }
        }
        Some(AttackScheduler::Context(trig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_is_the_default() {
        assert_eq!(AttackScheduler::default(), AttackScheduler::Immediate);
        assert!(AttackScheduler::Immediate.is_immediate());
        assert!(!AttackScheduler::Context(ContextTrigger::ttc(2.0)).is_immediate());
    }

    #[test]
    fn ttc_atom_requires_a_closing_lead() {
        let t = ContextTrigger::ttc(3.0);
        assert!(t.fires(1.0, Some(2.5), 0.0, 0.0));
        assert!(t.fires(1.0, Some(3.0), 0.0, 0.0));
        assert!(!t.fires(1.0, Some(3.1), 0.0, 0.0));
        // No lead / not closing: never vulnerable by TTC.
        assert!(!t.fires(1.0, None, 0.0, 0.0));
        assert!(!t.fires(1.0, Some(f64::INFINITY), 0.0, 0.0));
    }

    #[test]
    fn atoms_are_a_conjunction() {
        let t = ContextTrigger {
            ttc_below: Some(3.0),
            curvature_above: Some(1e-3),
            ..ContextTrigger::default()
        };
        assert!(!t.fires(0.0, Some(2.0), 0.0, 0.0)); // straight road
        assert!(!t.fires(0.0, Some(9.0), 0.0, 2e-3)); // TTC too large
        assert!(t.fires(0.0, Some(2.0), 0.0, 2e-3));
        assert!(t.fires(0.0, Some(2.0), 0.0, -2e-3)); // curve direction agnostic
    }

    #[test]
    fn arm_after_delays_every_atom() {
        let t = ContextTrigger {
            arm_after: 10.0,
            ..ContextTrigger::ttc(3.0)
        };
        assert!(!t.fires(9.99, Some(1.0), 0.0, 0.0));
        assert!(t.fires(10.0, Some(1.0), 0.0, 0.0));
        // Pure delay timer when no atom is enabled.
        let delay = ContextTrigger {
            arm_after: 5.0,
            ..ContextTrigger::default()
        };
        assert!(!delay.fires(4.0, None, 0.0, 0.0));
        assert!(delay.fires(5.0, None, 0.0, 0.0));
    }

    #[test]
    fn lane_excursion_is_side_agnostic() {
        let t = ContextTrigger {
            lane_excursion_above: Some(0.6),
            ..ContextTrigger::default()
        };
        assert!(t.fires(0.0, None, 0.7, 0.0));
        assert!(t.fires(0.0, None, -0.7, 0.0));
        assert!(!t.fires(0.0, None, 0.5, 0.0));
    }

    #[test]
    fn parse_round_trips_the_env_syntax() {
        assert_eq!(
            AttackScheduler::parse("immediate"),
            Some(AttackScheduler::Immediate)
        );
        assert_eq!(AttackScheduler::parse(""), Some(AttackScheduler::Immediate));
        let parsed = AttackScheduler::parse("ttc<2.5, lane>0.6 ,curv>0.002,arm>10").unwrap();
        assert_eq!(
            parsed,
            AttackScheduler::Context(ContextTrigger {
                ttc_below: Some(2.5),
                lane_excursion_above: Some(0.6),
                curvature_above: Some(0.002),
                arm_after: 10.0,
            })
        );
        assert_eq!(AttackScheduler::parse("ttc<oops"), None);
        assert_eq!(AttackScheduler::parse("banana"), None);
        assert_eq!(AttackScheduler::parse("ttc<inf"), None);
    }

    #[test]
    fn labels_are_compact_and_distinct() {
        assert_eq!(AttackScheduler::Immediate.label(), "immediate");
        let a = AttackScheduler::parse("ttc<2.5,arm>10").unwrap();
        assert_eq!(a.label(), "ttc<2.5,arm>10");
        assert_eq!(
            AttackScheduler::Context(ContextTrigger::default()).label(),
            "context"
        );
    }
}
