//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the close-range blindness radius, the ACC's closing-speed tracker time
//! constant, and the RD-offset scale — measuring their effect on run
//! outcome (encoded as completed steps: shorter = earlier accident).

use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_core::{InterventionConfig, Platform, PlatformConfig};
use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::DeterministicRng;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn run_with(
    mutate: impl Fn(&mut PlatformConfig, &mut FaultSpec),
) -> u64 {
    let mut rng = DeterministicRng::for_run(7, 0, 0, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
    let mut config = PlatformConfig::with_interventions(InterventionConfig::none());
    let mut spec = FaultSpec::new(FaultType::RelativeDistance, setup.patch_start_s);
    mutate(&mut config, &mut spec);
    let mut platform = Platform::new(&setup, config, FaultInjector::new(spec), None, &mut rng);
    platform.run().steps
}

fn bench_blindness_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_blind_range");
    group.sample_size(10);
    for blind in [0.0_f64, 2.0, 5.0] {
        group.bench_function(format!("blind_{blind:.0}m"), |b| {
            b.iter_batched(
                || (),
                |()| {
                    black_box(run_with(|cfg, _| {
                        cfg.perception.blind_range = blind;
                    }))
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_tracker_tau(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_closing_tau");
    group.sample_size(10);
    for tau in [0.4_f64, 1.6, 3.2] {
        group.bench_function(format!("tau_{tau:.1}s"), |b| {
            b.iter_batched(
                || (),
                |()| {
                    black_box(run_with(|cfg, _| {
                        cfg.adas.acc.closing_tau = tau;
                    }))
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_offset_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rd_offset_scale");
    group.sample_size(10);
    for scale in [0.5_f64, 1.0, 2.0] {
        group.bench_function(format!("scale_{scale:.1}x"), |b| {
            b.iter_batched(
                || (),
                |()| {
                    black_box(run_with(|_, spec| {
                        spec.rd.offset_scale = scale;
                    }))
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_blindness_radius,
    bench_tracker_tau,
    bench_offset_scale
);
criterion_main!(benches);
