//! Criterion benchmarks of the full closed-loop platform: cost of one
//! 10 ms cycle and of complete runs, with and without attack/interventions.

use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_core::{InterventionConfig, Platform, PlatformConfig};
use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::DeterministicRng;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn make_platform(iv: InterventionConfig, fault: Option<FaultType>) -> Platform {
    let mut rng = DeterministicRng::for_run(7, 0, 0, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
    let injector = match fault {
        Some(ft) => FaultInjector::new(FaultSpec::new(ft, setup.patch_start_s)),
        None => FaultInjector::disabled(),
    };
    Platform::new(
        &setup,
        PlatformConfig::with_interventions(iv),
        injector,
        None,
        &mut rng,
    )
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform_step");
    group.bench_function("benign_no_interventions", |b| {
        let mut p = make_platform(InterventionConfig::none(), None);
        b.iter(|| black_box(p.step()));
    });
    group.bench_function("attacked_all_interventions", |b| {
        let mut p = make_platform(
            InterventionConfig::driver_check_aeb_independent(),
            Some(FaultType::Mixed),
        );
        b.iter(|| black_box(p.step()));
    });
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform_run");
    group.sample_size(10);
    group.bench_function("rd_attack_aeb_independent", |b| {
        b.iter_batched(
            || {
                make_platform(
                    InterventionConfig::aeb_independent_only(),
                    Some(FaultType::RelativeDistance),
                )
            },
            |mut p| black_box(p.run()),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_step, bench_full_run);
criterion_main!(benches);
