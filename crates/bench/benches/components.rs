//! Criterion micro-benchmarks for every substrate: how much each subsystem
//! costs per 10 ms control cycle.

use adas_control::{AccConfig, AccController, AdasConfig, AdasController, AlcConfig, AlcController};
use adas_ml::{
    ControlTarget, Cusum, LstmPredictor, MitigationConfig, MlMitigator, ModelSpec, StateFeatures,
};
use adas_perception::{LeadPrediction, PerceptionConfig, PerceptionEmulator, PerceptionFrame};
use adas_safety::{
    arbitrate, Aebs, AebsConfig, AebsMode, ArbiterInputs, DriverAction, DriverConfig,
    DriverInputs, DriverModel, SafetyCheck,
};
use adas_simulator::{
    units::mph, DeterministicRng, Npc, NpcPlan, RoadBuilder, SurfaceFriction, Vehicle,
    VehicleCommand, VehicleParams, World, WorldConfig,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_vehicle_step(c: &mut Criterion) {
    let road = RoadBuilder::curvy_highway(4000.0).build();
    let mu = SurfaceFriction::default();
    c.bench_function("vehicle_step", |b| {
        let mut car = Vehicle::new(VehicleParams::sedan(), 100.0, 0.0, 22.0);
        let cmd = VehicleCommand {
            gas: 0.3,
            brake: 0.0,
            steer: 0.01,
        };
        b.iter(|| {
            car.step(black_box(cmd), &road, mu, 0.01);
            black_box(car.state().s)
        });
    });
}

fn bench_road_queries(c: &mut Criterion) {
    let road = RoadBuilder::curvy_highway(4000.0).build();
    c.bench_function("road_curvature_at", |b| {
        let mut s = 0.0;
        b.iter(|| {
            s = (s + 13.7) % 4000.0;
            black_box(road.curvature_at(black_box(s)))
        });
    });
}

fn bench_perception(c: &mut Criterion) {
    let road = RoadBuilder::straight_highway(3000.0).build();
    let mut world = World::new(WorldConfig::default(), road);
    world.spawn_ego(0.0, mph(50.0));
    world.add_npc(Npc::new(
        VehicleParams::sedan(),
        60.0,
        0.0,
        mph(30.0),
        NpcPlan::cruise(),
    ));
    let mut perception =
        PerceptionEmulator::new(PerceptionConfig::default(), DeterministicRng::from_seed(1));
    c.bench_function("perception_perceive", |b| {
        b.iter(|| black_box(perception.perceive(&world)))
    });
}

fn bench_controllers(c: &mut Criterion) {
    let frame = PerceptionFrame {
        lead: Some(LeadPrediction {
            distance: 40.0,
            closing_speed: 5.0,
            lead_speed: 13.0,
        }),
        ..PerceptionFrame::neutral(mph(50.0))
    };
    c.bench_function("acc_plan", |b| {
        let mut acc = AccController::new(AccConfig::default());
        b.iter(|| black_box(acc.plan(black_box(&frame), 0.01)))
    });
    c.bench_function("alc_steer", |b| {
        let mut alc = AlcController::new(AlcConfig::default());
        b.iter(|| black_box(alc.steer(black_box(&frame), 0.01)))
    });
    c.bench_function("adas_full_control", |b| {
        let mut adas = AdasController::new(AdasConfig::default());
        b.iter(|| black_box(adas.control(black_box(&frame), 0.01)))
    });
}

fn bench_safety(c: &mut Criterion) {
    c.bench_function("aebs_evaluate", |b| {
        let mut aebs = Aebs::new(AebsConfig::default(), AebsMode::Independent);
        b.iter(|| black_box(aebs.evaluate(Some((40.0, 8.0)), 22.0, 1.0)))
    });
    c.bench_function("driver_update", |b| {
        let mut driver = DriverModel::new(DriverConfig::default());
        let inputs = DriverInputs {
            time: 1.0,
            fcw_alert: false,
            ldw_alert: false,
            ego_speed: 22.0,
            adas_accel: 0.0,
            ego_accel: 0.0,
            true_lead: Some((40.0, 5.0)),
            cut_in: false,
            lateral_offset: 0.1,
            heading_error: 0.0,
            lane_line_distance: 0.7,
        };
        b.iter(|| black_box(driver.update(black_box(&inputs))))
    });
    c.bench_function("safety_check", |b| {
        let mut check = SafetyCheck::default();
        let cmd = adas_control::AdasCommand {
            accel: -5.0,
            steer: 0.2,
            lead_engaged: true,
        };
        b.iter(|| black_box(check.check(black_box(cmd), 0.01)))
    });
    c.bench_function("arbitrate", |b| {
        let params = VehicleParams::sedan();
        let inputs = ArbiterInputs {
            adas: adas_control::AdasCommand {
                accel: 1.0,
                steer: 0.01,
                lead_engaged: true,
            },
            ml: None,
            driver: DriverAction {
                brake: Some(0.55),
                steer: None,
            },
            aeb_brake: Some(0.9),
        };
        b.iter(|| black_box(arbitrate(black_box(&inputs), &params)))
    });
}

fn bench_ml(c: &mut Criterion) {
    c.bench_function("lstm_step_64_32", |b| {
        let model = LstmPredictor::new(ModelSpec::default());
        let mut state = model.init_state();
        let x = [0.5; adas_ml::FEATURE_DIM];
        b.iter(|| black_box(model.step(black_box(&x), &mut state)))
    });
    c.bench_function("ml_mitigator_update", |b| {
        let model = LstmPredictor::new(ModelSpec {
            hidden1: 64,
            hidden2: 32,
            seed: 1,
        });
        let mut mitigator = MlMitigator::new(model, MitigationConfig::default());
        let state = StateFeatures {
            ego_speed: 22.0,
            lead_distance: 40.0,
            closing_speed: 5.0,
            left_line: 1.75,
            right_line: 1.75,
            curvature: 0.0,
            heading: 0.0,
            prev_accel: 0.0,
            prev_steer: 0.0,
        };
        let op = ControlTarget {
            accel: -1.0,
            steer: 0.0,
        };
        let mut t = 0.0;
        b.iter(|| {
            t += 0.01;
            black_box(mitigator.update(black_box(&state), &op, t))
        })
    });
    c.bench_function("cusum_update", |b| {
        let mut cusum = Cusum::new(4.0, 0.12);
        b.iter(|| black_box(cusum.update(black_box(0.05))))
    });
}

criterion_group!(
    benches,
    bench_vehicle_step,
    bench_road_queries,
    bench_perception,
    bench_controllers,
    bench_safety,
    bench_ml
);
criterion_main!(benches);
