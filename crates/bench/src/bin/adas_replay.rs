//! `adas-replay` — flight-recorder toolbox: record campaign traces, verify
//! them by deterministic re-execution, diff two traces, and explain a trace
//! as a human-readable incident timeline.
//!
//! ```text
//! adas-replay record [--fault rd|curvature|mixed|none] [--row LABEL]
//!                    [--reps N] [--dir DIR]
//! adas-replay record --golden [--dir DIR]
//! adas-replay verify [--perturb friction=K] <trace.bin>...
//! adas-replay diff <a.bin> <b.bin>
//! adas-replay explain <trace.bin>
//! ```
//!
//! `verify` exits 0 when every trace replays bit-identically, 1 when any
//! trace diverged (a divergence report is also written to
//! `results/replay_divergence.txt`), and 2 on usage or I/O errors.
//! `--perturb friction=K` (or the `ADAS_REPLAY_PERTURB` environment
//! variable) scales surface friction during the re-execution — the
//! intentional one-line physics perturbation used to demonstrate that the
//! diff localises the first divergent step and field.

use adas_attack::FaultType;
use adas_bench::{model_fingerprint, trained_baseline_cached, CAMPAIGN_SEED};
use adas_core::{
    replay_trace, run_campaign_traced, run_single_traced, ArtifactCache, InterventionConfig,
    Perturbation, PlatformConfig, RunId, TraceSink,
};
use adas_ml::{LstmPredictor, ModelSpec};
use adas_recorder::{diff_traces, explain, DiffReport, RecordMode, Trace, TraceMode, TracePolicy};
use adas_scenarios::{InitialPosition, ScenarioId};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "adas-replay — flight-recorder toolbox

USAGE:
  adas-replay record [--fault rd|curvature|mixed|none] [--row LABEL]
                     [--reps N] [--dir DIR]
      Run one campaign cell with every trace persisted to DIR
      (default results/traces). LABEL is a Table VI row label such as
      \"None\", \"Driver+Check\", \"AEB-Indep\" or \"ML\" (default \"None\").

  adas-replay record --golden [--dir DIR]
      Regenerate the golden regression traces (default
      results/traces/golden).

  adas-replay verify [--perturb friction=K] <trace.bin>...
      Re-execute each trace from its header and compare step-by-step.
      Exit 0 = all identical, 1 = divergence found, 2 = error.

  adas-replay diff <a.bin> <b.bin>
      Compare two stored traces (identity, steps, outcome).

  adas-replay explain <trace.bin>
      Print a human-readable incident timeline for one trace.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "record" => cmd_record(rest),
        "verify" => cmd_verify(rest),
        "diff" => cmd_diff(rest),
        "explain" => cmd_explain(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_fault(s: &str) -> Result<Option<FaultType>, String> {
    match s.to_ascii_lowercase().as_str() {
        "rd" | "relative-distance" | "relative_distance" => Ok(Some(FaultType::RelativeDistance)),
        "curvature" | "dc" | "desired-curvature" => Ok(Some(FaultType::DesiredCurvature)),
        "mixed" => Ok(Some(FaultType::Mixed)),
        "none" | "benign" => Ok(None),
        other => Err(format!(
            "unknown fault `{other}` (expected rd, curvature, mixed, or none)"
        )),
    }
}

fn parse_row(label: &str) -> Result<InterventionConfig, String> {
    InterventionConfig::table_vi_rows()
        .into_iter()
        .find(|iv| iv.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| {
            let known: Vec<String> = InterventionConfig::table_vi_rows()
                .iter()
                .map(InterventionConfig::label)
                .collect();
            format!(
                "unknown intervention row `{label}` (expected one of: {})",
                known.join(", ")
            )
        })
}

/// Flag-value extractor for the hand-rolled argument loop: returns the value
/// following `flag` and removes both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_record(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let golden = take_switch(&mut args, "--golden");
    let result = (|| -> Result<(), String> {
        let dir = take_flag(&mut args, "--dir")?.map(PathBuf::from);
        if golden {
            if !args.is_empty() {
                return Err(format!("unexpected arguments: {args:?}"));
            }
            return record_golden(&dir.unwrap_or_else(|| PathBuf::from("results/traces/golden")));
        }
        let fault = parse_fault(&take_flag(&mut args, "--fault")?.unwrap_or_else(|| "rd".into()))?;
        let iv = parse_row(&take_flag(&mut args, "--row")?.unwrap_or_else(|| "None".into()))?;
        let reps: u32 = take_flag(&mut args, "--reps")?
            .unwrap_or_else(|| "1".into())
            .parse()
            .map_err(|e| format!("bad --reps: {e}"))?;
        if !args.is_empty() {
            return Err(format!("unexpected arguments: {args:?}"));
        }
        record_cell(fault, iv, reps, &dir.unwrap_or_else(|| PathBuf::from("results/traces")))
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn record_cell(
    fault: Option<FaultType>,
    iv: InterventionConfig,
    reps: u32,
    dir: &Path,
) -> Result<(), String> {
    let cfg = PlatformConfig::with_interventions(iv);
    let (model, model_fp) = if iv.ml {
        let cache = ArtifactCache::from_env();
        let model = Arc::new(trained_baseline_cached(
            &cache,
            CAMPAIGN_SEED,
            ModelSpec::default(),
        ));
        let fp = model_fingerprint(&model).value();
        (Some(model), fp)
    } else {
        (None, 0)
    };
    let sink = TraceSink::new(TracePolicy {
        mode: TraceMode::All,
        dir: dir.to_path_buf(),
        record_mode: RecordMode::Full,
    });
    println!(
        "recording cell: fault {} · row {} · {reps} rep(s) · seed {CAMPAIGN_SEED}",
        fault.map_or("none", FaultType::label),
        iv.label()
    );
    let records = run_campaign_traced(
        fault,
        &cfg,
        model.as_ref(),
        model_fp,
        CAMPAIGN_SEED,
        reps,
        &sink,
    );
    println!(
        "{} runs recorded, {} traces persisted to {} ({} errors)",
        records.len(),
        sink.persisted(),
        dir.display(),
        sink.errors()
    );
    if sink.errors() > 0 {
        return Err("some traces failed to persist".into());
    }
    Ok(())
}

fn record_golden(dir: &Path) -> Result<(), String> {
    // Three representative S1/Near runs: a benign cruise, an unmitigated
    // relative-distance attack (crashes), and the same attack with the
    // independent AEB (prevented). `max_steps` is capped so the committed
    // files stay small; the cap lands in the header, so replay reconstructs
    // the same bounded run.
    let cases: [(&str, Option<FaultType>, InterventionConfig, usize); 3] = [
        ("golden-s1-benign.bin", None, InterventionConfig::none(), 1_500),
        (
            "golden-s1-rd-unprotected.bin",
            Some(FaultType::RelativeDistance),
            InterventionConfig::none(),
            2_500,
        ),
        (
            "golden-s1-rd-aeb-indep.bin",
            Some(FaultType::RelativeDistance),
            InterventionConfig::aeb_independent_only(),
            2_500,
        ),
    ];
    for (name, fault, iv, max_steps) in cases {
        let mut cfg = PlatformConfig::with_interventions(iv);
        cfg.max_steps = max_steps;
        let id = RunId {
            scenario: ScenarioId::S1,
            position: InitialPosition::Near,
            repetition: 0,
        };
        let (_record, trace) =
            run_single_traced(id, fault, &cfg, None, 0, CAMPAIGN_SEED, RecordMode::Full);
        let path = dir.join(name);
        trace.save_as(&path).map_err(|e| format!("{name}: {e}"))?;
        println!(
            "{} · {} · {} steps · end {:?} · checksum {}",
            path.display(),
            trace.identity(),
            trace.outcome.steps,
            trace.outcome.end,
            trace.content_hex()
        );
    }
    Ok(())
}

/// Trains (or loads from the artifact cache) the baseline model a traced ML
/// run was recorded with. Memoised per seed so a multi-trace `verify` trains
/// at most once.
struct ModelProvider {
    cache: ArtifactCache,
    loaded: Option<(u64, Arc<LstmPredictor>, u64)>,
}

impl ModelProvider {
    fn new() -> Self {
        Self {
            cache: ArtifactCache::from_env(),
            loaded: None,
        }
    }

    fn get(&mut self, seed: u64) -> (&Arc<LstmPredictor>, u64) {
        let stale = self.loaded.as_ref().is_none_or(|(s, ..)| *s != seed);
        if stale {
            let model = Arc::new(trained_baseline_cached(
                &self.cache,
                seed,
                ModelSpec::default(),
            ));
            let fp = model_fingerprint(&model).value();
            self.loaded = Some((seed, model, fp));
        }
        let (_, model, fp) = self.loaded.as_ref().expect("just loaded");
        (model, *fp)
    }
}

fn render_report(report: &DiffReport, out: &mut String) {
    for m in &report.header_mismatches {
        let _ = writeln!(out, "  header mismatch: {m}");
    }
    let _ = writeln!(out, "  {}", report.verdict);
    if let Some(m) = &report.outcome_mismatch {
        let _ = writeln!(out, "  outcome mismatch: {m}");
    }
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let perturb_spec = match take_flag(&mut args, "--perturb") {
        Ok(v) => v.or_else(|| std::env::var("ADAS_REPLAY_PERTURB").ok()),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let perturbation = match &perturb_spec {
        Some(spec) => match Perturbation::parse(spec) {
            Some(p) => Some(p),
            None => {
                eprintln!("error: bad perturbation `{spec}` (expected friction=<scale>)");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    if args.is_empty() {
        eprintln!("error: verify needs at least one trace file\n\n{USAGE}");
        return ExitCode::from(2);
    }
    if let Some(p) = perturbation {
        println!("replaying with perturbation {p:?} — divergence is expected\n");
    }

    let mut models = ModelProvider::new();
    let mut divergence_report = String::new();
    let (mut identical, mut diverged, mut failed) = (0u32, 0u32, 0u32);
    for path in &args {
        let trace = match Trace::load(Path::new(path)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ERROR      {path}: {e}");
                failed += 1;
                continue;
            }
        };
        let ml = if trace.header.model_fingerprint != 0 {
            let (model, fp) = models.get(trace.header.campaign_seed);
            // Borrow ends when replay_trace returns; clone keeps it simple.
            Some((model.clone(), fp))
        } else {
            None
        };
        match replay_trace(&trace, ml.as_ref().map(|(m, fp)| (m, *fp)), perturbation) {
            Err(e) => {
                eprintln!("ERROR      {path}: {e}");
                failed += 1;
            }
            Ok(result) if result.report.is_identical() => {
                println!(
                    "IDENTICAL  {path} · {} · {} steps",
                    trace.identity(),
                    trace.outcome.steps
                );
                identical += 1;
            }
            Ok(result) => {
                println!("DIVERGED   {path} · {}", trace.identity());
                let mut rendered = String::new();
                render_report(&result.report, &mut rendered);
                print!("{rendered}");
                let _ = writeln!(divergence_report, "{path} · {}", trace.identity());
                divergence_report.push_str(&rendered);
                diverged += 1;
            }
        }
    }
    println!("\n{identical} identical, {diverged} diverged, {failed} errors");
    if diverged > 0 {
        let report_path = Path::new("results/replay_divergence.txt");
        if let Some(parent) = report_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(report_path, &divergence_report) {
            Ok(()) => println!("divergence report written to {}", report_path.display()),
            Err(e) => eprintln!("could not write divergence report: {e}"),
        }
    }
    if failed > 0 {
        ExitCode::from(2)
    } else if diverged > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [a_path, b_path] = args else {
        eprintln!("error: diff needs exactly two trace files\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let (a, b) = match (Trace::load(Path::new(a_path)), Trace::load(Path::new(b_path))) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) => {
            eprintln!("error: {a_path}: {e}");
            return ExitCode::from(2);
        }
        (_, Err(e)) => {
            eprintln!("error: {b_path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("a: {a_path} · {}", a.identity());
    println!("b: {b_path} · {}", b.identity());
    let report = diff_traces(&a, &b);
    if report.is_identical() {
        println!("Identical");
        ExitCode::SUCCESS
    } else {
        let mut rendered = String::new();
        render_report(&report, &mut rendered);
        print!("{rendered}");
        ExitCode::from(1)
    }
}

fn cmd_explain(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("error: explain needs exactly one trace file\n\n{USAGE}");
        return ExitCode::from(2);
    };
    match Trace::load(Path::new(path)) {
        Ok(trace) => {
            println!("{}", explain(&trace));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::from(2)
        }
    }
}
