//! Microbenchmark for the batched SoA execution path: scalar vs batched
//! LSTM inference step, and scalar vs lockstep closed-loop platform
//! stepping, across batch widths. Hand-rolled timing loops (the vendored
//! criterion is an API stub) with a fixed wall budget per measurement.
//!
//! Everything runs single-worker (`ADAS_THREADS=1`): the point is the
//! per-core effect of the weights-stationary batched kernels, not thread
//! scaling. Usage: `batch_microbench` (no arguments).

use adas_attack::FaultType;
use adas_bench::CAMPAIGN_SEED;
use adas_core::parallel::MapControl;
use adas_core::{
    run_ids_ctl, InterventionConfig, PlatformConfig, RunId, TextTable,
};
use adas_ml::{LstmPredictor, ModelSpec, FEATURE_DIM};
use adas_scenarios::{InitialPosition, ScenarioId};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WIDTHS: [usize; 6] = [1, 4, 8, 16, 32, 64];
/// Wall budget per timed measurement.
const BUDGET: Duration = Duration::from_millis(400);

/// Deterministic feature filler: distinct per (lane, step, column) so the
/// optimiser cannot hoist anything, cheap enough to not perturb timing.
fn fill_x(x: &mut [f64], lane_base: usize, step: usize) {
    for (i, v) in x.iter_mut().enumerate() {
        let n = (lane_base + i).wrapping_mul(2654435761).wrapping_add(step);
        *v = f64::from((n % 2003) as u32) / 2003.0 - 0.5;
    }
}

/// Scalar inference: one `step_with` per lane per tick. Returns ns per
/// lane-step.
fn lstm_scalar(model: &LstmPredictor, width: usize) -> f64 {
    let mut states: Vec<_> = (0..width).map(|_| model.init_state()).collect();
    let mut scratch = model.infer_scratch();
    let mut x = [0.0f64; FEATURE_DIM];
    let mut sink = 0.0f64;
    let mut steps = 0u64;
    let start = Instant::now();
    while start.elapsed() < BUDGET {
        for _ in 0..64 {
            for (lane, state) in states.iter_mut().enumerate() {
                fill_x(&mut x, lane * FEATURE_DIM, steps as usize);
                let y = model.step_with(&x, state, &mut scratch);
                sink += y[0];
            }
            steps += width as u64;
        }
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / steps as f64
}

/// Batched inference: one `step_batch` serving all lanes per tick.
/// Returns ns per lane-step.
fn lstm_batched(model: &LstmPredictor, width: usize) -> f64 {
    let mut state = model.batch_state(width);
    let mut scratch = model.batch_scratch(width);
    let mut x = vec![0.0f64; FEATURE_DIM * width];
    let mut sink = 0.0f64;
    let mut steps = 0u64;
    let start = Instant::now();
    while start.elapsed() < BUDGET {
        for _ in 0..64 {
            fill_x(&mut x, 0, steps as usize);
            model.step_batch(&x, &mut state, &mut scratch);
            sink += scratch.output(0)[0];
            steps += width as u64;
        }
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / steps as f64
}

/// Enough campaign run IDs to keep `width` lanes mostly occupied.
fn ids_for(width: usize) -> Vec<RunId> {
    let runs = (3 * width).max(24);
    let mut out = Vec::with_capacity(runs);
    let mut rep = 0u32;
    'fill: loop {
        for scenario in ScenarioId::ALL {
            for position in [InitialPosition::Near, InitialPosition::Far] {
                if out.len() == runs {
                    break 'fill;
                }
                out.push(RunId {
                    scenario,
                    position,
                    repetition: rep,
                });
            }
        }
        rep += 1;
    }
    out
}

/// Full closed-loop campaign runs through `run_ids_ctl` at the given
/// width. Returns (lane-steps per second, runs).
fn closed_loop(
    ids: &[RunId],
    cfg: &PlatformConfig,
    model: Option<&Arc<LstmPredictor>>,
    width: usize,
) -> (f64, usize) {
    let ctl = MapControl::new();
    let start = Instant::now();
    let records = run_ids_ctl(
        ids,
        Some(FaultType::Mixed),
        cfg,
        model,
        CAMPAIGN_SEED,
        width,
        &ctl,
    )
    .expect("uncancelled");
    let wall = start.elapsed().as_secs_f64();
    let steps: u64 = records.iter().map(|r| r.steps).sum();
    (steps as f64 / wall, records.len())
}

fn main() {
    // Single worker: isolate the kernel effect from thread scaling.
    std::env::set_var("ADAS_THREADS", "1");

    println!("== Batched LSTM inference step (ModelSpec::default, untrained weights) ==\n");
    let model = LstmPredictor::new(ModelSpec::default());
    // Warm up code + caches once before timing.
    let _ = lstm_scalar(&model, 4);
    let _ = lstm_batched(&model, 4);
    let mut table = TextTable::new([
        "width",
        "scalar ns/step",
        "batched ns/step",
        "speedup",
    ]);
    for width in WIDTHS {
        let s = lstm_scalar(&model, width);
        let b = lstm_batched(&model, width);
        table.row([
            format!("{width}"),
            format!("{s:.0}"),
            format!("{b:.0}"),
            format!("{:.2}x", s / b),
        ]);
    }
    println!("{}", table.render());

    println!("\n== Closed-loop platform stepping (Mixed fault, 1 worker) ==\n");
    let mut no_ml_cfg = PlatformConfig::with_interventions(InterventionConfig::driver_and_check());
    no_ml_cfg.max_steps = 1_000;
    let mut ml_cfg = PlatformConfig::with_interventions(InterventionConfig::ml_only());
    ml_cfg.max_steps = 1_000;
    let trained = Arc::new(adas_bench::trained_baseline_cached(
        &adas_core::ArtifactCache::from_env(),
        CAMPAIGN_SEED,
        ModelSpec::default(),
    ));

    let mut table = TextTable::new([
        "width",
        "no-ML ksteps/s",
        "no-ML vs scalar",
        "ML ksteps/s",
        "ML vs scalar",
    ]);
    let mut scalar_no_ml = 0.0;
    let mut scalar_ml = 0.0;
    for width in WIDTHS {
        let ids = ids_for(width);
        let (no_ml, _) = closed_loop(&ids, &no_ml_cfg, None, width);
        let (ml, _) = closed_loop(&ids, &ml_cfg, Some(&trained), width);
        if width == 1 {
            scalar_no_ml = no_ml;
            scalar_ml = ml;
        }
        table.row([
            format!("{width}"),
            format!("{:.0}", no_ml / 1e3),
            format!("{:.2}x", no_ml / scalar_no_ml),
            format!("{:.0}", ml / 1e3),
            format!("{:.2}x", ml / scalar_ml),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nwidth=1 rows are the scalar path (run_ids_ctl falls back to \
         per-run stepping); speedups are per-core."
    );
}
