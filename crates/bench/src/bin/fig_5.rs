//! Regenerates **Fig. 5** — "Speed and Distance to Lane Lines when
//! Approaching LV": a benign S1 time series showing OpenPilot's aggressive
//! approach braking (the sudden speed drop) and its lane-keeping margin.

use adas_attack::FaultInjector;
use adas_bench::{write_results_file, CAMPAIGN_SEED};
use adas_core::{Platform, PlatformConfig, RunEnd2};
use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::{DeterministicRng, TraceRecorder};

fn main() {
    let mut rng = DeterministicRng::for_run(CAMPAIGN_SEED, 0, 0, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
    let mut platform = Platform::new(
        &setup,
        PlatformConfig::default(),
        FaultInjector::disabled(),
        None,
        &mut rng,
    );
    platform.attach_trace(TraceRecorder::with_stride(10));
    loop {
        let _ = platform.step();
        if let RunEnd2::Yes(_) = platform.finished() {
            break;
        }
    }

    let trace = platform.take_trace().expect("trace attached");
    let samples = trace.samples();

    // Series summary in the terminal: approach braking profile.
    let v0 = samples.first().map_or(0.0, |s| s.ego_v);
    let vmin = samples
        .iter()
        .take_while(|s| s.time < 15.0)
        .map(|s| s.ego_v)
        .fold(f64::INFINITY, f64::min);
    let drop_pct = 100.0 * (v0 - vmin) / v0;
    println!("Fig. 5 — benign S1 approach (series in results/fig_5.csv)");
    println!("  initial speed: {v0:.2} m/s");
    println!("  minimum speed during approach: {vmin:.2} m/s ({drop_pct:.1}% drop)");
    println!(
        "  paper: 21.7 m/s → 9.6 m/s (55.8% drop within 4.7 s), then fluctuations"
    );
    let min_line = samples
        .iter()
        .map(|s| s.lane_line_distance)
        .fold(f64::INFINITY, f64::min);
    println!("  minimum distance to lane lines: {min_line:.2} m");

    write_results_file("fig_5.csv", &trace.to_csv());
}
