//! Regenerates **Fig. 6** — "Speed and Relative Distance under Fault
//! Injection": an S1 run under the relative-distance attack with no
//! interventions, showing the true vs perceived gap diverging, the
//! close-range blindness, the re-acceleration, and the collision.

use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_bench::{write_results_file, CAMPAIGN_SEED};
use adas_core::{Platform, PlatformConfig, RunEnd2};
use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::{DeterministicRng, TraceRecorder};

fn main() {
    let mut rng = DeterministicRng::for_run(CAMPAIGN_SEED, 0, 0, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
    let injector = FaultInjector::new(FaultSpec::new(
        FaultType::RelativeDistance,
        setup.patch_start_s,
    ));
    let mut platform = Platform::new(
        &setup,
        PlatformConfig::default(),
        injector,
        None,
        &mut rng,
    );
    platform.attach_trace(TraceRecorder::with_stride(10));
    loop {
        let _ = platform.step();
        if let RunEnd2::Yes(_) = platform.finished() {
            break;
        }
    }

    let record = platform.record();
    let trace = platform.take_trace().expect("trace attached");
    let samples = trace.samples();

    println!("Fig. 6 — S1 under the RD attack, no interventions (series in results/fig_6.csv)");
    if let Some(t) = record.fault_start {
        println!("  fault active from t = {t:.2} s (RD < 80 m)");
    }
    // Locate the blindness onset: perceived lead lost while a true lead is
    // close ahead.
    let blind = samples
        .iter()
        .find(|s| s.fault_active && !s.perceived_rd.is_finite() && s.true_rd < 5.0);
    if let Some(s) = blind {
        println!(
            "  close-range blindness at t = {:.2} s (true RD {:.2} m): lead no longer detected",
            s.time, s.true_rd
        );
    }
    match (record.accident, record.accident_time) {
        (Some(kind), Some(t)) => println!("  accident: {kind} at t = {t:.2} s"),
        _ => println!("  no accident (unexpected for this configuration)"),
    }
    println!("  paper: ego approaches on tampered input; below ~2 m the lead is no longer\n  detected, the ego accelerates, and the run ends in a forward collision.");

    write_results_file("fig_6.csv", &trace.to_csv());
}
