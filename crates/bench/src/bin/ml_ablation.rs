//! ML-baseline ablation: the paper explored two-layer LSTM configurations
//! (256-128 … 64-32 hidden units) and selected 128-64. This harness trains
//! a sweep of configurations on the same fault-free data, compares their
//! regression losses, and evaluates the smallest/selected ones in the
//! closed loop against the relative-distance attack.
//!
//! Usage: `ml_ablation [reps]` (campaign repetitions for the closed-loop
//! stage; the loss comparison always runs).

use adas_attack::FaultType;
use adas_bench::{model_fingerprint, reps_from_args, write_results_file, CAMPAIGN_SEED};
use adas_core::{
    campaign_cell_fingerprint, cell_stats_cached, collect_training_data, run_campaign,
    ArtifactCache, CellStats, InterventionConfig, PlatformConfig,
};
use adas_ml::{train, LstmPredictor, ModelSpec, TrainConfig};
use std::sync::Arc;

fn main() {
    let reps = reps_from_args().min(3);
    let cache = ArtifactCache::from_env();
    eprintln!("[ablation] collecting fault-free training data…");
    let data = collect_training_data(CAMPAIGN_SEED, 1, 25);
    eprintln!("[ablation] {} windows", data.len());

    let configs = [
        ("32-16", 32usize, 16usize),
        ("64-32", 64, 32),
        ("128-64 (paper best)", 128, 64),
    ];

    let mut csv = String::from("config,params,final_loss,prevented_pct\n");
    println!("config               params     final MSE   RD-attack prevented");
    for (label, h1, h2) in configs {
        let spec = ModelSpec {
            hidden1: h1,
            hidden2: h2,
            seed: 0xAD45,
        };
        let mut model = LstmPredictor::new(spec);
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        let loss = report.final_loss();
        let model = Arc::new(model);

        let cfg = PlatformConfig::with_interventions(InterventionConfig::ml_only());
        let key = campaign_cell_fingerprint(
            Some(FaultType::RelativeDistance),
            &cfg,
            Some(model_fingerprint(&model)),
            CAMPAIGN_SEED,
            reps,
        );
        let stats = cell_stats_cached(&cache, key, || {
            let records = run_campaign(
                Some(FaultType::RelativeDistance),
                &cfg,
                Some(&model),
                CAMPAIGN_SEED,
                reps,
            );
            CellStats::from_records(records.iter().map(|(_, r)| r))
        });
        println!(
            "{label:20} {:9} {loss:11.5} {:8.2}%",
            model.param_count(),
            stats.prevented_pct
        );
        csv.push_str(&format!(
            "{label},{},{loss:.6},{:.2}\n",
            model.param_count(),
            stats.prevented_pct
        ));
    }
    write_results_file("ml_ablation.csv", &csv);
}
