//! Mechanically re-checks the paper's six Observations against a campaign
//! run with this reproduction, printing PASS/PARTIAL/FAIL per claim.
//!
//! Usage: `observations [reps]` (default 3 — each check is a coarse
//! directional statement, so small campaigns suffice).

use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_bench::CAMPAIGN_SEED;
use adas_core::{
    run_campaign, CellStats, InterventionConfig, Platform, PlatformConfig, RunEnd2,
};
use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::DeterministicRng;

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let cfg = |iv: InterventionConfig| PlatformConfig::with_interventions(iv);
    let stats = |fault: Option<FaultType>, iv: InterventionConfig| {
        let records = run_campaign(fault, &cfg(iv), None, CAMPAIGN_SEED, reps);
        CellStats::from_records(records.iter().map(|(_, r)| r))
    };

    println!("Re-checking the paper's Observations ({} runs/cell)\n", 12 * reps);

    // ---- Observation 1: benign weaknesses -------------------------------
    let benign = run_campaign(None, &PlatformConfig::default(), None, CAMPAIGN_SEED, reps);
    let s4_hazards = benign
        .iter()
        .filter(|(id, r)| id.scenario == ScenarioId::S4 && r.hazard())
        .count();
    let s4_total = benign
        .iter()
        .filter(|(id, _)| id.scenario == ScenarioId::S4)
        .count();
    let max_brake = benign
        .iter()
        .map(|(_, r)| r.max_brake)
        .fold(0.0_f64, f64::max);
    let obs1 = s4_hazards * 2 >= s4_total && max_brake > 0.6;
    println!(
        "[{}] Obs 1: aggressive approach braking (max brake {:.0}%) and S4 as the benign\n        worst case ({s4_hazards}/{s4_total} runs with hazards)",
        verdict(obs1),
        max_brake * 100.0
    );

    // ---- Observation 2: no attack tolerance + close-range blindness ------
    let rd_none = stats(Some(FaultType::RelativeDistance), InterventionConfig::none());
    let curv_none = stats(Some(FaultType::DesiredCurvature), InterventionConfig::none());
    let blindness = {
        let mut rng = DeterministicRng::for_run(CAMPAIGN_SEED, 0, 0, 0);
        let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
        let injector = FaultInjector::new(FaultSpec::new(
            FaultType::RelativeDistance,
            setup.patch_start_s,
        ));
        let mut platform =
            Platform::new(&setup, PlatformConfig::default(), injector, None, &mut rng);
        let mut seen = false;
        loop {
            let frame = platform.step();
            if let Some(obs) = platform.world().lead_observation() {
                if obs.distance < 1.9 && frame.lead.is_none() {
                    seen = true;
                }
            }
            if let RunEnd2::Yes(_) = platform.finished() {
                break;
            }
        }
        seen
    };
    let obs2 = rd_none.prevented_pct < 20.0 && curv_none.prevented_pct < 25.0 && blindness;
    println!(
        "[{}] Obs 2: attacks defeat the unprotected ADAS (RD {:.0}% / curvature {:.0}%\n        accidents) and the lead vanishes below ~2 m (blindness seen: {blindness})",
        verdict(obs2),
        100.0 - rd_none.prevented_pct,
        100.0 - curv_none.prevented_pct
    );

    // ---- Observation 3: AEB + driver prevent in both axes ----------------
    let aeb_rd = stats(
        Some(FaultType::RelativeDistance),
        InterventionConfig::aeb_independent_only(),
    );
    let aeb_comp_rd = stats(
        Some(FaultType::RelativeDistance),
        InterventionConfig::aeb_compromised_only(),
    );
    let driver_curv = stats(
        Some(FaultType::DesiredCurvature),
        InterventionConfig::driver_only(),
    );
    let obs3 = aeb_rd.prevented_pct > 70.0
        && aeb_rd.prevented_pct > aeb_comp_rd.prevented_pct + 20.0
        && driver_curv.prevented_pct > 30.0;
    println!(
        "[{}] Obs 3: AEB-indep prevents RD attacks ({:.0}%, vs {:.0}% on compromised data)\n        and the driver prevents lateral accidents ({:.0}%)",
        verdict(obs3),
        aeb_rd.prevented_pct,
        aeb_comp_rd.prevented_pct,
        driver_curv.prevented_pct
    );

    // ---- Observation 4: coordination conflicts ---------------------------
    // The arbiter suppresses driver steering while AEB brakes; the paper
    // saw this lower mixed-attack prevention. In our dynamics the AEB's
    // brake-to-standstill usually compensates, so we report the comparison
    // rather than asserting the paper's direction.
    let mixed_driver = stats(Some(FaultType::Mixed), InterventionConfig::driver_only());
    let mixed_both = stats(
        Some(FaultType::Mixed),
        InterventionConfig::driver_check_aeb_independent(),
    );
    println!(
        "[INFO] Obs 4: mixed-attack prevention — driver-only {:.0}% vs driver+AEB {:.0}%\n        (paper: 69% vs ~52%, i.e. AEB override hurt; here the AEB's full stop\n        compensates — the steering override itself is unit-tested in adas-safety)",
        mixed_driver.prevented_pct, mixed_both.prevented_pct
    );

    // ---- Observation 5: alert drivers & hard lateral attacks -------------
    let mut alert = InterventionConfig::driver_only();
    alert.driver_reaction_time = 1.0;
    let mut slow = InterventionConfig::driver_only();
    slow.driver_reaction_time = 3.5;
    let curv_alert = stats(Some(FaultType::DesiredCurvature), alert);
    let curv_slow = stats(Some(FaultType::DesiredCurvature), slow);
    let obs5 = curv_alert.prevented_pct > curv_slow.prevented_pct + 10.0;
    println!(
        "[{}] Obs 5: an alert driver (1.0 s) prevents far more lateral accidents than a\n        slow one (3.5 s): {:.0}% vs {:.0}%",
        verdict(obs5),
        curv_alert.prevented_pct,
        curv_slow.prevented_pct
    );

    // ---- Observation 6: basic mechanisms beat the ML baseline ------------
    // (Uses the trained baseline only if the caller wants the full check —
    // here the comparison uses the already-computed rows plus a quick ML
    // campaign with an untrained-equivalent threshold: we reuse the
    // documented Table VI result instead of re-training, and check the
    // structural claim on AEB vs driver rows.)
    let obs6 = aeb_rd.prevented_pct > 50.0 && driver_curv.prevented_pct > 30.0;
    println!(
        "[{}] Obs 6: basic mechanisms reach {:.0}% (AEB-indep, RD) / {:.0}% (driver,\n        curvature) — both above the ML baseline's 17–35% (see table_vi / EXPERIMENTS.md)",
        verdict(obs6),
        aeb_rd.prevented_pct,
        driver_curv.prevented_pct
    );
}
