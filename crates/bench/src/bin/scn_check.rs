//! Scenario-space checker for CI: every `.scn` file shipped in the repo
//! must parse, render canonically (parse ∘ render is a fixed point), and
//! compile for both spawn positions; the DSL catalog must be bit-identical
//! to the hard-coded S1–S6 constructors (digest compare over setups and
//! RNG stream positions). Writes a scenario-space coverage summary to
//! `results/SCENARIO_coverage.json`.
//!
//! Usage: `adas-scn-check [extra.scn ...]` — extra files are checked with
//! the same rules; any failure exits non-zero.

use adas_core::{Fingerprint, TextTable};
use adas_scenarios::dsl::{BehaviorSpec, RoadKind, ScenarioDoc, TriggerKind};
use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::DeterministicRng;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Repetitions folded into the equivalence digest per (scenario, position).
const DIGEST_REPS: u64 = 10;

#[derive(Default)]
struct Coverage {
    files: usize,
    npcs: usize,
    max_npcs_per_file: usize,
    phases: usize,
    vars: usize,
    zones: usize,
    segments_with_friction: usize,
    road_kinds: [usize; 4],
    triggers: [usize; 3],
    behaviors: [usize; 3],
    with_patch: usize,
}

impl Coverage {
    fn absorb(&mut self, doc: &ScenarioDoc) {
        self.files += 1;
        self.npcs += doc.npcs.len();
        self.max_npcs_per_file = self.max_npcs_per_file.max(doc.npcs.len());
        self.vars += doc.vars.len();
        self.zones += doc.zones.len();
        self.with_patch += usize::from(doc.patch_start_s.is_some());
        self.road_kinds[match doc.road.kind {
            RoadKind::Position => 0,
            RoadKind::Straight => 1,
            RoadKind::Curvy => 2,
            RoadKind::Segments => 3,
        }] += 1;
        self.segments_with_friction += doc
            .road
            .segments
            .iter()
            .filter(|s| s.friction.is_some())
            .count();
        for npc in &doc.npcs {
            self.phases += npc.phases.len();
            for phase in &npc.phases {
                self.triggers[match phase.trigger {
                    TriggerKind::Immediately => 0,
                    TriggerKind::AtTime => 1,
                    TriggerKind::GapBelow => 2,
                }] += 1;
                self.behaviors[match phase.behavior {
                    BehaviorSpec::SetSpeed { .. } => 0,
                    BehaviorSpec::Stop { .. } => 1,
                    BehaviorSpec::MoveLateral { .. } => 2,
                }] += 1;
            }
        }
    }
}

fn scn_files_under(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    files.sort();
    files
}

/// Parse + canonical-render + compile checks for one file. The builtin
/// files are checked under their own scenario id (the road `position`
/// kind differs per id); everything else compiles under S1.
fn check_file(path: &Path) -> Result<ScenarioDoc, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc =
        ScenarioDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let rendered = doc.render();
    let reparsed = ScenarioDoc::parse(&rendered)
        .map_err(|e| format!("{}: canonical render does not reparse: {e}", path.display()))?;
    if reparsed != doc {
        return Err(format!("{}: render/parse round trip drifted", path.display()));
    }
    let id = path
        .file_stem()
        .and_then(|s| s.to_str())
        .and_then(|stem| {
            ScenarioId::ALL
                .into_iter()
                .find(|s| s.label().eq_ignore_ascii_case(stem))
        })
        .unwrap_or(ScenarioId::ALL[0]);
    for position in InitialPosition::ALL {
        for rep in 0..3u64 {
            let mut rng = DeterministicRng::from_seed(rep);
            doc.compile(id, position, &mut rng)
                .map_err(|e| format!("{} ({position:?} rep {rep}): {e}", path.display()))?;
        }
    }
    Ok(doc)
}

/// Digest of the full jittered scenario space one constructor produces:
/// every (scenario, position, repetition) setup plus the post-build RNG
/// probe, folded into one fingerprint.
fn constructor_digest(
    build: fn(ScenarioId, InitialPosition, &mut DeterministicRng) -> ScenarioSetup,
    id: ScenarioId,
) -> u64 {
    let mut fp = Fingerprint::new().write_str("scenario-space-v1");
    for position in InitialPosition::ALL {
        for rep in 0..DIGEST_REPS {
            let mut rng = DeterministicRng::for_run(
                adas_bench::CAMPAIGN_SEED,
                id.index() as u64,
                position.index() as u64,
                rep,
            );
            let setup = build(id, position, &mut rng);
            fp = fp
                .write_debug(&setup)
                .write_u64(rng.uniform(0.0, 1.0).to_bits());
        }
    }
    fp.value()
}

fn main() -> ExitCode {
    let extra: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let mut files = scn_files_under(Path::new("scenarios/builtin"));
    let builtin_count = files.len();
    files.extend(scn_files_under(Path::new("scenarios/examples")));
    files.extend(extra);
    if builtin_count != ScenarioId::ALL.len() {
        eprintln!(
            "FAIL: expected {} builtin .scn files under scenarios/builtin/, found {builtin_count} \
             (run from the repository root)",
            ScenarioId::ALL.len()
        );
        return ExitCode::FAILURE;
    }

    let mut coverage = Coverage::default();
    let mut failures = 0usize;
    for path in &files {
        match check_file(path) {
            Ok(doc) => {
                coverage.absorb(&doc);
                println!("OK     {}", path.display());
            }
            Err(e) => {
                failures += 1;
                println!("FAIL   {e}");
            }
        }
    }

    // DSL catalog vs hard-coded constructors, as digests so CI logs show
    // *which* scenario drifted without dumping megabytes of Debug.
    let mut digest_rows = Vec::new();
    let mut table = TextTable::new(vec!["scenario", "dsl digest", "hardcoded", "verdict"]);
    for id in ScenarioId::ALL {
        let dsl = constructor_digest(ScenarioSetup::build, id);
        let hardcoded = constructor_digest(ScenarioSetup::build_hardcoded, id);
        let ok = dsl == hardcoded;
        failures += usize::from(!ok);
        table.row(vec![
            id.label().to_owned(),
            format!("{dsl:016x}"),
            format!("{hardcoded:016x}"),
            if ok { "identical" } else { "DRIFTED" }.to_owned(),
        ]);
        digest_rows.push(format!(
            "    {{\"scenario\": \"{}\", \"digest\": \"{dsl:016x}\", \"identical\": {ok}}}",
            id.label()
        ));
    }
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"files\": {},\n  \"builtin\": {builtin_count},\n  \"npcs\": {},\n  \
         \"max_npcs_per_file\": {},\n  \"phases\": {},\n  \"vars\": {},\n  \
         \"friction_zones\": {},\n  \"segments_with_friction\": {},\n  \
         \"road_kinds\": {{\"position\": {}, \"straight\": {}, \"curvy\": {}, \"segments\": {}}},\n  \
         \"triggers\": {{\"immediately\": {}, \"at_time\": {}, \"gap_below\": {}}},\n  \
         \"behaviors\": {{\"set_speed\": {}, \"stop\": {}, \"move_lateral\": {}}},\n  \
         \"with_patch\": {},\n  \"digest_reps\": {DIGEST_REPS},\n  \"equivalence\": [\n{}\n  ],\n  \
         \"failures\": {failures}\n}}\n",
        coverage.files,
        coverage.npcs,
        coverage.max_npcs_per_file,
        coverage.phases,
        coverage.vars,
        coverage.zones,
        coverage.segments_with_friction,
        coverage.road_kinds[0],
        coverage.road_kinds[1],
        coverage.road_kinds[2],
        coverage.road_kinds[3],
        coverage.triggers[0],
        coverage.triggers[1],
        coverage.triggers[2],
        coverage.behaviors[0],
        coverage.behaviors[1],
        coverage.behaviors[2],
        coverage.with_patch,
        digest_rows.join(",\n"),
    );
    adas_bench::write_results_file("SCENARIO_coverage.json", &json);
    println!(
        "{} file(s), {} failure(s) — coverage written to results/SCENARIO_coverage.json",
        files.len(),
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
