//! Regenerates **Table IV** — "Hardest Brake Value in Different Scenarios":
//! OpenPilot's benign driving performance per scenario (hazards, accidents,
//! following distance, hardest brake, min TTC, t_fcw), no faults, no
//! interventions.

use adas_bench::{default_config, paper, reps_from_args, write_results_file, CAMPAIGN_SEED};
use adas_core::{run_campaign, TextTable};
use adas_scenarios::ScenarioId;

fn main() {
    let reps = reps_from_args();
    let runs_per_scenario = 2 * reps;
    eprintln!("[table IV] benign campaign, {runs_per_scenario} runs per scenario…");
    let records = run_campaign(None, &default_config(), None, CAMPAIGN_SEED, reps);

    let mut table = TextTable::new([
        "Scenario",
        "Hazard",
        "Accident",
        "Following(m)",
        "HardBrake",
        "minTTC(s)",
        "t_fcw(s)",
        "| paper: Haz",
        "Acc",
        "Foll",
        "Brake",
        "TTC",
        "t_fcw",
    ]);
    let mut csv = String::from(
        "scenario,hazards,accidents,runs,following_m,hard_brake_pct,min_ttc_s,t_fcw_s\n",
    );

    for (i, sid) in ScenarioId::ALL.iter().enumerate() {
        let rs: Vec<_> = records
            .iter()
            .filter(|(id, _)| id.scenario == *sid)
            .map(|(_, r)| r)
            .collect();
        let hazards = rs.iter().filter(|r| r.hazard()).count();
        let accidents = rs.iter().filter(|r| r.accident.is_some()).count();
        let following: Vec<f64> = rs
            .iter()
            .map(|r| r.avg_following_distance)
            .filter(|v| v.is_finite())
            .collect();
        let following_avg = following.iter().sum::<f64>() / following.len().max(1) as f64;
        let hard_brake = rs.iter().map(|r| r.max_brake).fold(0.0_f64, f64::max) * 100.0;
        let (min_ttc, t_fcw) = rs
            .iter()
            .filter(|r| r.min_ttc.is_finite())
            .min_by(|a, b| a.min_ttc.partial_cmp(&b.min_ttc).expect("finite"))
            .map_or((f64::INFINITY, 0.0), |r| (r.min_ttc, r.t_fcw_at_min_ttc));

        let p = paper::TABLE_IV[i];
        table.row([
            sid.label().to_owned(),
            format!("{hazards}/{}", rs.len()),
            format!("{accidents}/{}", rs.len()),
            format!("{following_avg:.2}"),
            format!("{hard_brake:.1}%"),
            format!("{min_ttc:.2}"),
            format!("{t_fcw:.2}"),
            format!("| {}/20", p.1),
            format!("{}/20", p.2),
            format!("{:.1}", p.3),
            format!("{:.1}%", p.4),
            format!("{:.2}", p.5),
            format!("{:.2}", p.6),
        ]);
        csv.push_str(&format!(
            "{},{hazards},{accidents},{},{following_avg:.3},{hard_brake:.2},{min_ttc:.3},{t_fcw:.3}\n",
            sid.label(),
            rs.len(),
        ));
    }

    println!("Table IV — benign driving performance (ours vs paper)\n");
    println!("{}", table.render());
    write_results_file("table_iv.csv", &csv);
}
