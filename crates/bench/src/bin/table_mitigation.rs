//! Mitigation-baseline comparison grid: the three ML mitigation
//! strategies — the Algorithm 1 CUSUM baseline, the uncertainty ensemble,
//! and the masked-view agreement check — head to head over every fault
//! type (plus the benign baseline) and every scenario S1–S6.
//!
//! Usage: `table_mitigation [reps] [max_steps]` (defaults: 10 repetitions
//! per scenario × position, full 10 000-step runs). The sweep is fully
//! deterministic: the emitted CSV is bit-identical across `ADAS_THREADS`
//! and `ADAS_BATCH`, and matches the same cells served over the wire —
//! the property `tests/mitigation_equivalence.rs` and the CI
//! `mitigation-smoke` job check.
//!
//! Emits `results/table_mitigation.csv` (per-scenario and aggregate rows)
//! and `results/MITIGATION_compare.json` (aggregate per fault × strategy,
//! the artifact the CI job uploads).

use adas_attack::FaultType;
use adas_bench::{
    model_fingerprint, trained_baseline_cached, write_results_file, PhaseTimer, CAMPAIGN_SEED,
};
use adas_core::{
    fmt_opt_time, run_campaign, ArtifactCache, CellStats, InterventionConfig, PlatformConfig,
    TextTable,
};
use adas_ml::{MitigationKind, ModelSpec};
use adas_scenarios::ScenarioId;
use std::sync::Arc;

/// Fault axis: the benign baseline plus the paper's three fault types.
const FAULTS: [Option<FaultType>; 4] = [
    None,
    Some(FaultType::RelativeDistance),
    Some(FaultType::DesiredCurvature),
    Some(FaultType::Mixed),
];

fn fault_label(fault: Option<FaultType>) -> &'static str {
    fault.map_or("Benign", FaultType::label)
}

fn main() {
    let mut ints = std::env::args().skip(1).filter_map(|a| a.parse::<u64>().ok());
    let reps = ints.next().map_or(10, |r| r.max(1) as u32);
    let max_steps = ints.next().unwrap_or(0) as usize;

    let cache = ArtifactCache::from_env();
    let mut timer = PhaseTimer::new();
    timer.phase("train");
    let model = Arc::new(trained_baseline_cached(
        &cache,
        CAMPAIGN_SEED,
        ModelSpec::default(),
    ));
    let model_fp = model_fingerprint(&model);
    println!(
        "mitigation comparison: reps {reps}, max_steps {}, model {model_fp}",
        if max_steps == 0 { 10_000 } else { max_steps }
    );

    timer.phase("campaign");
    let mut csv = String::from(
        "fault,mitigation,scenario,runs,a1_pct,a2_pct,prevented_pct,hazard_pct,\
         ml_trigger_pct,aeb_trigger_pct\n",
    );
    let mut json_rows: Vec<String> = Vec::new();

    for fault in FAULTS {
        let mut table = TextTable::new([
            "Mitigation",
            "A1",
            "A2",
            "Prevented",
            "Hazard",
            "trML",
            "trAEB",
            "mtAEB",
        ]);
        for kind in MitigationKind::ALL {
            let iv = InterventionConfig::ml_only().with_mitigation(kind);
            let mut cfg = PlatformConfig::with_interventions(iv);
            if max_steps != 0 {
                cfg.max_steps = max_steps;
            }
            let records = run_campaign(fault, &cfg, Some(&model), CAMPAIGN_SEED, reps);
            timer.add_runs(records.len() as u64);

            // Per-scenario breakdown (the S1–S6 axis of the grid)…
            for scenario in ScenarioId::ALL {
                let s = CellStats::from_records(
                    records
                        .iter()
                        .filter(|(id, _)| id.scenario == scenario)
                        .map(|(_, r)| r),
                );
                csv.push_str(&format!(
                    "{},{},{scenario:?},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
                    fault_label(fault),
                    kind.name(),
                    s.runs,
                    s.a1_pct,
                    s.a2_pct,
                    s.prevented_pct,
                    s.hazard_pct,
                    s.ml_trigger_rate,
                    s.aeb_trigger_rate,
                ));
            }
            // …plus the aggregate row.
            let s = CellStats::from_records(records.iter().map(|(_, r)| r));
            csv.push_str(&format!(
                "{},{},ALL,{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
                fault_label(fault),
                kind.name(),
                s.runs,
                s.a1_pct,
                s.a2_pct,
                s.prevented_pct,
                s.hazard_pct,
                s.ml_trigger_rate,
                s.aeb_trigger_rate,
            ));
            table.row([
                kind.name().to_owned(),
                format!("{:.2}%", s.a1_pct),
                format!("{:.2}%", s.a2_pct),
                format!("{:.2}%", s.prevented_pct),
                format!("{:.2}%", s.hazard_pct),
                format!("{:.1}%", s.ml_trigger_rate),
                format!("{:.1}%", s.aeb_trigger_rate),
                fmt_opt_time(s.aeb_mitigation_time),
            ]);
            json_rows.push(format!(
                "    {{ \"fault\": \"{}\", \"mitigation\": \"{}\", \"runs\": {}, \
                 \"a1_pct\": {:.2}, \"a2_pct\": {:.2}, \"prevented_pct\": {:.2}, \
                 \"hazard_pct\": {:.2}, \"ml_trigger_pct\": {:.2} }}",
                fault_label(fault),
                kind.name(),
                s.runs,
                s.a1_pct,
                s.a2_pct,
                s.prevented_pct,
                s.hazard_pct,
                s.ml_trigger_rate,
            ));
        }
        println!(
            "\n=== Fault: {} (runs/cell: {}) ===\n{}",
            fault_label(fault),
            12 * reps,
            table.render()
        );
    }

    timer.phase("emit");
    write_results_file("table_mitigation.csv", &csv);
    let json = format!(
        "{{\n  \"seed\": {CAMPAIGN_SEED},\n  \"repetitions\": {reps},\n  \
         \"max_steps\": {},\n  \"model\": \"{model_fp}\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        if max_steps == 0 { 10_000 } else { max_steps },
        json_rows.join(",\n"),
    );
    write_results_file("MITIGATION_compare.json", &json);
    timer.finish(&cache);
}
