//! Regenerates **Table V** — "Minimal Distance to Lane Lines": the closest
//! the ego's body edge comes to a lane line per scenario in benign runs.

use adas_bench::{default_config, paper, reps_from_args, write_results_file, CAMPAIGN_SEED};
use adas_core::{run_campaign, TextTable};
use adas_scenarios::ScenarioId;

fn main() {
    let reps = reps_from_args();
    eprintln!("[table V] benign campaign, {} runs per scenario…", 2 * reps);
    let records = run_campaign(None, &default_config(), None, CAMPAIGN_SEED, reps);

    let mut table = TextTable::new(["Scenario", "MinLaneDist(m)", "paper(m)"]);
    let mut csv = String::from("scenario,min_lane_line_distance_m\n");
    for (i, sid) in ScenarioId::ALL.iter().enumerate() {
        let min = records
            .iter()
            .filter(|(id, _)| id.scenario == *sid)
            .map(|(_, r)| r.min_lane_line_distance)
            .fold(f64::INFINITY, f64::min);
        table.row([
            sid.label().to_owned(),
            format!("{min:.2}"),
            format!("{:.2}", paper::TABLE_V[i].1),
        ]);
        csv.push_str(&format!("{},{min:.4}\n", sid.label()));
    }

    println!("Table V — minimal distance to lane lines (ours vs paper)\n");
    println!("{}", table.render());
    write_results_file("table_v.csv", &csv);
}
