//! Regenerates **Table VI** — the paper's main result: accidents, prevented
//! rate, mitigation times, and trigger rates for every combination of fault
//! type (relative distance / desired curvature / mixed) and safety
//! intervention configuration, including the ML baseline (Algorithm 1).
//!
//! Usage: `table_vi [reps]` (default 10 repetitions per scenario×position;
//! pass a smaller number for a quick look).
//!
//! `ADAS_MITIGATION={cusum,ensemble,maskcheck}` selects the strategy the
//! ML row runs (default: the CUSUM baseline, which reproduces the paper's
//! Table VI exactly); `ADAS_VIEWS=M` overrides the view count of the
//! view-based strategies. Non-default selections change the row label
//! (`ML-Ens`/`ML-Mask`) and the cache keys, so variant results never
//! masquerade as the baseline's.
//!
//! Set `ADAS_TRACE=hazard` (or `all`) to run the campaign through the
//! flight recorder: every run is captured, and traces matching the
//! persistence policy are written under `ADAS_TRACE_DIR`
//! (default `results/traces`). Tracing bypasses the cell-stats cache read
//! (a cache hit would skip the runs and record nothing) but still stores
//! the freshly computed stats for later untraced invocations.

use adas_attack::FaultType;
use adas_bench::{
    model_fingerprint, paper, reps_from_args, trained_baseline_cached, write_results_file,
    PhaseTimer, CAMPAIGN_SEED,
};
use adas_core::{
    campaign_cell_fingerprint, cell_stats_cached, fmt_opt_time, run_campaign,
    run_campaign_traced, ArtifactCache, CellStats, InterventionConfig, PlatformConfig, TextTable,
    TraceSink,
};
use adas_ml::ModelSpec;
use adas_recorder::RecordMode;
use std::sync::Arc;

fn main() {
    let reps = reps_from_args();
    let cache = ArtifactCache::from_env();
    let sink = TraceSink::from_env();
    // `ADAS_STORE_DIR` additionally appends every finished cell to the
    // columnar results store, one segment per invocation, so
    // `adas-store query` can aggregate across historic sweeps.
    let store = adas_store::dir_from_env().and_then(|dir| match adas_store::Store::open(&dir) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("store write-through disabled: {e}");
            None
        }
    });
    let mut store_rows: Vec<adas_store::CellRow> = Vec::new();
    let mut timer = PhaseTimer::new();
    if sink.enabled() {
        println!(
            "flight recorder: {:?} mode, persisting to {}",
            sink.policy().mode,
            sink.policy().dir.display()
        );
    }

    timer.phase("train");
    let model = Arc::new(trained_baseline_cached(
        &cache,
        CAMPAIGN_SEED,
        ModelSpec::default(),
    ));
    let model_fp = model_fingerprint(&model);

    timer.phase("campaign");

    let mut csv = String::from(
        "fault,config,runs,a1_pct,a2_pct,prevented_pct,aeb_mt,driver_brake_mt,driver_steer_mt,\
         aeb_trigger_pct,driver_brake_trigger_pct,driver_steer_trigger_pct,ml_trigger_pct\n",
    );

    for fault in FaultType::ALL {
        println!("\n=== Fault type: {fault} (runs/cell: {}) ===\n", 12 * reps);
        let mut table = TextTable::new([
            "Interventions",
            "A1",
            "A2",
            "Prevented",
            "mtAEB",
            "mtDrvBrake",
            "mtDrvSteer",
            "trAEB",
            "trDrvBrake",
            "trDrvSteer",
            "| paper A1",
            "A2",
            "Prev",
        ]);
        for (iv_idx, mut iv) in InterventionConfig::table_vi_rows().into_iter().enumerate() {
            if iv.ml {
                // Strategy selection applies only to ML rows; the default
                // environment leaves the row — and its cache keys —
                // bit-identical to the historic CUSUM baseline.
                (iv.mitigation, iv.views) = adas_core::mitigation_from_env();
            }
            let mut cfg = PlatformConfig::with_interventions(iv);
            // `ADAS_ATTACK` swaps the patch's fixed activation for a
            // context trigger; the scheduler is part of the config Debug
            // rendering, so non-default settings get their own cache keys.
            cfg.attack = adas_core::attack_from_env();
            let key = campaign_cell_fingerprint(
                Some(fault),
                &cfg,
                iv.ml.then_some(model_fp),
                CAMPAIGN_SEED,
                reps,
            );
            let s = if sink.enabled() {
                let ml = iv.ml.then_some(&model);
                let records = run_campaign_traced(
                    Some(fault),
                    &cfg,
                    ml,
                    if iv.ml { model_fp.value() } else { 0 },
                    CAMPAIGN_SEED,
                    reps,
                    &sink,
                );
                timer.add_runs(records.len() as u64);
                let s = CellStats::from_records(records.iter().map(|(_, r)| r));
                // Tracing recomputes on purpose (a cached aggregate cannot
                // replay trace capture) — declare the bypass so the cache
                // books stay balanced, then store the fresh stats.
                cache.note_bypass();
                cache.store("cell", key, &s.to_bytes());
                s
            } else {
                cell_stats_cached(&cache, key, || {
                    let ml = iv.ml.then_some(&model);
                    let records = run_campaign(Some(fault), &cfg, ml, CAMPAIGN_SEED, reps);
                    timer.add_runs(records.len() as u64);
                    CellStats::from_records(records.iter().map(|(_, r)| r))
                })
            };
            if store.is_some() {
                let mitigation = match iv.mitigation {
                    adas_ml::MitigationKind::Cusum => 0,
                    adas_ml::MitigationKind::Ensemble => 1,
                    adas_ml::MitigationKind::MaskCheck => 2,
                };
                store_rows.push(adas_store::CellRow::from_stats(
                    (
                        adas_store::record::ANY,
                        adas_store::record::ANY,
                        match fault {
                            FaultType::RelativeDistance => 1,
                            FaultType::DesiredCurvature => 2,
                            FaultType::Mixed => 3,
                        },
                        iv_idx as u8,
                        mitigation,
                        u8::from(!cfg.attack.is_immediate()),
                    ),
                    CAMPAIGN_SEED,
                    &s,
                ));
            }
            let reference = paper::TABLE_VI
                .iter()
                .find(|(f, row, ..)| *f == fault.label() && *row == iv.label())
                .copied();
            let (pa1, pa2, pprev) = reference.map_or((f64::NAN, f64::NAN, f64::NAN), |r| {
                (r.2, r.3, r.4)
            });
            table.row([
                iv.label(),
                format!("{:.2}%", s.a1_pct),
                format!("{:.2}%", s.a2_pct),
                format!("{:.2}%", s.prevented_pct),
                fmt_opt_time(s.aeb_mitigation_time),
                fmt_opt_time(s.driver_brake_mitigation_time),
                fmt_opt_time(s.driver_steer_mitigation_time),
                format!("{:.1}%", s.aeb_trigger_rate),
                format!("{:.1}%", s.driver_brake_trigger_rate),
                format!("{:.1}%", s.driver_steer_trigger_rate),
                format!("| {pa1:.2}%"),
                format!("{pa2:.2}%"),
                format!("{pprev:.2}%"),
            ]);
            csv.push_str(&format!(
                "{},{},{},{:.2},{:.2},{:.2},{},{},{},{:.2},{:.2},{:.2},{:.2}\n",
                fault.label(),
                iv.label(),
                s.runs,
                s.a1_pct,
                s.a2_pct,
                s.prevented_pct,
                fmt_opt_time(s.aeb_mitigation_time),
                fmt_opt_time(s.driver_brake_mitigation_time),
                fmt_opt_time(s.driver_steer_mitigation_time),
                s.aeb_trigger_rate,
                s.driver_brake_trigger_rate,
                s.driver_steer_trigger_rate,
                s.ml_trigger_rate,
            ));
        }
        println!("{}", table.render());
    }

    timer.phase("emit");
    write_results_file("table_vi.csv", &csv);
    if let Some(store) = &store {
        match store.append_cells(&store_rows) {
            Ok(_) => println!("results store: appended {} cell rows", store_rows.len()),
            Err(e) => eprintln!("results store append failed: {e}"),
        }
    }
    if sink.enabled() {
        let mode = match sink.policy().record_mode {
            RecordMode::Full => format!("{:?}", sink.policy().mode).to_lowercase(),
            RecordMode::Ring(n) => {
                format!("{:?}+ring{n}", sink.policy().mode).to_lowercase()
            }
        };
        timer.set_trace_info(&mode, sink.recorded(), sink.persisted());
        println!(
            "flight recorder: {} runs recorded, {} traces persisted, {} errors",
            sink.recorded(),
            sink.persisted(),
            sink.errors()
        );
    }
    timer.finish(&cache);
}
