//! Regenerates **Table VII** — "Prevention Rate vs Driver Reaction Time":
//! driver-only intervention with reaction times swept 1.0–3.5 s across all
//! three fault types.

use adas_attack::FaultType;
use adas_bench::{paper, reps_from_args, write_results_file, CAMPAIGN_SEED};
use adas_core::{
    campaign_cell_fingerprint, cell_stats_cached, run_campaign, ArtifactCache, CellStats,
    InterventionConfig, PlatformConfig, TextTable,
};

fn main() {
    let reps = reps_from_args();
    let cache = ArtifactCache::from_env();
    let times = paper::TABLE_VII_TIMES;

    let mut header: Vec<String> = vec!["Fault Type".into()];
    header.extend(times.iter().map(|t| format!("{t:.1}s")));
    header.push("| paper @1.0".into());
    header.push("@2.5".into());
    header.push("@3.5".into());
    let mut table = TextTable::new(header);
    let mut csv = String::from("fault,reaction_time_s,prevented_pct\n");

    for (i, fault) in FaultType::ALL.into_iter().enumerate() {
        eprintln!("[table VII] {fault}…");
        let mut row: Vec<String> = vec![fault.label().into()];
        for t in times {
            let mut iv = InterventionConfig::driver_only();
            iv.driver_reaction_time = t;
            let cfg = PlatformConfig::with_interventions(iv);
            let key = campaign_cell_fingerprint(Some(fault), &cfg, None, CAMPAIGN_SEED, reps);
            let s = cell_stats_cached(&cache, key, || {
                let records = run_campaign(Some(fault), &cfg, None, CAMPAIGN_SEED, reps);
                CellStats::from_records(records.iter().map(|(_, r)| r))
            });
            row.push(format!("{:.2}%", s.prevented_pct));
            csv.push_str(&format!(
                "{},{t:.1},{:.2}\n",
                fault.label(),
                s.prevented_pct
            ));
        }
        let p = paper::TABLE_VII[i].1;
        row.push(format!("| {:.2}%", p[0]));
        row.push(format!("{:.2}%", p[3]));
        row.push(format!("{:.2}%", p[5]));
        table.row(row);
    }

    println!("Table VII — prevention rate vs driver reaction time (driver-only)\n");
    println!("{}", table.render());
    write_results_file("table_vii.csv", &csv);
}
