//! Regenerates **Table VIII** — "Hazard Prevention Rate vs Road Friction":
//! the Driver + SafetyCheck + AEB-Compromised configuration (the paper's
//! footnote) under default, −25 %, −50 % and −75 % road friction, for the
//! relative-distance and curvature fault types.

use adas_attack::FaultType;
use adas_bench::{paper, reps_from_args, write_results_file, CAMPAIGN_SEED};
use adas_core::{
    campaign_cell_fingerprint, cell_stats_cached, run_campaign, ArtifactCache, CellStats,
    InterventionConfig, PlatformConfig, TextTable,
};
use adas_simulator::FrictionCondition;

fn main() {
    let reps = reps_from_args();
    let cache = ArtifactCache::from_env();
    let conditions = FrictionCondition::TABLE_VIII;

    let mut header: Vec<String> = vec!["Fault Type".into()];
    header.extend(conditions.iter().map(|c| c.label().to_owned()));
    header.push("| paper Default".into());
    header.push("75% off".into());
    let mut table = TextTable::new(header);
    let mut csv = String::from("fault,friction,prevented_pct\n");

    for (i, fault) in [FaultType::RelativeDistance, FaultType::DesiredCurvature]
        .into_iter()
        .enumerate()
    {
        eprintln!("[table VIII] {fault}…");
        let mut row: Vec<String> = vec![fault.label().into()];
        for condition in conditions {
            let mut cfg = PlatformConfig::with_interventions(
                InterventionConfig::driver_check_aeb_compromised(),
            );
            cfg.friction = condition;
            let key = campaign_cell_fingerprint(Some(fault), &cfg, None, CAMPAIGN_SEED, reps);
            let s = cell_stats_cached(&cache, key, || {
                let records = run_campaign(Some(fault), &cfg, None, CAMPAIGN_SEED, reps);
                CellStats::from_records(records.iter().map(|(_, r)| r))
            });
            row.push(format!("{:.2}%", s.prevented_pct));
            csv.push_str(&format!(
                "{},{},{:.2}\n",
                fault.label(),
                condition.label(),
                s.prevented_pct
            ));
        }
        let p = paper::TABLE_VIII[i].1;
        row.push(format!("| {:.2}%", p[0]));
        row.push(format!("{:.2}%", p[3]));
        table.row(row);
    }

    println!(
        "Table VIII — prevention rate vs road friction\n(Driver + SafetyCheck + AEB-Compromised)\n"
    );
    println!("{}", table.render());
    write_results_file("table_viii.csv", &csv);
}
