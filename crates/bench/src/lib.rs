//! Shared plumbing for the experiment harness binaries.
//!
//! Each binary regenerates one table or figure of the paper (see the
//! per-experiment index in `DESIGN.md`); this library provides the common
//! campaign wiring, the trained ML baseline, and the paper's reference
//! numbers so every harness prints a paper-vs-measured comparison.

use adas_core::{
    collect_training_data, fingerprint_dataset, ArtifactCache, Fingerprint, PlatformConfig,
};
use adas_ml::{train, LstmPredictor, ModelSpec, TrainConfig};
use std::time::Instant;

/// Default campaign seed used by every harness (override with the first CLI
/// argument where supported).
pub const CAMPAIGN_SEED: u64 = 2025;

/// Default repetitions per (scenario, position) cell — the paper uses 10.
pub const REPS: u32 = 10;

/// Parses `--reps N` / first positional integer from the CLI, defaulting to
/// [`REPS`].
#[must_use]
pub fn reps_from_args() -> u32 {
    std::env::args()
        .skip(1)
        .find_map(|a| a.parse::<u32>().ok())
        .unwrap_or(REPS)
}

/// The hyper-parameters every harness trains the baseline with (also part
/// of the model's cache key).
#[must_use]
pub fn baseline_train_config() -> TrainConfig {
    let mut tc = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    tc.adam.lr = 5e-3;
    tc
}

/// Stable fingerprint of a model's exact weights (used to key campaign
/// cells that depend on the trained model).
#[must_use]
pub fn model_fingerprint(model: &LstmPredictor) -> Fingerprint {
    Fingerprint::new()
        .write_str("lstm-weights")
        .write_bytes(&model.to_bytes())
}

/// Trains the ML mitigation baseline on fault-free traces and returns it,
/// using the process-wide artifact cache (`results/cache`, see
/// `ADAS_CACHE`/`ADAS_CACHE_DIR`).
///
/// Training is deterministic for a given seed; progress is printed because
/// it takes on the order of a minute at the shipped 64-32 hidden sizes.
#[must_use]
pub fn trained_baseline(seed: u64, spec: ModelSpec) -> LstmPredictor {
    trained_baseline_cached(&ArtifactCache::from_env(), seed, spec)
}

/// [`trained_baseline`] against an explicit cache (tests point this at a
/// temp directory; [`ArtifactCache::disabled`] forces a retrain).
///
/// The cache key covers the *content* of the training dataset plus every
/// hyper-parameter and the architecture, so any change to data collection,
/// training, or the model invalidates old entries automatically.
#[must_use]
pub fn trained_baseline_cached(
    cache: &ArtifactCache,
    seed: u64,
    spec: ModelSpec,
) -> LstmPredictor {
    eprintln!("[ml] collecting fault-free training episodes…");
    let data = collect_training_data(seed, 1, 25);
    let tc = baseline_train_config();
    let key = Fingerprint::new()
        .write_str("lstm-baseline-v1")
        .write_u64(seed)
        .write_debug(&spec)
        .write_debug(&tc)
        .write_u64(fingerprint_dataset(&data).value());
    cache.get_or_compute(
        "model",
        key,
        |bytes| {
            LstmPredictor::from_bytes(bytes)
                .ok()
                .filter(|m| m.spec() == spec)
                .inspect(|_| {
                    eprintln!("[ml] loaded trained weights from cache ({key})");
                })
        },
        || {
            eprintln!("[ml] {} windows collected; training {spec:?}…", data.len());
            let mut model = LstmPredictor::new(spec);
            let report = train(&mut model, &data, &tc);
            eprintln!(
                "[ml] training losses per epoch: {:?}",
                report
                    .epoch_loss
                    .iter()
                    .map(|l| (l * 1e4).round() / 1e4)
                    .collect::<Vec<_>>()
            );
            model
        },
        LstmPredictor::to_bytes,
    )
}

/// Wall-clock phase accounting for a harness run, emitted as
/// `results/BENCH_campaign.json` (total and per-phase seconds + runs +
/// runs/sec, worker threads, lockstep batch width and lane occupancy,
/// cache counters).
#[derive(Debug)]
pub struct PhaseTimer {
    started: Instant,
    phases: Vec<(String, f64, u64)>,
    current: Option<(String, Instant, u64)>,
    executed_runs: u64,
    trace: Option<(String, u64, u64)>,
}

impl PhaseTimer {
    /// Starts the clock (and zeroes the process-wide batch-occupancy
    /// counters, so the emitted occupancy covers exactly this harness run).
    #[must_use]
    pub fn new() -> Self {
        adas_core::batch::reset_stats();
        Self {
            started: Instant::now(),
            phases: Vec::new(),
            current: None,
            executed_runs: 0,
            trace: None,
        }
    }

    /// Records flight-recorder activity for the emitted JSON: the policy
    /// mode label plus how many runs were recorded and how many traces were
    /// persisted. Together with `total_wall_s` from a traced vs. untraced
    /// invocation this documents the recording overhead.
    pub fn set_trace_info(&mut self, mode: &str, runs_recorded: u64, traces_persisted: u64) {
        self.trace = Some((mode.to_owned(), runs_recorded, traces_persisted));
    }

    fn close_current(&mut self) {
        if let Some((name, since, runs_at_start)) = self.current.take() {
            self.phases.push((
                name,
                since.elapsed().as_secs_f64(),
                self.executed_runs - runs_at_start,
            ));
        }
    }

    /// Ends the running phase (if any) and starts a new one.
    pub fn phase(&mut self, name: &str) {
        self.close_current();
        self.current = Some((name.to_owned(), Instant::now(), self.executed_runs));
    }

    /// Records `n` simulation runs actually executed (cache hits don't
    /// count — runs/sec measures the executor, not the cache).
    pub fn add_runs(&mut self, n: u64) {
        self.executed_runs += n;
    }

    /// Closes the running phase and writes `BENCH_campaign.json` under
    /// `results/`.
    pub fn finish(mut self, cache: &ArtifactCache) {
        self.close_current();
        let total = self.started.elapsed().as_secs_f64();
        let runs_per_sec = if total > 0.0 {
            self.executed_runs as f64 / total
        } else {
            0.0
        };
        let stats = cache.stats();
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"total_wall_s\": {total:.3},\n"));
        json.push_str(&format!("  \"executed_runs\": {},\n", self.executed_runs));
        json.push_str(&format!("  \"runs_per_sec\": {runs_per_sec:.2},\n"));
        json.push_str(&format!(
            "  \"threads\": {},\n",
            adas_core::parallel::thread_count(usize::MAX)
        ));
        let batch = adas_core::batch::stats_snapshot();
        json.push_str(&format!(
            "  \"batch\": {{ \"width\": {}, \"ticks\": {}, \"lane_steps\": {}, \
             \"slot_steps\": {}, \"occupancy\": {} }},\n",
            adas_core::parallel::batch_width(),
            batch.ticks,
            batch.lane_steps,
            batch.slot_steps,
            batch
                .occupancy()
                .map_or_else(|| "null".to_owned(), |o| format!("{o:.4}")),
        ));
        json.push_str(&format!(
            "  \"cache\": {{ \"enabled\": {}, \"hits\": {}, \"misses\": {}, \"writes\": {}, \
             \"bypasses\": {} }},\n",
            cache.is_enabled(),
            stats.hits,
            stats.misses,
            stats.writes,
            stats.bypasses
        ));
        if let Some((mode, recorded, persisted)) = &self.trace {
            json.push_str(&format!(
                "  \"trace\": {{ \"mode\": \"{mode}\", \"runs_recorded\": {recorded}, \
                 \"traces_persisted\": {persisted} }},\n"
            ));
        }
        json.push_str("  \"phases\": [\n");
        let n = self.phases.len();
        for (i, (name, secs, runs)) in self.phases.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let escaped: String = name
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    _ => vec![c],
                })
                .collect();
            let phase_rps = if *secs > 0.0 {
                *runs as f64 / secs
            } else {
                0.0
            };
            json.push_str(&format!(
                "    {{ \"name\": \"{escaped}\", \"wall_s\": {secs:.3}, \"runs\": {runs}, \
                 \"runs_per_sec\": {phase_rps:.2} }}{comma}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        write_results_file("BENCH_campaign.json", &json);
    }
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

/// Paper reference values for comparisons printed by the harnesses.
pub mod paper {
    /// Table IV rows: (scenario, hazards/20, accidents/20, following
    /// distance m, hard brake %, min TTC s, t_fcw s).
    pub const TABLE_IV: [(&str, u32, u32, f64, f64, f64, f64); 6] = [
        ("S1", 1, 0, 26.02, 32.7, 5.70, 4.42),
        ("S2", 1, 0, 29.15, 15.7, 5.27, 4.38),
        ("S3", 2, 1, 29.88, 46.7, 3.71, 4.39),
        ("S4", 10, 10, 23.72, 86.7, 0.85, 3.24),
        ("S5", 2, 1, 29.42, 58.0, 2.33, 3.90),
        ("S6", 3, 0, 28.15, 30.3, 5.44, 4.46),
    ];

    /// Table V: minimal distance to lane lines per scenario, metres.
    pub const TABLE_V: [(&str, f64); 6] = [
        ("S1", 0.45),
        ("S2", 0.49),
        ("S3", 0.07),
        ("S4", 0.63),
        ("S5", 0.44),
        ("S6", 0.59),
    ];

    /// Table VI reference: (fault, row label, A1 %, A2 %, prevented %).
    pub const TABLE_VI: [(&str, &str, f64, f64, f64); 24] = [
        ("Relative Distance", "None", 82.50, 17.50, 0.0),
        ("Relative Distance", "Driver+Check", 55.00, 0.0, 45.00),
        ("Relative Distance", "Driver+Check+AEB-Comp", 49.17, 0.0, 50.83),
        ("Relative Distance", "Driver+Check+AEB-Indep", 0.0, 0.0, 100.0),
        ("Relative Distance", "AEB-Comp", 80.83, 0.0, 19.17),
        ("Relative Distance", "AEB-Indep", 0.0, 0.0, 100.0),
        ("Relative Distance", "Driver", 51.17, 0.83, 40.00),
        ("Relative Distance", "ML", 1.67, 65.83, 32.50),
        ("Desired Curvature", "None", 0.0, 100.0, 0.0),
        ("Desired Curvature", "Driver+Check", 0.0, 54.17, 45.83),
        ("Desired Curvature", "Driver+Check+AEB-Comp", 0.0, 52.72, 47.27),
        ("Desired Curvature", "Driver+Check+AEB-Indep", 0.0, 46.67, 53.33),
        ("Desired Curvature", "AEB-Comp", 0.0, 60.0, 40.00),
        ("Desired Curvature", "AEB-Indep", 0.0, 59.17, 40.83),
        ("Desired Curvature", "Driver", 0.0, 51.67, 48.33),
        ("Desired Curvature", "ML", 0.0, 60.0, 40.00),
        ("Mixed", "None", 4.17, 95.83, 0.0),
        ("Mixed", "Driver+Check", 7.50, 54.17, 38.33),
        ("Mixed", "Driver+Check+AEB-Comp", 8.33, 41.67, 50.00),
        ("Mixed", "Driver+Check+AEB-Indep", 0.0, 48.33, 51.67),
        ("Mixed", "AEB-Comp", 6.67, 67.50, 25.83),
        ("Mixed", "AEB-Indep", 0.0, 58.33, 41.67),
        ("Mixed", "Driver", 8.33, 22.50, 69.17),
        ("Mixed", "ML", 0.0, 76.92, 23.08),
    ];

    /// Table VII: prevention rate (%) vs driver reaction time, per fault
    /// type, reaction times 1.0–3.5 s.
    pub const TABLE_VII_TIMES: [f64; 6] = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5];

    /// Table VII reference rows.
    pub const TABLE_VII: [(&str, [f64; 6]); 3] = [
        ("Relative Distance", [53.33, 55.0, 55.0, 40.0, 43.33, 41.67]),
        ("Desired Curvature", [77.50, 55.83, 58.11, 48.33, 52.50, 40.00]),
        ("Mixed", [70.83, 70.00, 68.33, 69.17, 60.83, 53.33]),
    ];

    /// Table VIII reference: hazard prevention (%) vs road friction
    /// (default, 25 % off, 50 % off, 75 % off).
    pub const TABLE_VIII: [(&str, [f64; 4]); 2] = [
        ("Relative Distance", [50.83, 51.65, 47.50, 43.33]),
        ("Curvature/Lateral", [47.27, 44.17, 45.83, 18.33]),
    ];
}

/// Writes `contents` under `results/` (created on demand) and logs the path.
pub fn write_results_file(name: &str, contents: &str) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[warn] cannot create results dir: {e}");
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => eprintln!("[out] wrote {}", path.display()),
        Err(e) => eprintln!("[warn] cannot write {}: {e}", path.display()),
    }
}

/// Returns the default platform configuration used by all harnesses.
#[must_use]
pub fn default_config() -> PlatformConfig {
    PlatformConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_vi_rows_complete() {
        assert_eq!(paper::TABLE_VI.len(), 24);
        // Every fault type has 8 rows.
        for fault in ["Relative Distance", "Desired Curvature", "Mixed"] {
            assert_eq!(
                paper::TABLE_VI.iter().filter(|r| r.0 == fault).count(),
                8,
                "{fault}"
            );
        }
    }

    #[test]
    fn paper_percentages_roughly_partition() {
        // A few of the paper's own rows do not sum exactly to 100 %
        // (e.g. Relative Distance / Driver: 51.17 + 0.83 + 40.00 = 92).
        // Sanity-check the transcription stays within plausible bounds.
        for (fault, row, a1, a2, prev) in paper::TABLE_VI {
            let sum = a1 + a2 + prev;
            assert!(
                (85.0..=101.0).contains(&sum),
                "{fault}/{row}: {sum}"
            );
        }
    }

    #[test]
    fn reps_default() {
        assert_eq!(REPS, 10);
    }
}
