//! Adaptive cruise control: the longitudinal half of the ADAS.
//!
//! The controller emulates OpenPilot v0.9.7's observed longitudinal
//! behaviour as characterised by the paper's benign-run measurements
//! (Table IV, Fig. 5): it holds a comfortable gap during steady following,
//! but *reacts late and brakes aggressively* when closing in on a slower
//! lead — the paper measures hard-brake commands of 15.7–86.7 % and a speed
//! overshoot from 21.7 m/s down to 9.6 m/s in a benign approach.
//!
//! Mechanically this comes from a two-regime planner: a steady-state gap
//! follower plus a kinematic "required deceleration" term that only kicks in
//! once the constant-deceleration stop distance starts to violate the
//! minimum gap — late, and then strong.

use crate::pid::{Pid, PidConfig};
use adas_perception::PerceptionFrame;
use serde::{Deserialize, Serialize};

/// ACC tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccConfig {
    /// Cruise set speed, m/s.
    pub set_speed: f64,
    /// Constant part of the desired following gap, metres.
    pub gap_offset: f64,
    /// Time-gap part of the desired following gap, seconds.
    pub time_gap: f64,
    /// Gap below which the planner aims to never fall, metres.
    pub min_gap: f64,
    /// Required-deceleration level at which emergency-style planner braking
    /// engages, m/s² (the "late reaction" knob).
    pub brake_engage_decel: f64,
    /// Gain applied to the required deceleration once engaged.
    pub brake_gain: f64,
    /// Most negative acceleration the planner may command, m/s². OpenPilot's
    /// planner can command hard braking; the PANDA-style safety check (when
    /// enabled) clamps this downstream.
    pub max_decel: f64,
    /// Most positive acceleration the planner may command, m/s².
    pub max_accel: f64,
    /// Proportional gain on gap error during steady following.
    pub gap_gain: f64,
    /// Gain on speed difference to the lead during steady following.
    pub speed_match_gain: f64,
    /// Time constant of the closing-speed tracker, seconds. Like
    /// OpenPilot's lead Kalman filter, the planner estimates the closing
    /// speed by low-pass filtering the *derivative of the predicted
    /// distance* — which is why distance-only adversarial perturbations
    /// (whose tier jumps corrupt the derivative) defeat the planner's speed
    /// matching.
    pub closing_tau: f64,
}

impl Default for AccConfig {
    fn default() -> Self {
        Self {
            set_speed: adas_simulator::units::mph(50.0),
            gap_offset: 4.5,
            time_gap: 1.8,
            min_gap: 6.0,
            brake_engage_decel: 1.3,
            brake_gain: 1.35,
            max_decel: -9.0,
            max_accel: 2.0,
            gap_gain: 0.06,
            speed_match_gain: 0.45,
            closing_tau: 1.6,
        }
    }
}

/// Longitudinal plan for one control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongitudinalPlan {
    /// Commanded acceleration, m/s².
    pub accel: f64,
    /// Whether a lead vehicle is currently constraining the plan.
    pub lead_engaged: bool,
}

/// The ACC controller (stateful: cruise-speed PI loop plus the lead
/// closing-speed tracker).
#[derive(Debug, Clone)]
pub struct AccController {
    config: AccConfig,
    cruise_pid: Pid,
    /// `(previous perceived distance, filtered closing-speed estimate)`.
    lead_tracker: Option<(f64, f64)>,
}

impl AccController {
    /// Creates a controller.
    #[must_use]
    pub fn new(config: AccConfig) -> Self {
        let cruise_pid = Pid::new(PidConfig {
            kp: 0.6,
            ki: 0.05,
            kd: 0.0,
            out_min: config.max_decel,
            out_max: config.max_accel,
        });
        Self {
            config,
            cruise_pid,
            lead_tracker: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AccConfig {
        &self.config
    }

    /// Desired steady-state following gap at `speed`, metres.
    #[must_use]
    pub fn desired_gap(&self, speed: f64) -> f64 {
        self.config.gap_offset + self.config.time_gap * speed
    }

    /// Produces the longitudinal plan for one cycle from the perception
    /// frame (which may be fault-injected).
    pub fn plan(&mut self, frame: &PerceptionFrame, dt: f64) -> LongitudinalPlan {
        let cfg = self.config;
        let v = frame.ego_speed;
        let cruise_accel = self.cruise_pid.update(cfg.set_speed - v, dt);

        let Some(lead) = frame.lead else {
            self.lead_tracker = None;
            return LongitudinalPlan {
                accel: cruise_accel,
                lead_engaged: false,
            };
        };

        // Lead tracker: the planner's closing-speed estimate comes from the
        // filtered derivative of the predicted distance, initialised from
        // the DNN's own speed output on (re-)acquisition.
        let gap = lead.distance;
        let closing = match self.lead_tracker {
            Some((prev_gap, est)) if dt > 0.0 => {
                let raw = (prev_gap - gap) / dt;
                let alpha = (dt / cfg.closing_tau).min(1.0);
                est + alpha * (raw - est)
            }
            _ => lead.closing_speed,
        };
        self.lead_tracker = Some((gap, closing));

        // Steady-state follower: proportional on gap error plus speed
        // matching. The speed-match term phases in with proximity — the
        // planner does not slow for a lead it believes is still far, which
        // is (a) OpenPilot's observed late-braking behaviour in benign runs
        // (Fig. 5) and (b) exactly what the distance-inflating patch attack
        // exploits.
        let d_des = self.desired_gap(v);
        let gap_err = gap - d_des;
        let proximity = ((1.3 * d_des - gap) / (0.5 * d_des)).clamp(0.0, 1.0);
        let follow_accel =
            cfg.gap_gain * gap_err - cfg.speed_match_gain * closing * proximity;

        let mut accel = cruise_accel.min(follow_accel);

        // Late, aggressive braking: the constant deceleration needed to stop
        // closing before eating into the minimum gap. Engages only once
        // substantial — OpenPilot's observed behaviour.
        if closing > 0.0 {
            let margin = (gap - cfg.min_gap).max(0.8);
            let required = closing * closing / (2.0 * margin);
            if required > cfg.brake_engage_decel {
                accel = accel.min(-cfg.brake_gain * required);
            }
        }

        LongitudinalPlan {
            accel: accel.clamp(cfg.max_decel, cfg.max_accel),
            lead_engaged: true,
        }
    }

    /// Resets controller state (new run).
    pub fn reset(&mut self) {
        self.cruise_pid.reset();
        self.lead_tracker = None;
    }

    /// The current closing-speed estimate, if a lead is being tracked.
    #[must_use]
    pub fn tracked_closing_speed(&self) -> Option<f64> {
        self.lead_tracker.map(|(_, est)| est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_perception::{LeadPrediction, PerceptionFrame};
    use adas_simulator::units::mph;

    fn frame(v: f64, lead: Option<LeadPrediction>) -> PerceptionFrame {
        PerceptionFrame {
            lead,
            ..PerceptionFrame::neutral(v)
        }
    }

    fn lead(distance: f64, closing: f64, v: f64) -> LeadPrediction {
        LeadPrediction {
            distance,
            closing_speed: closing,
            lead_speed: v,
        }
    }

    #[test]
    fn accelerates_to_set_speed_without_lead() {
        let mut acc = AccController::new(AccConfig::default());
        let p = acc.plan(&frame(10.0, None), 0.01);
        assert!(p.accel > 1.0);
        assert!(!p.lead_engaged);
    }

    #[test]
    fn holds_set_speed() {
        let mut acc = AccController::new(AccConfig::default());
        let p = acc.plan(&frame(mph(50.0), None), 0.01);
        assert!(p.accel.abs() < 0.2);
    }

    #[test]
    fn no_braking_when_lead_far_and_slow_closing() {
        let mut acc = AccController::new(AccConfig::default());
        // 90 m gap, barely closing: cruise continues.
        let p = acc.plan(&frame(mph(50.0), Some(lead(90.0, 1.0, mph(48.0)))), 0.01);
        assert!(p.accel > -0.5, "accel={}", p.accel);
    }

    #[test]
    fn late_brake_is_aggressive() {
        let mut acc = AccController::new(AccConfig::default());
        let v = mph(50.0);
        let closing = v - mph(30.0); // ≈ 8.9 m/s
        // Far: not yet braking hard.
        let far = acc.plan(&frame(v, Some(lead(70.0, closing, mph(30.0)))), 0.01);
        // Near: hard brake.
        let near = acc.plan(&frame(v, Some(lead(22.0, closing, mph(30.0)))), 0.01);
        assert!(far.accel > -3.0, "far accel = {}", far.accel);
        assert!(near.accel < -3.0, "near accel = {}", near.accel);
    }

    #[test]
    fn steady_following_keeps_gap() {
        // At the desired gap with matched speed, the plan is near zero.
        let mut acc = AccController::new(AccConfig::default());
        let v = mph(30.0);
        let gap = acc.desired_gap(v);
        let p = acc.plan(&frame(v, Some(lead(gap, 0.0, v))), 0.01);
        assert!(p.accel.abs() < 0.4, "accel={}", p.accel);
        assert!(p.lead_engaged);
    }

    #[test]
    fn desired_gap_matches_paper_following_distance() {
        // Paper Table IV: stable following distance ≈ 26–30 m behind a
        // 30 mph lead.
        let acc = AccController::new(AccConfig::default());
        let gap = acc.desired_gap(mph(30.0));
        assert!((26.0..31.0).contains(&gap), "gap={gap}");
    }

    #[test]
    fn blindness_causes_reacceleration() {
        // Lead disappears (close-range blindness): the planner reverts to
        // cruise and accelerates — the Fig. 6 failure.
        let mut acc = AccController::new(AccConfig::default());
        let v = mph(20.0);
        let engaged = acc.plan(&frame(v, Some(lead(3.0, 5.0, mph(10.0)))), 0.01);
        assert!(engaged.accel < -2.0);
        let blind = acc.plan(&frame(v, None), 0.01);
        assert!(blind.accel > 0.5, "accel={}", blind.accel);
    }

    #[test]
    fn plan_respects_decel_floor() {
        let mut acc = AccController::new(AccConfig::default());
        let p = acc.plan(&frame(30.0, Some(lead(2.0, 20.0, 0.0))), 0.01);
        assert!(p.accel >= AccConfig::default().max_decel - 1e-9);
    }

    #[test]
    fn opening_gap_never_triggers_emergency_term() {
        let mut acc = AccController::new(AccConfig::default());
        let p = acc.plan(&frame(mph(30.0), Some(lead(12.0, -3.0, mph(40.0)))), 0.01);
        // Lead pulling away at short gap: mild response only.
        assert!(p.accel > -1.5, "accel={}", p.accel);
    }
}
