//! Automated lane centering: the lateral half of the ADAS.
//!
//! Mirrors OpenPilot's architecture: the ALC is a *path follower* — it
//! converts the perception module's planned path curvature (which already
//! contains the model's lane-centering correction, see
//! [`adas_perception::PerceptionFrame::path_centering`]) into a front-wheel
//! angle via the bicycle model, with first-order smoothing.
//!
//! Because all lane-keeping intelligence lives in the (attackable) path
//! output, a road-patch attack that bends the planned path steers the
//! vehicle out of its lane with nothing downstream to correct it — the
//! paper's ALC attack. An optional auxiliary feedback on the raw lane-line
//! predictions is provided for ablation studies (disabled by default, as in
//! OpenPilot).

use adas_perception::PerceptionFrame;
use serde::{Deserialize, Serialize};

/// ALC tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlcConfig {
    /// Vehicle wheelbase used for the curvature → steering conversion,
    /// metres.
    pub wheelbase: f64,
    /// First-order smoothing time constant on the steering command,
    /// seconds.
    pub command_tau: f64,
    /// Absolute steering angle limit, radians.
    pub steer_limit: f64,
    /// Auxiliary feedback gain from the raw lane-line offset, rad/m
    /// (0 = OpenPilot-faithful pure path following; used by ablations).
    pub aux_offset_gain: f64,
    /// Magnitude limit of the auxiliary feedback, radians.
    pub aux_feedback_limit: f64,
}

impl Default for AlcConfig {
    fn default() -> Self {
        Self {
            wheelbase: 2.7,
            command_tau: 0.08,
            steer_limit: 0.5,
            aux_offset_gain: 0.0,
            aux_feedback_limit: 0.02,
        }
    }
}

/// The ALC controller (stateful: output smoothing).
#[derive(Debug, Clone)]
pub struct AlcController {
    config: AlcConfig,
    smoothed: Option<f64>,
}

impl AlcController {
    /// Creates a controller.
    #[must_use]
    pub fn new(config: AlcConfig) -> Self {
        Self {
            config,
            smoothed: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AlcConfig {
        &self.config
    }

    /// Computes the front-wheel steering command for one cycle.
    pub fn steer(&mut self, frame: &PerceptionFrame, dt: f64) -> f64 {
        let cfg = self.config;
        let mut target = (cfg.wheelbase * frame.path_curvature()).atan();
        if cfg.aux_offset_gain != 0.0 {
            let aux = (-cfg.aux_offset_gain * frame.lanes.lateral_offset())
                .clamp(-cfg.aux_feedback_limit, cfg.aux_feedback_limit);
            target += aux;
        }
        target = target.clamp(-cfg.steer_limit, cfg.steer_limit);

        let out = match self.smoothed {
            Some(prev) if dt > 0.0 => {
                let alpha = (dt / cfg.command_tau).min(1.0);
                prev + alpha * (target - prev)
            }
            _ => target,
        };
        self.smoothed = Some(out);
        out
    }

    /// Resets controller state (new run).
    pub fn reset(&mut self) {
        self.smoothed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_perception::{LanePrediction, PerceptionFrame};

    fn frame(kappa: f64, centering: f64) -> PerceptionFrame {
        PerceptionFrame {
            desired_curvature: kappa,
            path_centering: centering,
            ..PerceptionFrame::neutral(20.0)
        }
    }

    #[test]
    fn follows_path_curvature() {
        let mut alc = AlcController::new(AlcConfig::default());
        let kappa = 1.0 / 400.0;
        let steer = alc.steer(&frame(kappa, 0.0), 0.01);
        assert!((steer - (2.7 * kappa).atan()).abs() < 1e-9);
    }

    #[test]
    fn centering_adds_to_feedforward() {
        let mut alc = AlcController::new(AlcConfig::default());
        let steer = alc.steer(&frame(0.0, 0.005), 0.01);
        assert!((steer - (2.7 * 0.005_f64).atan()).abs() < 1e-9);
    }

    #[test]
    fn poisoned_path_is_followed_blindly() {
        // The attack's whole premise: with the centering folded into the
        // (poisoned) path, the follower has no independent correction.
        let mut alc = AlcController::new(AlcConfig::default());
        let poisoned = frame(0.0006, 0.0);
        let steer = alc.steer(&poisoned, 0.01);
        assert!(steer > 0.0);
    }

    #[test]
    fn smoothing_limits_step_response() {
        let mut alc = AlcController::new(AlcConfig::default());
        let _ = alc.steer(&frame(0.0, 0.0), 0.01);
        let step = alc.steer(&frame(0.02, 0.0), 0.01);
        let target = (2.7 * 0.02_f64).atan();
        assert!(step < target * 0.5, "smoothing too weak: {step} vs {target}");
    }

    #[test]
    fn steer_limit_enforced() {
        let mut alc = AlcController::new(AlcConfig::default());
        let mut last = 0.0;
        for _ in 0..500 {
            last = alc.steer(&frame(5.0, 0.0), 0.01);
        }
        assert!(last <= AlcConfig::default().steer_limit + 1e-12);
    }

    #[test]
    fn aux_feedback_optional() {
        let cfg = AlcConfig {
            aux_offset_gain: 0.05,
            ..AlcConfig::default()
        };
        let mut alc = AlcController::new(cfg);
        let mut f = frame(0.0, 0.0);
        // Vehicle right of center (offset −0.5) → steer left.
        f.lanes = LanePrediction {
            left_line: 2.25,
            right_line: 1.25,
        };
        let steer = alc.steer(&f, 0.01);
        assert!(steer > 0.0);
        assert!(steer <= cfg.aux_feedback_limit + 1e-12);
    }

    #[test]
    fn reset_clears_smoothing() {
        let mut alc = AlcController::new(AlcConfig::default());
        let _ = alc.steer(&frame(0.05, 0.0), 0.01);
        alc.reset();
        let fresh = alc.steer(&frame(0.0, 0.0), 0.01);
        assert_eq!(fresh, 0.0);
    }
}
