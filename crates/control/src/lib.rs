//! OpenPilot-like ADAS control stack: ACC (longitudinal) + ALC (lateral).
//!
//! The controllers consume [`adas_perception::PerceptionFrame`]s — possibly
//! fault-injected by the attack engine — and produce an [`AdasCommand`]
//! (acceleration + steering) that the platform arbitrates against the safety
//! interventions before actuation.
//!
//! # Example
//!
//! ```
//! use adas_control::{AdasConfig, AdasController};
//! use adas_perception::PerceptionFrame;
//!
//! let mut adas = AdasController::new(AdasConfig::default());
//! let cmd = adas.control(&PerceptionFrame::neutral(15.0), 0.01);
//! assert!(cmd.accel > 0.0); // below set speed → accelerate
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acc;
pub mod alc;
pub mod pid;

pub use acc::{AccConfig, AccController, LongitudinalPlan};
pub use alc::{AlcConfig, AlcController};
pub use pid::{Pid, PidConfig};

use adas_perception::PerceptionFrame;
use serde::{Deserialize, Serialize};

/// Combined ADAS output for one control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdasCommand {
    /// Longitudinal acceleration command, m/s².
    pub accel: f64,
    /// Front-wheel steering angle command, radians.
    pub steer: f64,
    /// Whether a lead vehicle constrained the longitudinal plan.
    pub lead_engaged: bool,
}

/// Configuration of the full control stack.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AdasConfig {
    /// Longitudinal (ACC) parameters.
    pub acc: AccConfig,
    /// Lateral (ALC) parameters.
    pub alc: AlcConfig,
}

/// The combined ACC + ALC controller.
#[derive(Debug, Clone)]
pub struct AdasController {
    acc: AccController,
    alc: AlcController,
}

impl AdasController {
    /// Creates the stack from a configuration.
    #[must_use]
    pub fn new(config: AdasConfig) -> Self {
        Self {
            acc: AccController::new(config.acc),
            alc: AlcController::new(config.alc),
        }
    }

    /// Access to the longitudinal controller.
    #[must_use]
    pub fn acc(&self) -> &AccController {
        &self.acc
    }

    /// Runs one control cycle.
    pub fn control(&mut self, frame: &PerceptionFrame, dt: f64) -> AdasCommand {
        let plan = self.acc.plan(frame, dt);
        let steer = self.alc.steer(frame, dt);
        AdasCommand {
            accel: plan.accel,
            steer,
            lead_engaged: plan.lead_engaged,
        }
    }

    /// Resets all controller state (new run).
    pub fn reset(&mut self) {
        self.acc.reset();
        self.alc.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_perception::{LeadPrediction, PerceptionFrame};
    use adas_simulator::units::mph;

    #[test]
    fn control_combines_both_axes() {
        let mut adas = AdasController::new(AdasConfig::default());
        let mut frame = PerceptionFrame::neutral(mph(50.0));
        frame.desired_curvature = 1.0 / 500.0;
        frame.lead = Some(LeadPrediction {
            distance: 20.0,
            closing_speed: 9.0,
            lead_speed: mph(30.0),
        });
        let cmd = adas.control(&frame, 0.01);
        assert!(cmd.accel < -2.0, "should brake, got {}", cmd.accel);
        assert!(cmd.steer > 0.0, "should steer into the bend");
        assert!(cmd.lead_engaged);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut adas = AdasController::new(AdasConfig::default());
        for _ in 0..100 {
            let _ = adas.control(&PerceptionFrame::neutral(5.0), 0.01);
        }
        adas.reset();
        let mut fresh = AdasController::new(AdasConfig::default());
        let a = adas.control(&PerceptionFrame::neutral(5.0), 0.01);
        let b = fresh.control(&PerceptionFrame::neutral(5.0), 0.01);
        assert!((a.accel - b.accel).abs() < 1e-9);
    }
}
