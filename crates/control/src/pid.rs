//! A small PID controller with output limits and anti-windup.

use serde::{Deserialize, Serialize};

/// PID gains and limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Lower output bound.
    pub out_min: f64,
    /// Upper output bound.
    pub out_max: f64,
}

/// A PID controller instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    prev_error: Option<f64>,
}

impl Pid {
    /// Creates a controller from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `out_min > out_max`.
    #[must_use]
    pub fn new(config: PidConfig) -> Self {
        assert!(config.out_min <= config.out_max, "inverted output bounds");
        Self {
            config,
            integral: 0.0,
            prev_error: None,
        }
    }

    /// Advances the controller by `dt` with the given error and returns the
    /// clamped output. Integral windup is prevented by conditional
    /// integration (the integral freezes while the output is saturated in
    /// the error's direction).
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        let c = self.config;
        let derivative = match self.prev_error {
            Some(prev) if dt > 0.0 => (error - prev) / dt,
            _ => 0.0,
        };
        self.prev_error = Some(error);

        let unclamped =
            c.kp * error + c.ki * (self.integral + error * dt) + c.kd * derivative;
        let saturated_high = unclamped > c.out_max && error > 0.0;
        let saturated_low = unclamped < c.out_min && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral += error * dt;
        }
        (c.kp * error + c.ki * self.integral + c.kd * derivative).clamp(c.out_min, c.out_max)
    }

    /// Resets integral and derivative history.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(kp: f64, ki: f64, kd: f64) -> Pid {
        Pid::new(PidConfig {
            kp,
            ki,
            kd,
            out_min: -1.0,
            out_max: 1.0,
        })
    }

    #[test]
    fn proportional_only() {
        let mut p = pid(0.5, 0.0, 0.0);
        assert!((p.update(1.0, 0.01) - 0.5).abs() < 1e-12);
        assert!((p.update(-0.4, 0.01) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn output_clamped() {
        let mut p = pid(10.0, 0.0, 0.0);
        assert_eq!(p.update(5.0, 0.01), 1.0);
        assert_eq!(p.update(-5.0, 0.01), -1.0);
    }

    #[test]
    fn integral_accumulates() {
        let mut p = pid(0.0, 1.0, 0.0);
        let mut out = 0.0;
        for _ in 0..100 {
            out = p.update(0.5, 0.01);
        }
        assert!((out - 0.5).abs() < 0.02, "out={out}");
    }

    #[test]
    fn anti_windup_freezes_integral() {
        let mut p = pid(0.0, 10.0, 0.0);
        for _ in 0..1000 {
            let _ = p.update(1.0, 0.01); // saturated at +1 the whole time
        }
        // Error reverses; output must unwind quickly, not after a long
        // integral discharge.
        let mut steps = 0;
        loop {
            let out = p.update(-1.0, 0.01);
            steps += 1;
            if out < 0.0 || steps > 200 {
                break;
            }
        }
        assert!(steps < 50, "windup held for {steps} steps");
    }

    #[test]
    fn derivative_damps_change() {
        let mut p = pid(0.0, 0.0, 0.01);
        let _ = p.update(0.0, 0.01);
        let out = p.update(0.5, 0.01); // error rising fast
        assert!(out > 0.0);
        let out2 = p.update(0.5, 0.01); // error steady → derivative zero
        assert_eq!(out2, 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = pid(0.0, 1.0, 1.0);
        let _ = p.update(1.0, 0.1);
        let _ = p.update(1.0, 0.1);
        p.reset();
        let out = p.update(0.0, 0.1);
        assert_eq!(out, 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted output bounds")]
    fn inverted_bounds_panic() {
        let _ = Pid::new(PidConfig {
            kp: 1.0,
            ki: 0.0,
            kd: 0.0,
            out_min: 1.0,
            out_max: -1.0,
        });
    }
}
