//! Closed-loop tests of the control stack against the physics: the ACC must
//! settle behind a lead; the ALC must track curvy roads via the path
//! output; the documented late-braking profile must appear.

use adas_control::{AdasConfig, AdasController};
use adas_perception::{PerceptionConfig, PerceptionEmulator};
use adas_simulator::{
    units::{mph, SIM_DT},
    DeterministicRng, Npc, NpcPlan, RoadBuilder, VehicleCommand, VehicleParams, World,
    WorldConfig,
};

/// Drives the full perception→control→physics loop (no faults, no safety
/// layer) and returns the world afterwards.
fn drive_loop(road_curvy: bool, lead_gap: Option<f64>, steps: usize, set_speed: f64) -> World {
    let road = if road_curvy {
        RoadBuilder::curvy_highway(5000.0).build()
    } else {
        RoadBuilder::straight_highway(5000.0).build()
    };
    let mut world = World::new(WorldConfig::default(), road);
    world.spawn_ego(10.0, set_speed);
    if let Some(gap) = lead_gap {
        world.add_npc(Npc::new(
            VehicleParams::sedan(),
            10.0 + gap,
            0.0,
            mph(30.0),
            NpcPlan::cruise(),
        ));
    }
    let mut perception =
        PerceptionEmulator::new(PerceptionConfig::default(), DeterministicRng::from_seed(3));
    let mut config = AdasConfig::default();
    config.acc.set_speed = set_speed;
    let mut adas = AdasController::new(config);
    let params = VehicleParams::sedan();
    for _ in 0..steps {
        let frame = perception.perceive(&world);
        let cmd = adas.control(&frame, SIM_DT);
        let vehicle_cmd = VehicleCommand::from_accel(cmd.accel, &params).with_steer(cmd.steer);
        world.step(vehicle_cmd);
    }
    world
}

#[test]
fn settles_behind_slower_lead_without_contact() {
    let world = drive_loop(false, Some(60.0), 6000, mph(50.0));
    assert!(world.collision().is_none());
    let obs = world.lead_observation().expect("still tracking lead");
    assert!(
        (20.0..45.0).contains(&obs.distance),
        "settled gap {}",
        obs.distance
    );
    assert!(
        (obs.closing_speed).abs() < 1.0,
        "closing {}",
        obs.closing_speed
    );
}

#[test]
fn holds_set_speed_without_lead() {
    let world = drive_loop(false, None, 4000, mph(50.0));
    let v = world.ego().state().v;
    assert!((v - mph(50.0)).abs() < 1.0, "cruise speed {v}");
}

#[test]
fn tracks_curvy_road_within_lane() {
    let world = drive_loop(true, None, 9000, mph(50.0));
    assert!(world.lane_departure().is_none());
    assert!(world.ego_lane_line_distance() > 0.0);
}

#[test]
fn approach_shows_late_hard_braking() {
    // The paper's Fig. 5 signature: a pronounced speed drop only once the
    // lead is close, not a smooth glide from far away.
    let road = RoadBuilder::straight_highway(5000.0).build();
    let mut world = World::new(WorldConfig::default(), road);
    world.spawn_ego(10.0, mph(50.0));
    world.add_npc(Npc::new(
        VehicleParams::sedan(),
        70.0,
        0.0,
        mph(30.0),
        NpcPlan::cruise(),
    ));
    let mut perception =
        PerceptionEmulator::new(PerceptionConfig::default(), DeterministicRng::from_seed(4));
    let mut adas = AdasController::new(AdasConfig::default());
    let params = VehicleParams::sedan();
    let mut speed_at_gap_50 = None;
    let mut min_speed: f64 = f64::INFINITY;
    for _ in 0..3000 {
        let frame = perception.perceive(&world);
        let cmd = adas.control(&frame, SIM_DT);
        world.step(VehicleCommand::from_accel(cmd.accel, &params).with_steer(cmd.steer));
        if let Some(obs) = world.lead_observation() {
            if obs.distance < 50.0 && speed_at_gap_50.is_none() {
                speed_at_gap_50 = Some(world.ego().state().v);
            }
        }
        min_speed = min_speed.min(world.ego().state().v);
    }
    // Still near cruise speed at 50 m gap (late reaction), then a deep drop.
    let at_50 = speed_at_gap_50.expect("approached through 50 m");
    assert!(at_50 > mph(50.0) * 0.85, "early braking: v={at_50}");
    assert!(
        min_speed < mph(30.0) * 1.05,
        "no hard drop: min {min_speed}"
    );
}

#[test]
fn lead_tracker_converges_to_true_closing_speed() {
    use adas_control::{AccConfig, AccController};
    use adas_perception::{LeadPrediction, PerceptionFrame};
    let mut acc = AccController::new(AccConfig::default());
    // Constant closing at 6 m/s observed through the distance channel.
    let mut gap = 90.0;
    for _ in 0..400 {
        gap -= 6.0 * SIM_DT;
        let frame = PerceptionFrame {
            lead: Some(LeadPrediction {
                distance: gap,
                closing_speed: 0.0, // DNN speed output deliberately wrong
                lead_speed: 10.0,
            }),
            ..PerceptionFrame::neutral(20.0)
        };
        let _ = acc.plan(&frame, SIM_DT);
    }
    let est = acc.tracked_closing_speed().expect("tracking");
    assert!((est - 6.0).abs() < 0.5, "estimate {est}");
}
