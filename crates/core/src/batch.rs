//! Lockstep batch executor: runs many campaign runs in
//! structure-of-arrays lockstep so the LSTM mitigation advances a whole
//! batch per weights-stationary matvec.
//!
//! The scalar campaign path executes runs one at a time; each 10 ms cycle
//! of an ML-protected run pays a one-sample LSTM step whose matvecs are
//! FMA-latency-bound. This module replaces run-at-a-time scheduling with
//! *batch*-at-a-time: a work unit is a chunk of consecutive runs that
//! advance together, one pipeline stage per lane per tick, over an
//! [`adas_simulator::BatchWorld`] SoA view. The per-lane ML hidden/cell
//! panels live in per-worker scratch ([`adas_ml::BatchPredictorState`] /
//! [`adas_ml::BatchInferScratch`]) so a whole campaign allocates a handful
//! of panels total.
//!
//! # Bit identity
//!
//! Batched results are bit-for-bit the scalar results, for three reasons:
//!
//! 1. Lanes are independent. Each run owns its `Platform` (world, RNG
//!    streams, monitors); no cross-lane reduction exists anywhere.
//! 2. The per-run operation sequence is unchanged. A lane's cycle is
//!    `begin_step → LSTM forward → finish_step` — exactly how the scalar
//!    [`Platform::step`] is composed — and the batched LSTM kernels
//!    compute each lane's column with the scalar operation order
//!    (asserted bitwise by the `adas-ml` unit tests and
//!    `tests/batch_equivalence.rs`).
//! 3. Divergence never reorders work. A finished lane drops out of the
//!    active mask; the slot refills with the next queued run whose ML
//!    panel column is zeroed ([`adas_ml::BatchPredictorState::reset_lane`])
//!    — the same zero state a fresh scalar run starts from. Retired /
//!    never-filled columns still flow through the batched matvec (finite
//!    garbage no one reads, and lanes never mix), but the per-lane gate
//!    transcendentals — the dominant cost — are skipped for them via the
//!    liveness mask, so a half-drained batch costs what its live lanes
//!    cost.
//!
//! Results are keyed by run index and merged in order, so output is also
//! independent of thread count and batch width.

use crate::platform::{PendingCycle, Platform, RunEnd, RunEnd2};
use adas_ml::{BatchInferScratch, BatchPredictorState, LstmPredictor, FEATURE_DIM};
use adas_parallel::MapControl;
use adas_simulator::BatchWorld;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Batches per stolen work unit: each chunk covers `width ×
/// CHUNK_BATCHES` runs, so work-stealing stays balanced (a chunk is a few
/// batch-fills, not the whole campaign) without shrinking batches to the
/// point where every chunk ends with a mostly-drained batch.
const CHUNK_BATCHES: usize = 4;

static TICKS: AtomicU64 = AtomicU64::new(0);
static LANE_STEPS: AtomicU64 = AtomicU64::new(0);
static SLOT_STEPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide occupancy accounting for the batched executor, summed
/// over every chunk since the last [`reset_stats`]. The bench harness
/// snapshots this into `results/BENCH_campaign.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Lockstep ticks executed (one per batch per cycle).
    pub ticks: u64,
    /// Per-lane steps executed (Σ active lanes over ticks).
    pub lane_steps: u64,
    /// Lane-slots available (Σ batch width over ticks).
    pub slot_steps: u64,
}

impl BatchStats {
    /// Mean fraction of batch slots doing useful work per tick, in
    /// `[0, 1]`. `None` when nothing ran batched.
    #[must_use]
    pub fn occupancy(&self) -> Option<f64> {
        (self.slot_steps > 0).then(|| self.lane_steps as f64 / self.slot_steps as f64)
    }
}

/// Snapshot of the process-wide batch counters.
#[must_use]
pub fn stats_snapshot() -> BatchStats {
    BatchStats {
        ticks: TICKS.load(Ordering::Relaxed),
        lane_steps: LANE_STEPS.load(Ordering::Relaxed),
        slot_steps: SLOT_STEPS.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide batch counters (bench harnesses call this
/// between phases).
pub fn reset_stats() {
    TICKS.store(0, Ordering::Relaxed);
    LANE_STEPS.store(0, Ordering::Relaxed);
    SLOT_STEPS.store(0, Ordering::Relaxed);
}

/// Per-worker batched-inference panels: input panel + hidden/cell state +
/// scratch, allocated once per worker and reused across every chunk that
/// worker steals.
struct MlPanels {
    model: Arc<LstmPredictor>,
    x: Vec<f64>,
    state: BatchPredictorState,
    scratch: BatchInferScratch,
    /// Per-lane liveness for the current tick: only lanes with a pending
    /// ML input pay the gate transcendentals (idle slots, drained chunk
    /// tails, and non-ML lanes are skipped).
    active: Vec<bool>,
}

impl MlPanels {
    fn new(model: &Arc<LstmPredictor>, width: usize) -> Self {
        Self {
            model: Arc::clone(model),
            x: vec![0.0; FEATURE_DIM * width],
            state: model.batch_state(width),
            scratch: model.batch_scratch(width),
            active: vec![false; width],
        }
    }

    /// One weights-stationary LSTM step over the live lanes of the batch.
    fn step(&mut self) {
        self.model
            .step_batch_masked(&self.x, &mut self.state, &mut self.scratch, &self.active);
    }
}

/// Runs `items` through heterogeneous platforms in lockstep batches of
/// `width` lanes, scheduled by the work-stealing executor in chunks of
/// `width × 4` runs, honouring `ctl` for cancellation (all-or-nothing,
/// like [`adas_parallel::map_ctl`] — cancellation granularity is one
/// chunk).
///
/// `make(index, item)` builds the platform for one run (called exactly
/// once per item); `finish(index, item, end, platform)` consumes the
/// finished platform and produces the result. Results are returned in
/// item order regardless of thread count, batch width, or which lane a
/// run landed in.
///
/// `ml_model` must be the model backing every ML-enabled platform `make`
/// produces (lanes whose platform runs no ML mitigation simply skip the
/// panel); per-run outcomes are bit-identical to driving each platform
/// with [`Platform::step`].
///
/// # Panics
///
/// Panics if `width == 0`, or if a platform wants an ML step and
/// `ml_model` is `None`.
pub fn run_lockstep_ctl<T, R, M, F>(
    items: &[T],
    width: usize,
    ml_model: Option<&Arc<LstmPredictor>>,
    make: M,
    finish: F,
    ctl: &MapControl,
) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &T) -> Platform + Sync,
    F: Fn(usize, &T, RunEnd, Platform) -> R + Sync,
{
    assert!(width > 0, "batch width must be ≥ 1");
    if items.is_empty() {
        return Some(Vec::new());
    }
    let chunk_len = width.saturating_mul(CHUNK_BATCHES).max(1);
    let chunks: Vec<(usize, usize)> = (0..items.len())
        .step_by(chunk_len)
        .map(|start| (start, (start + chunk_len).min(items.len())))
        .collect();
    let per_chunk = adas_parallel::map_ctl(
        &chunks,
        || ml_model.map(|m| MlPanels::new(m, width)),
        |panels, _, &(start, end)| {
            drive_chunk(&items[start..end], start, width, panels, &make, &finish)
        },
        ctl,
    )?;
    Some(per_chunk.into_iter().flatten().collect())
}

/// [`run_lockstep_ctl`] without external cancellation.
pub fn run_lockstep<T, R, M, F>(
    items: &[T],
    width: usize,
    ml_model: Option<&Arc<LstmPredictor>>,
    make: M,
    finish: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &T) -> Platform + Sync,
    F: Fn(usize, &T, RunEnd, Platform) -> R + Sync,
{
    run_lockstep_ctl(items, width, ml_model, make, finish, &MapControl::new())
        .expect("uncancelled lockstep map completed")
}

/// Drives one chunk of runs to completion in lockstep.
fn drive_chunk<T, R>(
    items: &[T],
    base: usize,
    width: usize,
    panels: &mut Option<MlPanels>,
    make: &(impl Fn(usize, &T) -> Platform + Sync),
    finish: &(impl Fn(usize, &T, RunEnd, Platform) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    let mut world = BatchWorld::new(width);
    // lane → (chunk-local run index, platform); None = idle slot.
    let mut lanes: Vec<Option<(usize, Platform)>> = (0..width).map(|_| None).collect();
    let mut pendings: Vec<Option<PendingCycle>> = (0..width).map(|_| None).collect();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut next = 0usize;

    let fill = |lane: usize,
                    next: &mut usize,
                    lanes: &mut Vec<Option<(usize, Platform)>>,
                    world: &mut BatchWorld,
                    panels: &mut Option<MlPanels>| {
        if *next >= n {
            return;
        }
        let platform = make(base + *next, &items[*next]);
        if let Some(p) = panels.as_mut() {
            // Fresh run, fresh recurrent stream: the scalar path starts
            // from the zero init state, so must this lane's column.
            p.state.reset_lane(lane);
        }
        world.activate(lane, platform.world());
        lanes[lane] = Some((*next, platform));
        *next += 1;
    };

    for lane in 0..width {
        fill(lane, &mut next, &mut lanes, &mut world, panels);
    }

    loop {
        // Stage A: every active lane runs stages 1–7 (perception through
        // the ML feature encode) of its own cycle.
        let mut any = false;
        let mut any_ml = false;
        for lane in 0..width {
            if let Some((_, platform)) = lanes[lane].as_mut() {
                let pending = platform.begin_step();
                any = true;
                any_ml |= pending.ml_input.is_some();
                pendings[lane] = Some(pending);
            }
        }
        if !any {
            break;
        }

        // Stage B: one batched LSTM step serves every ML lane. Lanes
        // without a pending ML input are masked out of the gate math and
        // keep their previous (finite, never-read) state until refill
        // resets them.
        if any_ml {
            let p = panels
                .as_mut()
                .expect("ML-enabled lanes require a model for the batched forward");
            for (lane, pending) in pendings.iter().enumerate() {
                let input = pending.as_ref().and_then(|c| c.ml_input.as_ref());
                p.active[lane] = input.is_some();
                if let Some(input) = input {
                    for (c, v) in input.x.iter().enumerate() {
                        p.x[c * width + lane] = *v;
                    }
                }
            }
            p.step();
        }

        // Stage C: every pending lane commits its cycle (mitigation
        // decision, arbitration, actuation, monitors), captures into the
        // SoA panels, and retires/refills on divergence.
        for lane in 0..width {
            let Some(pending) = pendings[lane].take() else {
                continue;
            };
            let (_, platform) = lanes[lane].as_mut().expect("pending lane is occupied");
            let ml_y = pending
                .ml_input
                .is_some()
                .then(|| panels.as_ref().expect("ML panels present").scratch.output(lane));
            let fault_active = pending.fault_active;
            let _ = platform.finish_step(pending, ml_y);
            world.capture(lane, platform.world(), fault_active);
            if let RunEnd2::Yes(end) = platform.finished() {
                let (index, platform) = lanes[lane].take().expect("finished lane is occupied");
                out[index] = Some(finish(base + index, &items[index], end, platform));
                world.retire(lane);
                fill(lane, &mut next, &mut lanes, &mut world, panels);
            }
        }
        world.advance();
    }

    TICKS.fetch_add(world.ticks(), Ordering::Relaxed);
    LANE_STEPS.fetch_add(world.lane_steps(), Ordering::Relaxed);
    SLOT_STEPS.fetch_add(world.ticks() * width as u64, Ordering::Relaxed);

    out.into_iter()
        .map(|r| r.expect("every chunk run completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterventionConfig, PlatformConfig};
    use crate::experiment::{campaign_run_ids, run_single};
    use adas_attack::FaultType;

    fn short_config() -> PlatformConfig {
        PlatformConfig {
            max_steps: 400,
            ..PlatformConfig::default()
        }
    }

    #[test]
    fn lockstep_matches_scalar_without_ml() {
        let cfg = short_config();
        let ids = campaign_run_ids(1);
        let fault = Some(FaultType::RelativeDistance);
        let scalar: Vec<_> = ids
            .iter()
            .map(|id| run_single(*id, fault, &cfg, None, 11))
            .collect();
        for width in [1usize, 3, 8, 32] {
            let batched = run_lockstep(
                &ids,
                width,
                None,
                |_, id| crate::experiment::build_platform(*id, fault, &cfg, None, 11),
                |_, _, _, platform| platform.record(),
            );
            assert_eq!(
                format!("{scalar:?}"),
                format!("{batched:?}"),
                "width={width}"
            );
        }
    }

    #[test]
    fn lockstep_result_order_is_item_order() {
        let cfg = PlatformConfig {
            max_steps: 120,
            ..PlatformConfig::default()
        };
        let ids = campaign_run_ids(1);
        let out = run_lockstep(
            &ids,
            4,
            None,
            |_, id| crate::experiment::build_platform(*id, None, &cfg, None, 3),
            |i, _, _, _| i,
        );
        assert_eq!(out, (0..ids.len()).collect::<Vec<_>>());
    }

    #[test]
    fn occupancy_stats_accumulate() {
        reset_stats();
        let cfg = PlatformConfig {
            max_steps: 150,
            ..PlatformConfig::default()
        };
        let ids = campaign_run_ids(1);
        let _ = run_lockstep(
            &ids,
            8,
            None,
            |_, id| crate::experiment::build_platform(*id, None, &cfg, None, 3),
            |_, _, _, platform| platform.record(),
        );
        let stats = stats_snapshot();
        assert!(stats.ticks > 0);
        assert!(stats.lane_steps >= stats.ticks, "≥ 1 active lane per tick");
        assert!(stats.slot_steps >= stats.lane_steps);
        let occ = stats.occupancy().expect("ran batched");
        assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ}");
    }

    #[test]
    fn cancellation_returns_none() {
        let cfg = short_config();
        let ids = campaign_run_ids(1);
        let ctl = MapControl::new();
        ctl.cancel();
        let out = run_lockstep_ctl(
            &ids,
            4,
            None,
            |_, id| crate::experiment::build_platform(*id, None, &cfg, None, 3),
            |_, _, _, platform| platform.record(),
            &ctl,
        );
        assert!(out.is_none());
    }

    #[test]
    fn lockstep_matches_scalar_with_ml_interventions() {
        // A tiny trained model exercises the batched forward + refill
        // path end-to-end (full-grid coverage lives in
        // tests/batch_equivalence.rs).
        let data = crate::experiment::collect_training_data(7, 1, 60);
        let mut model = adas_ml::LstmPredictor::new(adas_ml::ModelSpec {
            hidden1: 16,
            hidden2: 8,
            seed: 9,
        });
        let _ = adas_ml::train(
            &mut model,
            &data,
            &adas_ml::TrainConfig {
                epochs: 1,
                ..adas_ml::TrainConfig::default()
            },
        );
        let model = Arc::new(model);
        let cfg = PlatformConfig {
            max_steps: 500,
            ..PlatformConfig::with_interventions(InterventionConfig::ml_only())
        };
        let ids = campaign_run_ids(1);
        let fault = Some(FaultType::RelativeDistance);
        let scalar: Vec<_> = ids
            .iter()
            .map(|id| run_single(*id, fault, &cfg, Some(&model), 11))
            .collect();
        for width in [1usize, 5, 32] {
            let batched = run_lockstep(
                &ids,
                width,
                Some(&model),
                |_, id| {
                    crate::experiment::build_platform(*id, fault, &cfg, Some(&model), 11)
                },
                |_, _, _, platform| platform.record(),
            );
            assert_eq!(
                format!("{scalar:?}"),
                format!("{batched:?}"),
                "width={width}"
            );
        }
    }
}
