//! Content-addressed artifact cache shared by the bench binaries.
//!
//! Expensive artifacts — the trained LSTM weights and completed campaign
//! cells — are stored under `results/cache/` keyed by a stable fingerprint
//! of everything that determines them (dataset content, hyper-parameters,
//! seed, platform configuration). Any harness that needs the same artifact
//! loads it instead of recomputing, so `table_vi`, `table_vii`,
//! `ml_ablation` … train the default model once between them and a repeated
//! invocation replays a whole campaign from cache.
//!
//! Keys use FNV-1a over explicitly-fed bytes ([`Fingerprint`]) rather than
//! `std::hash` — `DefaultHasher` is documented as unstable across releases,
//! and cache keys must survive recompiles. Fingerprints are content
//! addresses: change a hyper-parameter, a seed, or the dataset and the key
//! changes, which *is* the invalidation story (stale entries are simply
//! never addressed again; `rm -r results/cache` reclaims the space).
//!
//! Environment knobs:
//!
//! * `ADAS_CACHE=0` (or `off`/`false`/`no`) disables the cache entirely —
//!   every lookup misses and nothing is written.
//! * `ADAS_CACHE_DIR=<path>` overrides the default `results/cache`
//!   location.
//!
//! Writes are atomic (temp file + rename) so concurrent harnesses never
//! observe a torn artifact.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable 64-bit content fingerprint (FNV-1a), built by feeding in the
/// values that determine an artifact.
///
/// Builder-style: every `write_*` consumes and returns the fingerprint, so
/// keys read as one expression:
///
/// ```
/// use adas_core::Fingerprint;
/// let key = Fingerprint::new()
///     .write_str("table-vi-cell")
///     .write_u64(2025)
///     .write_f64(2.5);
/// assert_eq!(key, key);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The empty fingerprint (FNV offset basis).
    #[must_use]
    pub const fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    #[must_use]
    pub fn write_bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds one `u64` (little-endian).
    #[must_use]
    pub fn write_u64(self, v: u64) -> Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feeds one `f64` by bit pattern (so `-0.0` and `0.0` differ, and the
    /// key is exact rather than printed-precision).
    #[must_use]
    pub fn write_f64(self, v: f64) -> Self {
        self.write_bytes(&v.to_bits().to_le_bytes())
    }

    /// Feeds a string with a terminator, so `("ab", "c")` and `("a", "bc")`
    /// produce different keys.
    #[must_use]
    pub fn write_str(self, s: &str) -> Self {
        self.write_bytes(s.as_bytes()).write_bytes(&[0xFF])
    }

    /// Feeds a value via its `Debug` rendering — the cheap way to fold an
    /// entire configuration struct into the key. Renaming or adding a field
    /// changes the rendering, which (correctly) invalidates old entries.
    #[must_use]
    pub fn write_debug<T: fmt::Debug>(self, v: &T) -> Self {
        self.write_str(&format!("{v:?}"))
    }

    /// The raw 64-bit value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Fixed-width lowercase hex, used as the on-disk file name.
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Hit/miss/write/bypass counters for one [`ArtifactCache`] instance.
///
/// Invariant (when every consumer accounts honestly): each successful
/// store follows either a miss (read-through population) or a declared
/// bypass (a consumer that recomputed without consulting the cache), so
/// `writes <= misses + bypasses` up to store failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Successful loads.
    pub hits: u64,
    /// Lookups that found nothing (or an unreadable entry).
    pub misses: u64,
    /// Successful stores.
    pub writes: u64,
    /// Computations that skipped the lookup on purpose (e.g. a traced
    /// campaign must re-execute to capture traces even when the aggregate
    /// is cached) and stored their result directly.
    pub bypasses: u64,
}

/// A content-addressed blob store on disk (see module docs).
///
/// Counters use atomics so a cache shared by reference across worker
/// threads keeps honest statistics.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    bypasses: AtomicU64,
}

impl ArtifactCache {
    /// Cache rooted at `dir` (tests point this at a temp directory).
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: Some(dir.into()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// A cache that never hits and never writes.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// The standard process-wide configuration: `results/cache`, overridden
    /// by `ADAS_CACHE_DIR`, disabled by `ADAS_CACHE=0|off|false|no`.
    #[must_use]
    pub fn from_env() -> Self {
        if crate::env::switch("ADAS_CACHE") == Some(false) {
            return Self::disabled();
        }
        Self::at(crate::env::path_or(
            "ADAS_CACHE_DIR",
            Path::new("results").join("cache"),
        ))
    }

    /// Whether lookups can ever hit.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// On-disk path for an artifact, if the cache is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `kind` contains anything but `[a-z0-9_-]` — kinds are
    /// compile-time literals, not data.
    #[must_use]
    pub fn entry_path(&self, kind: &str, key: Fingerprint) -> Option<PathBuf> {
        assert!(
            !kind.is_empty()
                && kind
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-'),
            "artifact kind {kind:?} must be [a-z0-9_-]+"
        );
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{kind}-{}.bin", key.hex())))
    }

    /// Loads an artifact; `None` is a miss (absent, disabled, or
    /// unreadable).
    #[must_use]
    pub fn load(&self, kind: &str, key: Fingerprint) -> Option<Vec<u8>> {
        let loaded = self
            .entry_path(kind, key)
            .and_then(|p| std::fs::read(p).ok());
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    /// Stores an artifact atomically (temp file + fsync + rename). Returns
    /// whether the entry landed; failures are reported on stderr and
    /// otherwise ignored — the cache is an accelerator, never a correctness
    /// dependency.
    ///
    /// The fsync before the rename matters for long-lived processes
    /// (`adas-serve`): without it, a crash or power loss shortly after the
    /// rename can leave the *name* durable but the *contents* torn, and a
    /// torn-but-present entry would poison every later warm start. (The
    /// entry codecs all carry checksums as a second line of defence, but a
    /// poisoned entry still costs the recompute on every lookup.)
    pub fn store(&self, kind: &str, key: Fingerprint, bytes: &[u8]) -> bool {
        let Some(path) = self.entry_path(kind, key) else {
            return false;
        };
        let Some(dir) = path.parent() else {
            return false;
        };
        let tmp = dir.join(format!(
            ".tmp-{kind}-{}-{}",
            key.hex(),
            std::process::id()
        ));
        let write_synced = |tmp: &Path| -> std::io::Result<()> {
            use std::io::Write;
            let mut file = std::fs::File::create(tmp)?;
            file.write_all(bytes)?;
            file.sync_all()
        };
        let result = std::fs::create_dir_all(dir)
            .and_then(|()| write_synced(&tmp))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match result {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                eprintln!("[cache] cannot store {}: {e}", path.display());
                false
            }
        }
    }

    /// Loads an artifact or computes, stores, and returns it.
    ///
    /// `decode` may reject a cached blob (wrong version, truncation…) — that
    /// counts as a miss and falls through to `compute`.
    pub fn get_or_compute<T>(
        &self,
        kind: &str,
        key: Fingerprint,
        decode: impl FnOnce(&[u8]) -> Option<T>,
        compute: impl FnOnce() -> T,
        encode: impl FnOnce(&T) -> Vec<u8>,
    ) -> T {
        if let Some(bytes) = self.load(kind, key) {
            if let Some(value) = decode(&bytes) {
                return value;
            }
            // Undecodable entry: treat as a miss (the hit was already
            // counted; correct the books).
            self.hits.fetch_sub(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let value = compute();
        self.store(kind, key, &encode(&value));
        value
    }

    /// Declares one deliberate cache bypass: the caller recomputed a
    /// cacheable artifact without a prior [`Self::load`] (because the
    /// computation has side effects the cached aggregate cannot replay —
    /// e.g. trace capture) and will [`Self::store`] the fresh result.
    /// Without this, such stores would read as `writes > hits + misses`,
    /// which looks like corrupt accounting.
    pub fn note_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }
}

/// Stable content fingerprint of a training dataset: every sample's window
/// and target, bit-exact, plus the shape.
#[must_use]
pub fn fingerprint_dataset(data: &adas_ml::Dataset) -> Fingerprint {
    let mut fp = Fingerprint::new()
        .write_str("dataset-v1")
        .write_u64(data.len() as u64);
    for sample in &data.samples {
        fp = fp.write_u64(sample.window.len() as u64);
        for frame in &sample.window {
            for &v in frame {
                fp = fp.write_f64(v);
            }
        }
        for &v in &sample.target {
            fp = fp.write_f64(v);
        }
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adas-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        let a = Fingerprint::new().write_str("ab").write_str("c");
        let b = Fingerprint::new().write_str("a").write_str("bc");
        assert_ne!(a, b);
        let c = Fingerprint::new().write_u64(1).write_u64(2);
        let d = Fingerprint::new().write_u64(2).write_u64(1);
        assert_ne!(c, d);
        assert_ne!(
            Fingerprint::new().write_f64(0.0),
            Fingerprint::new().write_f64(-0.0)
        );
    }

    #[test]
    fn fingerprint_is_stable() {
        // The whole point is stability across processes and recompiles:
        // check against the textbook FNV-1a definition, written out
        // independently of the builder.
        assert_eq!(Fingerprint::new().value(), FNV_OFFSET);
        let mut reference = FNV_OFFSET;
        for &b in b"adas" {
            reference = (reference ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(Fingerprint::new().write_bytes(b"adas").value(), reference);
    }

    #[test]
    fn roundtrip_store_load() {
        let dir = temp_dir("roundtrip");
        let cache = ArtifactCache::at(&dir);
        let key = Fingerprint::new().write_str("k1");
        assert!(cache.load("model", key).is_none());
        assert!(cache.store("model", key, b"payload"));
        assert_eq!(cache.load("model", key).as_deref(), Some(&b"payload"[..]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bypass_accounting_balances_the_books() {
        let dir = temp_dir("bypass");
        let cache = ArtifactCache::at(&dir);
        // A traced-grid-shaped interaction: recompute without a lookup,
        // declare the bypass, store the fresh aggregate.
        for i in 0..3u64 {
            let key = Fingerprint::new().write_u64(i);
            cache.note_bypass();
            assert!(cache.store("cell", key, &i.to_le_bytes()));
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!((stats.writes, stats.bypasses), (3, 3));
        assert!(stats.writes <= stats.misses + stats.bypasses);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits_or_writes() {
        let cache = ArtifactCache::disabled();
        let key = Fingerprint::new().write_str("k");
        assert!(!cache.store("cell", key, b"x"));
        assert!(cache.load("cell", key).is_none());
        assert!(!cache.is_enabled());
        assert_eq!(cache.stats().writes, 0);
    }

    #[test]
    fn get_or_compute_computes_once() {
        let dir = temp_dir("memo");
        let cache = ArtifactCache::at(&dir);
        let key = Fingerprint::new().write_str("answer");
        let mut calls = 0;
        for _ in 0..3 {
            let v: u64 = cache.get_or_compute(
                "memo",
                key,
                |b| b.try_into().ok().map(u64::from_le_bytes),
                || {
                    calls += 1;
                    42
                },
                |v| v.to_le_bytes().to_vec(),
            );
            assert_eq!(v, 42);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_falls_through_to_compute() {
        let dir = temp_dir("corrupt");
        let cache = ArtifactCache::at(&dir);
        let key = Fingerprint::new().write_str("bad");
        assert!(cache.store("memo", key, b"xyz"));
        let v: u64 = cache.get_or_compute(
            "memo",
            key,
            |b| b.try_into().ok().map(u64::from_le_bytes),
            || 7,
            |v| v.to_le_bytes().to_vec(),
        );
        assert_eq!(v, 7);
        // The corrupt entry was overwritten with a decodable one.
        assert_eq!(
            cache.load("memo", key).as_deref(),
            Some(&7u64.to_le_bytes()[..])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "must be [a-z0-9_-]+")]
    fn bad_kind_rejected() {
        let _ = ArtifactCache::disabled().entry_path("../evil", Fingerprint::new());
    }
}
