//! Platform configuration: which interventions are enabled, environment
//! conditions, and subsystem parameters.

use adas_control::AdasConfig;
use adas_perception::PerceptionConfig;
use adas_safety::AebsMode;
use adas_scenarios::HazardConfig;
use adas_simulator::FrictionCondition;
use serde::{Deserialize, Serialize};

/// Which safety interventions are active — one value per Table VI row
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterventionConfig {
    /// Human-driver reaction simulator enabled.
    pub driver: bool,
    /// Driver reaction time, seconds (the paper's default is 2.5 s; Table
    /// VII sweeps 1.0–3.5 s).
    pub driver_reaction_time: f64,
    /// PANDA-style firmware safety checking enabled.
    pub safety_check: bool,
    /// AEBS configuration (disabled / compromised input / independent).
    pub aebs: AebsMode,
    /// ML-based mitigation (Algorithm 1) enabled.
    pub ml: bool,
}

impl InterventionConfig {
    /// No interventions at all (the attack-impact baseline rows).
    #[must_use]
    pub fn none() -> Self {
        Self {
            driver: false,
            driver_reaction_time: 2.5,
            safety_check: false,
            aebs: AebsMode::Disabled,
            ml: false,
        }
    }

    /// Driver + safety check.
    #[must_use]
    pub fn driver_and_check() -> Self {
        Self {
            driver: true,
            safety_check: true,
            ..Self::none()
        }
    }

    /// Driver + safety check + AEB on compromised data.
    #[must_use]
    pub fn driver_check_aeb_compromised() -> Self {
        Self {
            aebs: AebsMode::Compromised,
            ..Self::driver_and_check()
        }
    }

    /// Driver + safety check + AEB on an independent sensor.
    #[must_use]
    pub fn driver_check_aeb_independent() -> Self {
        Self {
            aebs: AebsMode::Independent,
            ..Self::driver_and_check()
        }
    }

    /// AEB alone, on compromised data.
    #[must_use]
    pub fn aeb_compromised_only() -> Self {
        Self {
            aebs: AebsMode::Compromised,
            ..Self::none()
        }
    }

    /// AEB alone, on an independent sensor.
    #[must_use]
    pub fn aeb_independent_only() -> Self {
        Self {
            aebs: AebsMode::Independent,
            ..Self::none()
        }
    }

    /// Driver alone.
    #[must_use]
    pub fn driver_only() -> Self {
        Self {
            driver: true,
            ..Self::none()
        }
    }

    /// ML mitigation alone.
    #[must_use]
    pub fn ml_only() -> Self {
        Self {
            ml: true,
            ..Self::none()
        }
    }

    /// The eight Table VI row configurations, in paper order.
    #[must_use]
    pub fn table_vi_rows() -> [InterventionConfig; 8] {
        [
            Self::none(),
            Self::driver_and_check(),
            Self::driver_check_aeb_compromised(),
            Self::driver_check_aeb_independent(),
            Self::aeb_compromised_only(),
            Self::aeb_independent_only(),
            Self::driver_only(),
            Self::ml_only(),
        ]
    }

    /// Compact label like the paper's check-mark columns.
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.driver {
            parts.push("Driver".to_owned());
        }
        if self.safety_check {
            parts.push("Check".to_owned());
        }
        match self.aebs {
            AebsMode::Disabled => {}
            AebsMode::Compromised => parts.push("AEB-Comp".to_owned()),
            AebsMode::Independent => parts.push("AEB-Indep".to_owned()),
        }
        if self.ml {
            parts.push("ML".to_owned());
        }
        if parts.is_empty() {
            "None".to_owned()
        } else {
            parts.join("+")
        }
    }
}

impl Default for InterventionConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Full platform configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Which safety interventions are active.
    pub interventions: InterventionConfig,
    /// Road-surface condition.
    pub friction: FrictionCondition,
    /// Maximum steps per run (the paper uses 10 000 ≈ 100 s).
    pub max_steps: usize,
    /// Perception emulator parameters.
    pub perception: PerceptionConfig,
    /// ADAS controller parameters.
    pub adas: AdasConfig,
    /// Hazard detector thresholds.
    pub hazards: HazardConfig,
    /// End the run early once the ego has been stationary this many steps
    /// (0 disables). Saves campaign time after a successful full stop.
    pub quiescence_steps: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            interventions: InterventionConfig::none(),
            friction: FrictionCondition::Default,
            max_steps: adas_simulator::units::STEPS_PER_RUN,
            perception: PerceptionConfig::default(),
            adas: AdasConfig::default(),
            hazards: HazardConfig::default(),
            quiescence_steps: 300,
        }
    }
}

impl PlatformConfig {
    /// Default platform with the given interventions.
    #[must_use]
    pub fn with_interventions(interventions: InterventionConfig) -> Self {
        Self {
            interventions,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_rows_match_paper_layout() {
        let rows = InterventionConfig::table_vi_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].label(), "None");
        assert_eq!(rows[1].label(), "Driver+Check");
        assert_eq!(rows[2].label(), "Driver+Check+AEB-Comp");
        assert_eq!(rows[3].label(), "Driver+Check+AEB-Indep");
        assert_eq!(rows[4].label(), "AEB-Comp");
        assert_eq!(rows[5].label(), "AEB-Indep");
        assert_eq!(rows[6].label(), "Driver");
        assert_eq!(rows[7].label(), "ML");
    }

    #[test]
    fn default_reaction_time_is_paper_value() {
        assert_eq!(InterventionConfig::driver_only().driver_reaction_time, 2.5);
    }

    #[test]
    fn default_run_length() {
        let c = PlatformConfig::default();
        assert_eq!(c.max_steps, 10_000);
    }
}
