//! Platform configuration: which interventions are enabled, environment
//! conditions, and subsystem parameters.

use adas_attack::AttackScheduler;
use adas_control::AdasConfig;
use adas_ml::MitigationKind;
use adas_perception::PerceptionConfig;
use adas_safety::AebsMode;
use adas_scenarios::HazardConfig;
use adas_simulator::FrictionCondition;
use serde::{Deserialize, Serialize};

/// Which safety interventions are active — one value per Table VI row
/// pattern.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterventionConfig {
    /// Human-driver reaction simulator enabled.
    pub driver: bool,
    /// Driver reaction time, seconds (the paper's default is 2.5 s; Table
    /// VII sweeps 1.0–3.5 s).
    pub driver_reaction_time: f64,
    /// PANDA-style firmware safety checking enabled.
    pub safety_check: bool,
    /// AEBS configuration (disabled / compromised input / independent).
    pub aebs: AebsMode,
    /// ML-based mitigation enabled.
    pub ml: bool,
    /// Which mitigation strategy runs when [`Self::ml`] is set
    /// (`ADAS_MITIGATION`): the Algorithm 1 CUSUM baseline, the
    /// uncertainty ensemble, or the masked-view agreement check.
    pub mitigation: MitigationKind,
    /// View count M for the view-based strategies (`ADAS_VIEWS`); 0 means
    /// the strategy default (see [`Self::effective_views`]). Ignored by
    /// the CUSUM baseline.
    pub views: u8,
}

/// Cache keys and golden-trace fingerprints hash the `Debug` rendering of
/// this struct, so the rendering must stay byte-identical to the historic
/// derived output for historic configurations. The mitigation fields are
/// appended only when they deviate from the CUSUM default — a manual impl
/// of exactly what `#[derive(Debug)]` produced before they existed.
impl std::fmt::Debug for InterventionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("InterventionConfig");
        s.field("driver", &self.driver)
            .field("driver_reaction_time", &self.driver_reaction_time)
            .field("safety_check", &self.safety_check)
            .field("aebs", &self.aebs)
            .field("ml", &self.ml);
        if self.mitigation != MitigationKind::Cusum || self.views != 0 {
            s.field("mitigation", &self.mitigation).field("views", &self.views);
        }
        s.finish()
    }
}

impl InterventionConfig {
    /// No interventions at all (the attack-impact baseline rows).
    #[must_use]
    pub fn none() -> Self {
        Self {
            driver: false,
            driver_reaction_time: 2.5,
            safety_check: false,
            aebs: AebsMode::Disabled,
            ml: false,
            mitigation: MitigationKind::Cusum,
            views: 0,
        }
    }

    /// Driver + safety check.
    #[must_use]
    pub fn driver_and_check() -> Self {
        Self {
            driver: true,
            safety_check: true,
            ..Self::none()
        }
    }

    /// Driver + safety check + AEB on compromised data.
    #[must_use]
    pub fn driver_check_aeb_compromised() -> Self {
        Self {
            aebs: AebsMode::Compromised,
            ..Self::driver_and_check()
        }
    }

    /// Driver + safety check + AEB on an independent sensor.
    #[must_use]
    pub fn driver_check_aeb_independent() -> Self {
        Self {
            aebs: AebsMode::Independent,
            ..Self::driver_and_check()
        }
    }

    /// AEB alone, on compromised data.
    #[must_use]
    pub fn aeb_compromised_only() -> Self {
        Self {
            aebs: AebsMode::Compromised,
            ..Self::none()
        }
    }

    /// AEB alone, on an independent sensor.
    #[must_use]
    pub fn aeb_independent_only() -> Self {
        Self {
            aebs: AebsMode::Independent,
            ..Self::none()
        }
    }

    /// Driver alone.
    #[must_use]
    pub fn driver_only() -> Self {
        Self {
            driver: true,
            ..Self::none()
        }
    }

    /// ML mitigation alone (the Algorithm 1 CUSUM baseline).
    #[must_use]
    pub fn ml_only() -> Self {
        Self {
            ml: true,
            ..Self::none()
        }
    }

    /// Uncertainty-ensemble mitigation alone.
    #[must_use]
    pub fn ensemble_only() -> Self {
        Self {
            mitigation: MitigationKind::Ensemble,
            ..Self::ml_only()
        }
    }

    /// Masked-view agreement check alone.
    #[must_use]
    pub fn maskcheck_only() -> Self {
        Self {
            mitigation: MitigationKind::MaskCheck,
            ..Self::ml_only()
        }
    }

    /// This configuration with the given mitigation strategy selected
    /// (does not flip [`Self::ml`] itself).
    #[must_use]
    pub fn with_mitigation(self, mitigation: MitigationKind) -> Self {
        Self { mitigation, ..self }
    }

    /// The effective view count M for the view-based strategies: the
    /// explicit [`Self::views`] when non-zero, else the strategy default
    /// (8 for the ensemble, 6 for the masked-view check, 1 for CUSUM
    /// which runs no view fan-out).
    #[must_use]
    pub fn effective_views(&self) -> usize {
        if self.views != 0 {
            return usize::from(self.views);
        }
        match self.mitigation {
            MitigationKind::Cusum => 1,
            MitigationKind::Ensemble => 8,
            MitigationKind::MaskCheck => 6,
        }
    }

    /// The eight Table VI row configurations, in paper order.
    #[must_use]
    pub fn table_vi_rows() -> [InterventionConfig; 8] {
        [
            Self::none(),
            Self::driver_and_check(),
            Self::driver_check_aeb_compromised(),
            Self::driver_check_aeb_independent(),
            Self::aeb_compromised_only(),
            Self::aeb_independent_only(),
            Self::driver_only(),
            Self::ml_only(),
        ]
    }

    /// Compact label like the paper's check-mark columns.
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.driver {
            parts.push("Driver".to_owned());
        }
        if self.safety_check {
            parts.push("Check".to_owned());
        }
        match self.aebs {
            AebsMode::Disabled => {}
            AebsMode::Compromised => parts.push("AEB-Comp".to_owned()),
            AebsMode::Independent => parts.push("AEB-Indep".to_owned()),
        }
        if self.ml {
            parts.push(
                match self.mitigation {
                    MitigationKind::Cusum => "ML",
                    MitigationKind::Ensemble => "ML-Ens",
                    MitigationKind::MaskCheck => "ML-Mask",
                }
                .to_owned(),
            );
        }
        if parts.is_empty() {
            "None".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// Reads the mitigation-variant knobs from the environment:
/// `ADAS_MITIGATION` ∈ {`cusum`, `ensemble`, `maskcheck`} (default
/// `cusum`) and `ADAS_VIEWS` (view count M; 0/unset = strategy default).
/// Unparseable values fall back to the defaults rather than aborting a
/// campaign.
#[must_use]
pub fn mitigation_from_env() -> (MitigationKind, u8) {
    let kind = std::env::var("ADAS_MITIGATION")
        .ok()
        .and_then(|v| MitigationKind::from_name(&v))
        .unwrap_or_default();
    let views = std::env::var("ADAS_VIEWS")
        .ok()
        .and_then(|v| v.trim().parse::<u8>().ok())
        .unwrap_or(0)
        .min(MAX_VIEWS);
    (kind, views)
}

/// Largest encodable view count: the trace header packs the view count
/// into six spare bits of the ML-intervention byte.
pub const MAX_VIEWS: u8 = 63;

impl Default for InterventionConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Full platform configuration for one run.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Which safety interventions are active.
    pub interventions: InterventionConfig,
    /// Road-surface condition.
    pub friction: FrictionCondition,
    /// Maximum steps per run (the paper uses 10 000 ≈ 100 s).
    pub max_steps: usize,
    /// Perception emulator parameters.
    pub perception: PerceptionConfig,
    /// ADAS controller parameters.
    pub adas: AdasConfig,
    /// Hazard detector thresholds.
    pub hazards: HazardConfig,
    /// End the run early once the ego has been stationary this many steps
    /// (0 disables). Saves campaign time after a successful full stop.
    pub quiescence_steps: usize,
    /// When the injected fault activates: immediately on its trigger
    /// condition (the paper's fixed policy), or gated on a context-aware
    /// vulnerability predicate over live world state (`ADAS_ATTACK`).
    pub attack: AttackScheduler,
}

/// Cache keys and golden-trace fingerprints hash the `Debug` rendering of
/// this struct. The `attack` field is appended only when it deviates from
/// the immediate default, so every pre-scheduler configuration renders —
/// and therefore fingerprints — exactly as it always has.
impl std::fmt::Debug for PlatformConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("PlatformConfig");
        s.field("interventions", &self.interventions)
            .field("friction", &self.friction)
            .field("max_steps", &self.max_steps)
            .field("perception", &self.perception)
            .field("adas", &self.adas)
            .field("hazards", &self.hazards)
            .field("quiescence_steps", &self.quiescence_steps);
        if !self.attack.is_immediate() {
            s.field("attack", &self.attack);
        }
        s.finish()
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            interventions: InterventionConfig::none(),
            friction: FrictionCondition::Default,
            max_steps: adas_simulator::units::STEPS_PER_RUN,
            perception: PerceptionConfig::default(),
            adas: AdasConfig::default(),
            hazards: HazardConfig::default(),
            quiescence_steps: 300,
            attack: AttackScheduler::Immediate,
        }
    }
}

impl PlatformConfig {
    /// Default platform with the given interventions.
    #[must_use]
    pub fn with_interventions(interventions: InterventionConfig) -> Self {
        Self {
            interventions,
            ..Self::default()
        }
    }
}

/// Reads the attack-scheduler knob from `ADAS_ATTACK`: `immediate` (or
/// unset/empty) keeps the paper's fixed activation policy; a predicate
/// like `ttc<2.5`, `lane>0.8`, `curv>0.002`, `arm>10` (comma-separated
/// atoms AND together) selects Zhou et al.-style context-aware timing.
/// Unparseable values fall back to immediate rather than aborting.
#[must_use]
pub fn attack_from_env() -> AttackScheduler {
    std::env::var("ADAS_ATTACK")
        .ok()
        .and_then(|v| AttackScheduler::parse(&v))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_rows_match_paper_layout() {
        let rows = InterventionConfig::table_vi_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].label(), "None");
        assert_eq!(rows[1].label(), "Driver+Check");
        assert_eq!(rows[2].label(), "Driver+Check+AEB-Comp");
        assert_eq!(rows[3].label(), "Driver+Check+AEB-Indep");
        assert_eq!(rows[4].label(), "AEB-Comp");
        assert_eq!(rows[5].label(), "AEB-Indep");
        assert_eq!(rows[6].label(), "Driver");
        assert_eq!(rows[7].label(), "ML");
    }

    #[test]
    fn default_reaction_time_is_paper_value() {
        assert_eq!(InterventionConfig::driver_only().driver_reaction_time, 2.5);
    }

    #[test]
    fn default_run_length() {
        let c = PlatformConfig::default();
        assert_eq!(c.max_steps, 10_000);
    }

    #[test]
    fn debug_rendering_is_stable_for_legacy_configs() {
        // Cache fingerprints and golden-trace config fingerprints hash
        // this exact rendering: a CUSUM-default config must render without
        // the mitigation fields, byte-identical to the historic derived
        // output.
        let legacy = InterventionConfig::driver_and_check();
        assert_eq!(
            format!("{legacy:?}"),
            "InterventionConfig { driver: true, driver_reaction_time: 2.5, \
             safety_check: true, aebs: Disabled, ml: false }"
        );
        // Non-default variants must render distinctly (distinct cache keys).
        let ens = InterventionConfig::ensemble_only();
        assert_eq!(
            format!("{ens:?}"),
            "InterventionConfig { driver: false, driver_reaction_time: 2.5, \
             safety_check: false, aebs: Disabled, ml: true, \
             mitigation: Ensemble, views: 0 }"
        );
        assert_ne!(format!("{:?}", InterventionConfig::ml_only()), format!("{ens:?}"));
        assert_ne!(
            format!("{:?}", InterventionConfig::maskcheck_only()),
            format!("{ens:?}")
        );
        // An explicit view count also renders (distinct key per M).
        let mut ens12 = ens;
        ens12.views = 12;
        assert_ne!(format!("{ens12:?}"), format!("{ens:?}"));
    }

    #[test]
    fn platform_debug_appends_attack_only_when_scheduled() {
        // Same byte-stability contract as the interventions rendering: an
        // immediate-attack config must render exactly as before the field
        // existed (no `attack:` entry), so legacy fingerprints survive.
        let legacy = PlatformConfig::default();
        assert!(!format!("{legacy:?}").contains("attack"));
        let mut scheduled = legacy;
        scheduled.attack =
            AttackScheduler::parse("ttc<2.5").expect("valid predicate");
        let rendered = format!("{scheduled:?}");
        assert!(rendered.contains("attack"), "{rendered}");
        assert_ne!(format!("{legacy:?}"), rendered);
    }

    #[test]
    fn attack_env_parses_or_falls_back() {
        assert_eq!(AttackScheduler::parse("immediate"), Some(AttackScheduler::Immediate));
        assert!(AttackScheduler::parse("ttc<2.0,arm>5").is_some());
        assert_eq!(AttackScheduler::parse("bogus<1"), None);
    }

    #[test]
    fn mitigation_variant_labels() {
        assert_eq!(InterventionConfig::ml_only().label(), "ML");
        assert_eq!(InterventionConfig::ensemble_only().label(), "ML-Ens");
        assert_eq!(InterventionConfig::maskcheck_only().label(), "ML-Mask");
    }

    #[test]
    fn effective_views_defaults_per_strategy() {
        assert_eq!(InterventionConfig::ml_only().effective_views(), 1);
        assert_eq!(InterventionConfig::ensemble_only().effective_views(), 8);
        assert_eq!(InterventionConfig::maskcheck_only().effective_views(), 6);
        let mut c = InterventionConfig::ensemble_only();
        c.views = 3;
        assert_eq!(c.effective_views(), 3);
    }
}
