//! Campaign runner: sweeps scenarios × positions × repetitions (in
//! parallel, deterministically) and aggregates the statistics the paper's
//! tables report.

use crate::config::PlatformConfig;
use crate::platform::Platform;
use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_ml::{
    ControlTarget, Dataset, LstmPredictor, MitigationConfig, MlMitigator, StateFeatures,
};
use adas_scenarios::{AccidentKind, InitialPosition, RunRecord, ScenarioId, ScenarioSetup};
use adas_simulator::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Identifies one run inside a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunId {
    /// Driving scenario.
    pub scenario: ScenarioId,
    /// Initial position / road pairing.
    pub position: InitialPosition,
    /// Repetition index (the paper repeats each configuration 10×).
    pub repetition: u32,
}

/// Executes a single fully-specified run.
#[must_use]
pub fn run_single(
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&LstmPredictor>,
    campaign_seed: u64,
) -> RunRecord {
    let mut setup_rng = DeterministicRng::for_run(
        campaign_seed,
        id.scenario.index() as u64,
        id.position.index() as u64,
        u64::from(id.repetition),
    );
    let setup = ScenarioSetup::build(id.scenario, id.position, &mut setup_rng);
    let injector = match fault {
        Some(ft) => FaultInjector::new(FaultSpec::new(ft, setup.patch_start_s)),
        None => FaultInjector::disabled(),
    };
    let ml = ml_model
        .filter(|_| config.interventions.ml)
        .map(|m| MlMitigator::new(m.clone(), MitigationConfig::default()));
    let mut platform = Platform::new(&setup, *config, injector, ml, &mut setup_rng);
    platform.run()
}

/// Runs a full campaign cell: every scenario × both positions ×
/// `repetitions`, in parallel across threads. Results are returned in a
/// deterministic order regardless of thread scheduling.
#[must_use]
pub fn run_campaign(
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&LstmPredictor>,
    campaign_seed: u64,
    repetitions: u32,
) -> Vec<(RunId, RunRecord)> {
    let mut ids = Vec::new();
    for scenario in ScenarioId::ALL {
        for position in InitialPosition::ALL {
            for repetition in 0..repetitions {
                ids.push(RunId {
                    scenario,
                    position,
                    repetition,
                });
            }
        }
    }

    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(ids.len().max(1));
    let chunk = ids.len().div_ceil(threads);
    let mut results: Vec<Option<(RunId, RunRecord)>> = vec![None; ids.len()];

    crossbeam::thread::scope(|scope| {
        for (slot_chunk, id_chunk) in results.chunks_mut(chunk).zip(ids.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, id) in slot_chunk.iter_mut().zip(id_chunk) {
                    let rec = run_single(*id, fault, config, ml_model, campaign_seed);
                    *slot = Some((*id, rec));
                }
            });
        }
    })
    .expect("campaign worker panicked");

    results.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Aggregated statistics for one Table VI cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Number of runs.
    pub runs: usize,
    /// Fraction ending in A1 (forward collision), percent.
    pub a1_pct: f64,
    /// Fraction ending in A2 (lane violation), percent.
    pub a2_pct: f64,
    /// Fraction with no accident, percent.
    pub prevented_pct: f64,
    /// Fraction of runs with any hazard, percent.
    pub hazard_pct: f64,
    /// Mean time from fault start to AEB braking, seconds.
    pub aeb_mitigation_time: Option<f64>,
    /// Mean time from fault start to the driver's longitudinal trigger,
    /// seconds.
    pub driver_brake_mitigation_time: Option<f64>,
    /// Mean time from fault start to the driver's lateral trigger, seconds.
    pub driver_steer_mitigation_time: Option<f64>,
    /// Fraction of runs in which AEB braked, percent.
    pub aeb_trigger_rate: f64,
    /// Fraction of runs in which the driver's brake channel triggered,
    /// percent.
    pub driver_brake_trigger_rate: f64,
    /// Fraction of runs in which the driver's steer channel triggered,
    /// percent.
    pub driver_steer_trigger_rate: f64,
    /// Fraction of runs in which ML recovery engaged, percent.
    pub ml_trigger_rate: f64,
}

impl CellStats {
    /// Aggregates a set of run records.
    #[must_use]
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a RunRecord>,
    {
        let records: Vec<&RunRecord> = records.into_iter().collect();
        let n = records.len();
        let pct = |count: usize| 100.0 * count as f64 / n.max(1) as f64;

        let a1 = records
            .iter()
            .filter(|r| r.accident == Some(AccidentKind::ForwardCollision))
            .count();
        let a2 = records
            .iter()
            .filter(|r| r.accident == Some(AccidentKind::LaneViolation))
            .count();
        let prevented = records.iter().filter(|r| r.prevented()).count();
        let hazard = records.iter().filter(|r| r.hazard()).count();

        let mean_of = |values: Vec<f64>| {
            if values.is_empty() {
                None
            } else {
                Some(values.iter().sum::<f64>() / values.len() as f64)
            }
        };
        let aeb_times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.mitigation_time(r.aeb_trigger))
            .collect();
        let brake_times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.mitigation_time(r.driver_brake_trigger))
            .collect();
        let steer_times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.mitigation_time(r.driver_steer_trigger))
            .collect();

        Self {
            runs: n,
            a1_pct: pct(a1),
            a2_pct: pct(a2),
            prevented_pct: pct(prevented),
            hazard_pct: pct(hazard),
            aeb_mitigation_time: mean_of(aeb_times),
            driver_brake_mitigation_time: mean_of(brake_times),
            driver_steer_mitigation_time: mean_of(steer_times),
            aeb_trigger_rate: pct(records.iter().filter(|r| r.aeb_trigger.is_some()).count()),
            driver_brake_trigger_rate: pct(
                records
                    .iter()
                    .filter(|r| r.driver_brake_trigger.is_some())
                    .count(),
            ),
            driver_steer_trigger_rate: pct(
                records
                    .iter()
                    .filter(|r| r.driver_steer_trigger.is_some())
                    .count(),
            ),
            ml_trigger_rate: pct(records.iter().filter(|r| r.ml_activated).count()),
        }
    }
}

/// Collects fault-free training episodes for the ML baseline.
///
/// Runs the platform without interventions or faults across all scenarios
/// and both positions, recording (true state, executed ADAS control) pairs
/// at every control cycle, then windows them into a [`Dataset`].
#[must_use]
pub fn collect_training_data(campaign_seed: u64, repetitions: u32, stride: usize) -> Dataset {
    let config = PlatformConfig::default();
    let mut dataset = Dataset::new();
    for scenario in ScenarioId::ALL {
        for position in InitialPosition::ALL {
            for rep in 0..repetitions {
                let mut rng = DeterministicRng::for_run(
                    campaign_seed ^ 0x7EA1,
                    scenario.index() as u64,
                    position.index() as u64,
                    u64::from(rep),
                );
                let setup = ScenarioSetup::build(scenario, position, &mut rng);
                let mut platform =
                    Platform::new(&setup, config, FaultInjector::disabled(), None, &mut rng);

                let mut states = Vec::new();
                let mut outputs = Vec::new();
                let mut prev = ControlTarget::default();
                loop {
                    // Record the pre-step true state.
                    let w = platform.world();
                    let truth = w.lead_observation();
                    let ego = *w.ego().state();
                    let half = w.road().lane_width() / 2.0;
                    let curvature = w.road().curvature_at(ego.s);
                    let state = StateFeatures {
                        ego_speed: ego.v,
                        lead_distance: truth.map_or(f64::INFINITY, |o| o.distance),
                        closing_speed: truth.map_or(0.0, |o| o.closing_speed),
                        left_line: half - ego.d,
                        right_line: half + ego.d,
                        curvature,
                        heading: ego.psi,
                        prev_accel: prev.accel,
                        prev_steer: prev.steer,
                    };
                    let frame = platform.step();
                    // The executed command: reconstruct from the world's ego
                    // actuators via the trace-free path (ADAS command ≈ the
                    // realised accel for benign runs).
                    let _ = frame;
                    let ego_after = *platform.world().ego().state();
                    let out = ControlTarget {
                        accel: ego_after.accel,
                        steer: ego_after.steer,
                    };
                    states.push(state);
                    outputs.push(out);
                    prev = out;
                    if let crate::platform::RunEnd2::Yes(_) = platform.finished() {
                        break;
                    }
                }
                dataset.add_episode(&states, &outputs, stride);
            }
        }
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterventionConfig;

    #[test]
    fn campaign_is_deterministic_and_ordered() {
        let mut cfg = PlatformConfig::default();
        cfg.max_steps = 300;
        let a = run_campaign(None, &cfg, None, 9, 1);
        let b = run_campaign(None, &cfg, None, 9, 1);
        assert_eq!(a.len(), 12); // 6 scenarios × 2 positions × 1 rep
        // NaN-tolerant equality (NaN != NaN under PartialEq).
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Order: scenario-major.
        assert_eq!(a[0].0.scenario, ScenarioId::S1);
        assert_eq!(a[11].0.scenario, ScenarioId::S6);
    }

    #[test]
    fn cell_stats_percentages_sum_to_100() {
        let mut cfg = PlatformConfig::default();
        cfg.max_steps = 2000;
        let recs = run_campaign(Some(FaultType::RelativeDistance), &cfg, None, 3, 1);
        let stats = CellStats::from_records(recs.iter().map(|(_, r)| r));
        let total = stats.a1_pct + stats.a2_pct + stats.prevented_pct;
        assert!((total - 100.0).abs() < 1e-9, "total {total}");
        assert_eq!(stats.runs, 12);
    }

    #[test]
    fn run_single_respects_interventions() {
        let id = RunId {
            scenario: ScenarioId::S1,
            position: InitialPosition::Near,
            repetition: 0,
        };
        let unprotected = run_single(
            id,
            Some(FaultType::RelativeDistance),
            &PlatformConfig::default(),
            None,
            5,
        );
        let protected = run_single(
            id,
            Some(FaultType::RelativeDistance),
            &PlatformConfig::with_interventions(InterventionConfig::aeb_independent_only()),
            None,
            5,
        );
        assert!(unprotected.accident.is_some());
        assert!(protected.prevented());
    }

    #[test]
    fn training_data_collection_produces_windows() {
        let data = collect_training_data(3, 1, 40);
        assert!(!data.is_empty(), "no training windows collected");
    }
}
