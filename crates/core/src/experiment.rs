//! Campaign runner: sweeps scenarios × positions × repetitions (in
//! parallel, deterministically) and aggregates the statistics the paper's
//! tables report.
//!
//! Scheduling uses the work-stealing executor in [`crate::parallel`]: runs
//! are claimed one at a time from a shared atomic work-queue, so uneven
//! run lengths (early accidents vs. full 100 s time-limit runs) no longer
//! leave threads idle behind a long static chunk. Results are keyed by run
//! index and returned in sweep order, which keeps campaign output
//! bit-for-bit identical at any thread count (see `ADAS_THREADS`).

use crate::cache::{ArtifactCache, Fingerprint};
use crate::config::PlatformConfig;
use crate::platform::Platform;
use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_ml::{
    ControlTarget, Dataset, EnsembleConfig, EnsembleMitigator, LstmPredictor, MaskCheckConfig,
    MaskCheckMitigator, MitigationConfig, MitigationKind, Mitigator, MlMitigator, StateFeatures,
};
use adas_scenarios::{AccidentKind, InitialPosition, RunRecord, ScenarioId, ScenarioSetup};
use adas_simulator::DeterministicRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifies one run inside a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunId {
    /// Driving scenario.
    pub scenario: ScenarioId,
    /// Initial position / road pairing.
    pub position: InitialPosition,
    /// Repetition index (the paper repeats each configuration 10×).
    pub repetition: u32,
}

/// Executes a single fully-specified run.
///
/// `ml_model` is shared by reference-counted handle: the mitigation
/// runtime holds an [`Arc`] clone instead of deep-copying the trained
/// weights for every run of a campaign.
#[must_use]
pub fn run_single(
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    campaign_seed: u64,
) -> RunRecord {
    build_platform(id, fault, config, ml_model, campaign_seed).run()
}

/// Constructs the fully-wired platform for one run: the RNG derivation,
/// scenario build, fault injector, and ML mitigation shared by
/// [`run_single`], the traced executor, and the lockstep batch driver —
/// one construction path means one place where run identity is defined.
pub(crate) fn build_platform(
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    campaign_seed: u64,
) -> Platform {
    let mut setup_rng = DeterministicRng::for_run(
        campaign_seed,
        id.scenario.index() as u64,
        id.position.index() as u64,
        u64::from(id.repetition),
    );
    let setup = ScenarioSetup::build(id.scenario, id.position, &mut setup_rng);
    let injector = match fault {
        Some(ft) => FaultInjector::new(
            FaultSpec::new(ft, setup.patch_start_s).scheduled(config.attack),
        ),
        None => FaultInjector::disabled(),
    };
    let ml = make_mitigator(ml_model, config, &mut setup_rng);
    Platform::new(&setup, *config, injector, ml, &mut setup_rng)
}

/// Constructs the configured mitigation runtime for one run, drawing any
/// strategy-specific jitter streams from `setup_rng`.
///
/// Must be called between `ScenarioSetup::build` and `Platform::new` so
/// every execution path (scalar, batched, traced, replayed) consumes
/// `setup_rng` identically for a given variant. The splits are gated on
/// the variant: the CUSUM baseline — and any unmitigated run — draws
/// nothing, which keeps every pre-existing RNG stream bit-exact.
pub(crate) fn make_mitigator(
    ml_model: Option<&Arc<LstmPredictor>>,
    config: &PlatformConfig,
    setup_rng: &mut DeterministicRng,
) -> Option<Mitigator> {
    let iv = &config.interventions;
    let model = ml_model.filter(|_| iv.ml)?;
    Some(match iv.mitigation {
        MitigationKind::Cusum => Mitigator::Cusum(MlMitigator::new(
            Arc::clone(model),
            MitigationConfig::default(),
        )),
        MitigationKind::Ensemble => Mitigator::Ensemble(EnsembleMitigator::new(
            Arc::clone(model),
            EnsembleConfig::with_views(iv.effective_views()),
            setup_rng.split(0xE45E),
        )),
        MitigationKind::MaskCheck => Mitigator::MaskCheck(MaskCheckMitigator::new(
            Arc::clone(model),
            MaskCheckConfig::with_views(iv.effective_views()),
            setup_rng.split(0x3A5C),
        )),
    })
}

/// Bitmask selecting every scenario (bit `i` = `ScenarioId::ALL[i]`).
pub const SCENARIO_MASK_ALL: u8 = (1 << ScenarioId::ALL.len()) - 1;

/// Enumerates the full sweep for one campaign cell in paper order
/// (scenario-major, then position, then repetition).
#[must_use]
pub fn campaign_run_ids(repetitions: u32) -> Vec<RunId> {
    campaign_run_ids_masked(repetitions, SCENARIO_MASK_ALL)
}

/// [`campaign_run_ids`] restricted to the scenarios whose bit is set in
/// `mask` (bit `i` = `ScenarioId::ALL[i]`, so `0b1001` = S1 + S4). Order
/// is still scenario-major paper order; a run's identity (and therefore
/// its RNG stream) depends only on its own coordinates, so a masked sweep
/// reproduces exactly the matching subset of the full sweep.
#[must_use]
pub fn campaign_run_ids_masked(repetitions: u32, mask: u8) -> Vec<RunId> {
    let mut ids = Vec::new();
    for (i, scenario) in ScenarioId::ALL.into_iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        for position in InitialPosition::ALL {
            for repetition in 0..repetitions {
                ids.push(RunId {
                    scenario,
                    position,
                    repetition,
                });
            }
        }
    }
    ids
}

/// Executes an explicit set of runs at the given lockstep batch `width`,
/// honouring `ctl` for cancellation (all-or-nothing: `None` when
/// cancelled, like [`adas_parallel::map_ctl`]).
///
/// `width <= 1` selects the scalar per-run path; wider widths drive the
/// structure-of-arrays lockstep executor in [`crate::batch`]. Per-run
/// results are bit-identical either way, so callers may pick width purely
/// on throughput grounds (`ADAS_BATCH` via
/// [`adas_parallel::batch_width`]).
#[must_use]
pub fn run_ids_ctl(
    ids: &[RunId],
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    campaign_seed: u64,
    width: usize,
    ctl: &crate::parallel::MapControl,
) -> Option<Vec<RunRecord>> {
    if width <= 1 {
        return crate::parallel::map_ctl(
            ids,
            || (),
            |(), _, id| run_single(*id, fault, config, ml_model, campaign_seed),
            ctl,
        );
    }
    let model = ml_model.filter(|_| config.interventions.ml);
    crate::batch::run_lockstep_ctl(
        ids,
        width,
        model,
        |_, id| build_platform(*id, fault, config, model, campaign_seed),
        |_, _, _, platform| platform.record(),
        ctl,
    )
}

/// Runs a full campaign cell: every scenario × both positions ×
/// `repetitions`, scheduled by the work-stealing executor at the
/// environment-selected lockstep batch width (`ADAS_BATCH`). Results are
/// returned in sweep order regardless of thread count, batch width, or
/// scheduling.
#[must_use]
pub fn run_campaign(
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    campaign_seed: u64,
    repetitions: u32,
) -> Vec<(RunId, RunRecord)> {
    run_campaign_with_width(
        fault,
        config,
        ml_model,
        campaign_seed,
        repetitions,
        crate::parallel::batch_width(),
    )
}

/// [`run_campaign`] at an explicit lockstep batch width (the equivalence
/// suite sweeps widths without racing on the process environment).
#[must_use]
pub fn run_campaign_with_width(
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    campaign_seed: u64,
    repetitions: u32,
    width: usize,
) -> Vec<(RunId, RunRecord)> {
    let ids = campaign_run_ids(repetitions);
    let records = run_ids_ctl(
        &ids,
        fault,
        config,
        ml_model,
        campaign_seed,
        width,
        &crate::parallel::MapControl::new(),
    )
    .expect("uncancelled campaign completed");
    ids.into_iter().zip(records).collect()
}

/// Aggregated statistics for one Table VI cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Number of runs.
    pub runs: usize,
    /// Fraction ending in A1 (forward collision), percent.
    pub a1_pct: f64,
    /// Fraction ending in A2 (lane violation), percent.
    pub a2_pct: f64,
    /// Fraction with no accident, percent.
    pub prevented_pct: f64,
    /// Fraction of runs with any hazard, percent.
    pub hazard_pct: f64,
    /// Mean time from fault start to AEB braking, seconds.
    pub aeb_mitigation_time: Option<f64>,
    /// Mean time from fault start to the driver's longitudinal trigger,
    /// seconds.
    pub driver_brake_mitigation_time: Option<f64>,
    /// Mean time from fault start to the driver's lateral trigger, seconds.
    pub driver_steer_mitigation_time: Option<f64>,
    /// Fraction of runs in which AEB braked, percent.
    pub aeb_trigger_rate: f64,
    /// Fraction of runs in which the driver's brake channel triggered,
    /// percent.
    pub driver_brake_trigger_rate: f64,
    /// Fraction of runs in which the driver's steer channel triggered,
    /// percent.
    pub driver_steer_trigger_rate: f64,
    /// Fraction of runs in which ML recovery engaged, percent.
    pub ml_trigger_rate: f64,
}

impl CellStats {
    /// Aggregates a set of run records.
    #[must_use]
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a RunRecord>,
    {
        let records: Vec<&RunRecord> = records.into_iter().collect();
        let n = records.len();
        let pct = |count: usize| 100.0 * count as f64 / n.max(1) as f64;

        let a1 = records
            .iter()
            .filter(|r| r.accident == Some(AccidentKind::ForwardCollision))
            .count();
        let a2 = records
            .iter()
            .filter(|r| r.accident == Some(AccidentKind::LaneViolation))
            .count();
        let prevented = records.iter().filter(|r| r.prevented()).count();
        let hazard = records.iter().filter(|r| r.hazard()).count();

        let mean_of = |values: Vec<f64>| {
            if values.is_empty() {
                None
            } else {
                Some(values.iter().sum::<f64>() / values.len() as f64)
            }
        };
        let aeb_times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.mitigation_time(r.aeb_trigger))
            .collect();
        let brake_times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.mitigation_time(r.driver_brake_trigger))
            .collect();
        let steer_times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.mitigation_time(r.driver_steer_trigger))
            .collect();

        Self {
            runs: n,
            a1_pct: pct(a1),
            a2_pct: pct(a2),
            prevented_pct: pct(prevented),
            hazard_pct: pct(hazard),
            aeb_mitigation_time: mean_of(aeb_times),
            driver_brake_mitigation_time: mean_of(brake_times),
            driver_steer_mitigation_time: mean_of(steer_times),
            aeb_trigger_rate: pct(records.iter().filter(|r| r.aeb_trigger.is_some()).count()),
            driver_brake_trigger_rate: pct(
                records
                    .iter()
                    .filter(|r| r.driver_brake_trigger.is_some())
                    .count(),
            ),
            driver_steer_trigger_rate: pct(
                records
                    .iter()
                    .filter(|r| r.driver_steer_trigger.is_some())
                    .count(),
            ),
            ml_trigger_rate: pct(records.iter().filter(|r| r.ml_activated).count()),
        }
    }
}

/// Magic + version prefix for the [`CellStats`] cache codec. Version 2
/// appends a trailing FNV-1a checksum over everything before it, so a
/// bit-flipped cache entry is rejected (cache miss) instead of silently
/// yielding wrong statistics.
const CELL_MAGIC: &[u8] = b"ADASCELL\x02";

impl CellStats {
    /// Serialises to the artifact-cache binary format (little-endian,
    /// fixed layout, trailing whole-entry checksum).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CELL_MAGIC.len() + 8 + 11 * 8 + 3 + 8);
        out.extend_from_slice(CELL_MAGIC);
        out.extend_from_slice(&(self.runs as u64).to_le_bytes());
        for v in [self.a1_pct, self.a2_pct, self.prevented_pct, self.hazard_pct] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for opt in [
            self.aeb_mitigation_time,
            self.driver_brake_mitigation_time,
            self.driver_steer_mitigation_time,
        ] {
            out.push(u8::from(opt.is_some()));
            out.extend_from_slice(&opt.unwrap_or(0.0).to_le_bytes());
        }
        for v in [
            self.aeb_trigger_rate,
            self.driver_brake_trigger_rate,
            self.driver_steer_trigger_rate,
            self.ml_trigger_rate,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let checksum = Fingerprint::new().write_bytes(&out).value();
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses [`Self::to_bytes`] output; `None` on any structural mismatch
    /// or checksum failure (callers treat that as a cache miss).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        // Verify the trailing checksum before trusting any field.
        let body_len = bytes.len().checked_sub(8)?;
        let (body, stored) = bytes.split_at(body_len);
        let stored = u64::from_le_bytes(stored.try_into().ok()?);
        if Fingerprint::new().write_bytes(body).value() != stored {
            return None;
        }
        let rest = body.strip_prefix(CELL_MAGIC)?;
        let expected = 8 + 4 * 8 + 3 * 9 + 4 * 8;
        if rest.len() != expected {
            return None;
        }
        let mut pos = 0usize;
        let f64_at = |rest: &[u8], p: &mut usize| -> f64 {
            let v = f64::from_le_bytes(rest[*p..*p + 8].try_into().expect("8 bytes"));
            *p += 8;
            v
        };
        let runs = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")) as usize;
        pos += 8;
        let a1_pct = f64_at(rest, &mut pos);
        let a2_pct = f64_at(rest, &mut pos);
        let prevented_pct = f64_at(rest, &mut pos);
        let hazard_pct = f64_at(rest, &mut pos);
        let opt_at = |rest: &[u8], p: &mut usize| -> Option<f64> {
            let tag = rest[*p];
            *p += 1;
            let v = f64::from_le_bytes(rest[*p..*p + 8].try_into().expect("8 bytes"));
            *p += 8;
            (tag != 0).then_some(v)
        };
        let aeb_mitigation_time = opt_at(rest, &mut pos);
        let driver_brake_mitigation_time = opt_at(rest, &mut pos);
        let driver_steer_mitigation_time = opt_at(rest, &mut pos);
        let aeb_trigger_rate = f64_at(rest, &mut pos);
        let driver_brake_trigger_rate = f64_at(rest, &mut pos);
        let driver_steer_trigger_rate = f64_at(rest, &mut pos);
        let ml_trigger_rate = f64_at(rest, &mut pos);
        debug_assert_eq!(pos, expected);
        Some(Self {
            runs,
            a1_pct,
            a2_pct,
            prevented_pct,
            hazard_pct,
            aeb_mitigation_time,
            driver_brake_mitigation_time,
            driver_steer_mitigation_time,
            aeb_trigger_rate,
            driver_brake_trigger_rate,
            driver_steer_trigger_rate,
            ml_trigger_rate,
        })
    }
}

/// Digest of the active scenario catalog, but only when `ADAS_SCENARIO`
/// actually changed it from the builtins. `None` in every default-catalog
/// process, so all fingerprints minted before scenario overrides existed
/// stay byte-identical; with an override in effect the digest keys cached
/// cells to the replacement scenario content instead of silently serving
/// results computed under the builtins.
fn scenario_catalog_override() -> Option<u64> {
    use adas_scenarios::ScenarioCatalog;
    static OVERRIDE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let global = ScenarioCatalog::global().digest();
        let builtin = ScenarioCatalog::builtin().map_or(global, |c| c.digest());
        (global != builtin).then_some(global)
    })
}

/// Content fingerprint of one campaign cell: everything [`run_campaign`] +
/// [`CellStats::from_records`] depend on. `model` must be the fingerprint
/// of the trained weights when `config.interventions.ml` is set (the cell
/// result depends on the exact weights, not just the training seed).
/// Scenario content participates via [`scenario_catalog_override`] when an
/// `ADAS_SCENARIO` override is active.
#[must_use]
pub fn campaign_cell_fingerprint(
    fault: Option<FaultType>,
    config: &PlatformConfig,
    model: Option<Fingerprint>,
    campaign_seed: u64,
    repetitions: u32,
) -> Fingerprint {
    let mut fp = Fingerprint::new()
        .write_str("campaign-cell-v1")
        .write_debug(&fault)
        .write_debug(config)
        .write_u64(model.map_or(0, Fingerprint::value))
        .write_u64(u64::from(model.is_some()))
        .write_u64(campaign_seed)
        .write_u64(u64::from(repetitions));
    if let Some(digest) = scenario_catalog_override() {
        fp = fp.write_str("scenario-catalog").write_u64(digest);
    }
    fp
}

/// Cache-through wrapper for a campaign cell's aggregate statistics: on a
/// hit the whole `12 × repetitions`-run campaign is skipped; on a miss
/// `compute` runs and its result is stored for every other harness keyed
/// the same way.
pub fn cell_stats_cached(
    cache: &ArtifactCache,
    key: Fingerprint,
    compute: impl FnOnce() -> CellStats,
) -> CellStats {
    cache.get_or_compute("cell", key, CellStats::from_bytes, compute, CellStats::to_bytes)
}

/// Simulates one fault-free training episode and returns its (true state,
/// executed control) trajectory.
fn run_training_episode(
    scenario: ScenarioId,
    position: InitialPosition,
    rep: u32,
    campaign_seed: u64,
    config: &PlatformConfig,
) -> (Vec<StateFeatures>, Vec<ControlTarget>) {
    let mut rng = DeterministicRng::for_run(
        campaign_seed ^ 0x7EA1,
        scenario.index() as u64,
        position.index() as u64,
        u64::from(rep),
    );
    let setup = ScenarioSetup::build(scenario, position, &mut rng);
    let mut platform = Platform::new(&setup, *config, FaultInjector::disabled(), None, &mut rng);

    let mut states = Vec::new();
    let mut outputs = Vec::new();
    let mut prev = ControlTarget::default();
    loop {
        // Record the pre-step true state.
        let w = platform.world();
        let truth = w.lead_observation();
        let ego = *w.ego().state();
        let half = w.road().lane_width() / 2.0;
        let curvature = w.road().curvature_at(ego.s);
        let state = StateFeatures {
            ego_speed: ego.v,
            lead_distance: truth.map_or(f64::INFINITY, |o| o.distance),
            closing_speed: truth.map_or(0.0, |o| o.closing_speed),
            left_line: half - ego.d,
            right_line: half + ego.d,
            curvature,
            heading: ego.psi,
            prev_accel: prev.accel,
            prev_steer: prev.steer,
        };
        let frame = platform.step();
        // The executed command: reconstruct from the world's ego
        // actuators via the trace-free path (ADAS command ≈ the
        // realised accel for benign runs).
        let _ = frame;
        let ego_after = *platform.world().ego().state();
        let out = ControlTarget {
            accel: ego_after.accel,
            steer: ego_after.steer,
        };
        states.push(state);
        outputs.push(out);
        prev = out;
        if let crate::platform::RunEnd2::Yes(_) = platform.finished() {
            break;
        }
    }
    (states, outputs)
}

/// Collects fault-free training episodes for the ML baseline.
///
/// Runs the platform without interventions or faults across all scenarios
/// and both positions, recording (true state, executed ADAS control) pairs
/// at every control cycle, then windows them into a [`Dataset`].
///
/// Episodes are simulated in parallel on the work-stealing executor (each
/// episode derives its own RNG stream from its sweep coordinate) and
/// merged into the dataset in sweep order, so the resulting sample order
/// is identical to the historical serial implementation at any thread
/// count.
#[must_use]
pub fn collect_training_data(campaign_seed: u64, repetitions: u32, stride: usize) -> Dataset {
    let config = PlatformConfig::default();
    let mut coords = Vec::new();
    for scenario in ScenarioId::ALL {
        for position in InitialPosition::ALL {
            for rep in 0..repetitions {
                coords.push((scenario, position, rep));
            }
        }
    }
    let episodes = crate::parallel::map(&coords, |_, &(scenario, position, rep)| {
        run_training_episode(scenario, position, rep, campaign_seed, &config)
    });
    let mut dataset = Dataset::new();
    for (states, outputs) in &episodes {
        dataset.add_episode(states, outputs, stride);
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterventionConfig;

    #[test]
    fn campaign_is_deterministic_and_ordered() {
        let cfg = PlatformConfig {
            max_steps: 300,
            ..PlatformConfig::default()
        };
        let a = run_campaign(None, &cfg, None, 9, 1);
        let b = run_campaign(None, &cfg, None, 9, 1);
        assert_eq!(a.len(), 12); // 6 scenarios × 2 positions × 1 rep
        // NaN-tolerant equality (NaN != NaN under PartialEq).
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Order: scenario-major.
        assert_eq!(a[0].0.scenario, ScenarioId::S1);
        assert_eq!(a[11].0.scenario, ScenarioId::S6);
    }

    #[test]
    fn cell_stats_percentages_sum_to_100() {
        let cfg = PlatformConfig {
            max_steps: 2000,
            ..PlatformConfig::default()
        };
        let recs = run_campaign(Some(FaultType::RelativeDistance), &cfg, None, 3, 1);
        let stats = CellStats::from_records(recs.iter().map(|(_, r)| r));
        let total = stats.a1_pct + stats.a2_pct + stats.prevented_pct;
        assert!((total - 100.0).abs() < 1e-9, "total {total}");
        assert_eq!(stats.runs, 12);
    }

    #[test]
    fn run_single_respects_interventions() {
        let id = RunId {
            scenario: ScenarioId::S1,
            position: InitialPosition::Near,
            repetition: 0,
        };
        let unprotected = run_single(
            id,
            Some(FaultType::RelativeDistance),
            &PlatformConfig::default(),
            None,
            5,
        );
        let protected = run_single(
            id,
            Some(FaultType::RelativeDistance),
            &PlatformConfig::with_interventions(InterventionConfig::aeb_independent_only()),
            None,
            5,
        );
        assert!(unprotected.accident.is_some());
        assert!(protected.prevented());
    }

    #[test]
    fn training_data_collection_produces_windows() {
        let data = collect_training_data(3, 1, 40);
        assert!(!data.is_empty(), "no training windows collected");
    }
}
