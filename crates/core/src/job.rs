//! Wire-serializable campaign job and result types.
//!
//! The `adas-serve` daemon receives campaign grids over TCP and streams
//! per-cell statistics back; both directions need stable, versioned binary
//! codecs that cannot panic on malformed input. The vendored `serde` is a
//! compile-only stub (see `vendor/serde`), so — like the [`CellStats`]
//! cache codec and the flight-recorder format before it — these codecs are
//! explicit little-endian byte layouts with every decode returning
//! `Option`/`Err` instead of indexing blindly.
//!
//! A *campaign* is a grid of *cells*; each cell is one (fault ×
//! intervention-set) combination swept over the masked scenario set, both
//! initial positions, and `repetitions` repetitions — exactly the shape of
//! the paper's Table VI. Cell statistics are [`CellStats`], whose existing
//! binary codec doubles as the wire encoding (and whose byte equality is
//! the "bit-identical outcome" criterion the integration tests assert).

use crate::cache::Fingerprint;
use crate::config::{InterventionConfig, PlatformConfig, MAX_VIEWS};
use adas_ml::MitigationKind;
use crate::experiment::{
    campaign_cell_fingerprint, campaign_run_ids_masked, RunId, SCENARIO_MASK_ALL,
};
use adas_attack::{AttackScheduler, ContextTrigger, FaultType};
use adas_safety::AebsMode;
use adas_scenarios::{AccidentKind, InitialPosition, RunRecord, ScenarioId};

/// Hard cap on cells per campaign: a defensive bound so a hostile frame
/// cannot make the server enqueue unbounded work from one request.
pub const MAX_CELLS: usize = 1024;

/// Incrementing little-endian byte sink for the fixed-layout codecs.
#[derive(Debug, Default)]
pub struct ByteWriter(Vec<u8>);

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Consumes the writer, yielding the accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.0.push(u8::from(v));
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (NaN and infinities round-trip).
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends an optional `f64` as a presence tag plus the value.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        self.bool(v.is_some());
        self.f64(v.unwrap_or(0.0));
    }

    /// Appends raw bytes (length is the caller's contract).
    pub fn bytes(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn blob(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("blob ≤ 4 GiB"));
        self.bytes(v);
    }
}

/// Bounds-checked little-endian cursor over untrusted bytes. Every reader
/// method returns `None` past the end instead of panicking — the decode
/// surface for frames arriving off the network.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed (codecs require exact length —
    /// trailing garbage is a decode error, not padding).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a bool encoded as exactly 0 or 1 (other values are malformed).
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads an optional `f64` (presence tag + value).
    pub fn opt_f64(&mut self) -> Option<Option<f64>> {
        let present = self.bool()?;
        let v = self.f64()?;
        Some(present.then_some(v))
    }

    /// Reads a `u32`-length-prefixed blob, bounds-checked against the
    /// remaining input before any allocation.
    pub fn blob(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return None;
        }
        self.take(len)
    }
}

/// One cell of a campaign grid: a fault type (or the benign baseline)
/// under one intervention configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Injected fault; `None` is the fault-free baseline.
    pub fault: Option<FaultType>,
    /// Active interventions for this cell.
    pub interventions: InterventionConfig,
}

impl CellSpec {
    /// Encodes into `out` (fault tag, intervention flags — bits 3-4 carry
    /// the mitigation-strategy code — AEBS mode, reaction time, view
    /// count).
    pub fn encode(&self, out: &mut ByteWriter) {
        out.u8(match self.fault {
            None => 0,
            Some(FaultType::RelativeDistance) => 1,
            Some(FaultType::DesiredCurvature) => 2,
            Some(FaultType::Mixed) => 3,
        });
        let iv = self.interventions;
        let flags = u8::from(iv.driver)
            | (u8::from(iv.safety_check) << 1)
            | (u8::from(iv.ml) << 2)
            | (iv.mitigation.code() << 3);
        out.u8(flags);
        out.u8(match iv.aebs {
            AebsMode::Disabled => 0,
            AebsMode::Compromised => 1,
            AebsMode::Independent => 2,
        });
        out.f64(iv.driver_reaction_time);
        out.u8(iv.views);
    }

    /// Decodes one cell; `None` on any out-of-range tag, a non-finite /
    /// non-positive reaction time, or an out-of-range view count.
    pub fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let fault = match r.u8()? {
            0 => None,
            1 => Some(FaultType::RelativeDistance),
            2 => Some(FaultType::DesiredCurvature),
            3 => Some(FaultType::Mixed),
            _ => return None,
        };
        let flags = r.u8()?;
        if flags & !0b1_1111 != 0 {
            return None;
        }
        let mitigation = MitigationKind::from_code((flags >> 3) & 0b11)?;
        let aebs = match r.u8()? {
            0 => AebsMode::Disabled,
            1 => AebsMode::Compromised,
            2 => AebsMode::Independent,
            _ => return None,
        };
        let driver_reaction_time = r.f64()?;
        if !driver_reaction_time.is_finite() || driver_reaction_time <= 0.0 {
            return None;
        }
        let views = r.u8()?;
        if views > MAX_VIEWS {
            return None;
        }
        Some(Self {
            fault,
            interventions: InterventionConfig {
                driver: flags & 1 != 0,
                driver_reaction_time,
                safety_check: flags & 0b10 != 0,
                aebs,
                ml: flags & 0b100 != 0,
                mitigation,
                views,
            },
        })
    }
}

/// A full campaign job: the sweep parameters plus the cell grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign seed (drives every run's RNG stream derivation).
    pub campaign_seed: u64,
    /// Repetitions per scenario × position (the paper uses 10).
    pub repetitions: u32,
    /// Per-run step cap override; 0 keeps the platform default (10 000).
    pub max_steps: u32,
    /// Scenario subset (bit `i` = `ScenarioId::ALL[i]`);
    /// [`SCENARIO_MASK_ALL`] sweeps the full S1–S6 grid.
    pub scenario_mask: u8,
    /// Attack-scheduling policy every cell runs under. Immediate is the
    /// paper's always-on patch; a context trigger holds the patch back
    /// until the ego is in a vulnerable state (Zhou et al.).
    pub attack: AttackScheduler,
    /// The cell grid, in submission (= streaming) order.
    pub cells: Vec<CellSpec>,
}

/// Version tag leading every serialised [`CampaignSpec`]. v2 widened the
/// cell layout with the mitigation-strategy flag bits and a view-count
/// byte; v3 inserted the attack-scheduler block after the scenario mask.
/// Older frames are rejected rather than misparsed.
const CAMPAIGN_SPEC_VERSION: u8 = 3;

impl CampaignSpec {
    /// A full-grid campaign (all scenarios, default run length).
    #[must_use]
    pub fn new(campaign_seed: u64, repetitions: u32, cells: Vec<CellSpec>) -> Self {
        Self {
            campaign_seed,
            repetitions,
            max_steps: 0,
            scenario_mask: SCENARIO_MASK_ALL,
            attack: AttackScheduler::Immediate,
            cells,
        }
    }

    /// Whether the spec is internally valid (non-empty bounded grid, sane
    /// mask, at least one repetition).
    #[must_use]
    pub fn validate(&self) -> bool {
        self.repetitions >= 1
            && !self.cells.is_empty()
            && self.cells.len() <= MAX_CELLS
            && self.scenario_mask != 0
            && self.scenario_mask & !SCENARIO_MASK_ALL == 0
    }

    /// True when the scenario mask covers the whole S1–S6 grid and the run
    /// length is the platform default — the precondition for sharing cache
    /// entries with the CLI harnesses (`table_vi` …).
    #[must_use]
    pub fn is_full_grid(&self) -> bool {
        self.scenario_mask == SCENARIO_MASK_ALL && self.max_steps == 0
    }

    /// The platform configuration a given cell runs under.
    #[must_use]
    pub fn config_for(&self, cell: &CellSpec) -> PlatformConfig {
        let mut config = PlatformConfig::with_interventions(cell.interventions);
        if self.max_steps != 0 {
            config.max_steps = self.max_steps as usize;
        }
        config.attack = self.attack;
        config
    }

    /// Run coordinates of one cell's sweep, in paper order.
    #[must_use]
    pub fn run_ids(&self) -> Vec<RunId> {
        campaign_run_ids_masked(self.repetitions, self.scenario_mask)
    }

    /// Content fingerprint of one cell's aggregate result. For full-grid
    /// campaigns this is byte-compatible with
    /// [`campaign_cell_fingerprint`], so a campaign served over the wire
    /// hits the same artifact-cache entries the CLI harnesses write (and
    /// vice versa); masked grids get a disjoint key family.
    #[must_use]
    pub fn cell_key(&self, cell: &CellSpec, model: Option<Fingerprint>) -> Fingerprint {
        let config = self.config_for(cell);
        let base = campaign_cell_fingerprint(
            cell.fault,
            &config,
            model,
            self.campaign_seed,
            self.repetitions,
        );
        if self.scenario_mask == SCENARIO_MASK_ALL {
            base
        } else {
            base.write_str("scenario-mask").write_u64(u64::from(self.scenario_mask))
        }
    }

    /// The consistent-hashing routing key of one cell: [`Self::cell_key`]
    /// with the model fingerprint deliberately excluded, so a coordinator
    /// can route cells without training a model and — more importantly —
    /// so a cell keeps landing on the same worker across campaigns that
    /// only differ in resident model identity. The worker still looks its
    /// caches up under the full (model-qualified) [`Self::cell_key`].
    #[must_use]
    pub fn route_key(&self, cell: &CellSpec) -> u64 {
        self.cell_key(cell, None).value()
    }

    /// Serialises the spec (versioned fixed layout).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = ByteWriter::new();
        out.u8(CAMPAIGN_SPEC_VERSION);
        out.u64(self.campaign_seed);
        out.u32(self.repetitions);
        out.u32(self.max_steps);
        out.u8(self.scenario_mask);
        match self.attack {
            AttackScheduler::Immediate => out.u8(0),
            AttackScheduler::Context(t) => {
                out.u8(1);
                out.opt_f64(t.ttc_below);
                out.opt_f64(t.lane_excursion_above);
                out.opt_f64(t.curvature_above);
                out.f64(t.arm_after);
            }
        }
        out.u16(u16::try_from(self.cells.len()).expect("≤ MAX_CELLS cells"));
        for cell in &self.cells {
            cell.encode(&mut out);
        }
        out.into_bytes()
    }

    /// Parses [`Self::to_bytes`] output; `None` on version mismatch,
    /// truncation, trailing bytes, or any field failing validation.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        if r.u8()? != CAMPAIGN_SPEC_VERSION {
            return None;
        }
        let campaign_seed = r.u64()?;
        let repetitions = r.u32()?;
        let max_steps = r.u32()?;
        let scenario_mask = r.u8()?;
        let attack = match r.u8()? {
            0 => AttackScheduler::Immediate,
            1 => {
                let ttc_below = r.opt_f64()?;
                let lane_excursion_above = r.opt_f64()?;
                let curvature_above = r.opt_f64()?;
                let arm_after = r.f64()?;
                if !arm_after.is_finite() || arm_after < 0.0 {
                    return None;
                }
                for atom in [ttc_below, lane_excursion_above, curvature_above] {
                    if atom.is_some_and(|v| !v.is_finite()) {
                        return None;
                    }
                }
                AttackScheduler::Context(ContextTrigger {
                    ttc_below,
                    lane_excursion_above,
                    curvature_above,
                    arm_after,
                })
            }
            _ => return None,
        };
        let count = r.u16()? as usize;
        if count > MAX_CELLS {
            return None;
        }
        let mut cells = Vec::with_capacity(count);
        for _ in 0..count {
            cells.push(CellSpec::decode(&mut r)?);
        }
        if !r.exhausted() {
            return None;
        }
        let spec = Self {
            campaign_seed,
            repetitions,
            max_steps,
            scenario_mask,
            attack,
            cells,
        };
        spec.validate().then_some(spec)
    }
}

/// Encodes a [`RunId`] (scenario index, position index, repetition).
pub fn encode_run_id(id: RunId, out: &mut ByteWriter) {
    out.u8(id.scenario.index() as u8);
    out.u8(id.position.index() as u8);
    out.u32(id.repetition);
}

/// Decodes a [`RunId`]; `None` on out-of-range indices.
pub fn decode_run_id(r: &mut ByteReader<'_>) -> Option<RunId> {
    let scenario = *ScenarioId::ALL.get(r.u8()? as usize)?;
    let position = *InitialPosition::ALL.get(r.u8()? as usize)?;
    let repetition = r.u32()?;
    Some(RunId {
        scenario,
        position,
        repetition,
    })
}

/// Encodes a [`RunRecord`] (every field, bit-exact floats).
pub fn encode_run_record(rec: &RunRecord, out: &mut ByteWriter) {
    out.f64(rec.min_ttc);
    out.f64(rec.t_fcw_at_min_ttc);
    out.f64(rec.max_brake);
    out.f64(rec.avg_following_distance);
    out.f64(rec.min_lane_line_distance);
    out.u64(rec.steps);
    out.opt_f64(rec.h1_time);
    out.opt_f64(rec.h2_time);
    out.u8(match rec.accident {
        None => 0,
        Some(AccidentKind::ForwardCollision) => 1,
        Some(AccidentKind::LaneViolation) => 2,
    });
    out.opt_f64(rec.accident_time);
    out.opt_f64(rec.fault_start);
    out.opt_f64(rec.aeb_trigger);
    out.opt_f64(rec.driver_brake_trigger);
    out.opt_f64(rec.driver_steer_trigger);
    out.bool(rec.ml_activated);
}

/// Decodes a [`RunRecord`]; `None` on truncation or a bad accident tag.
pub fn decode_run_record(r: &mut ByteReader<'_>) -> Option<RunRecord> {
    Some(RunRecord {
        min_ttc: r.f64()?,
        t_fcw_at_min_ttc: r.f64()?,
        max_brake: r.f64()?,
        avg_following_distance: r.f64()?,
        min_lane_line_distance: r.f64()?,
        steps: r.u64()?,
        h1_time: r.opt_f64()?,
        h2_time: r.opt_f64()?,
        accident: match r.u8()? {
            0 => None,
            1 => Some(AccidentKind::ForwardCollision),
            2 => Some(AccidentKind::LaneViolation),
            _ => return None,
        },
        accident_time: r.opt_f64()?,
        fault_start: r.opt_f64()?,
        aeb_trigger: r.opt_f64()?,
        driver_brake_trigger: r.opt_f64()?,
        driver_steer_trigger: r.opt_f64()?,
        ml_activated: r.bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        CampaignSpec {
            campaign_seed: 2025,
            repetitions: 3,
            max_steps: 1500,
            scenario_mask: 0b001001, // S1 + S4
            attack: AttackScheduler::Immediate,
            cells: vec![
                CellSpec {
                    fault: None,
                    interventions: InterventionConfig::none(),
                },
                CellSpec {
                    fault: Some(FaultType::RelativeDistance),
                    interventions: InterventionConfig::driver_check_aeb_independent(),
                },
                CellSpec {
                    fault: Some(FaultType::Mixed),
                    interventions: InterventionConfig::ml_only(),
                },
            ],
        }
    }

    #[test]
    fn route_key_is_stable_and_model_independent() {
        let spec = sample_spec();
        // Distinct cells route independently…
        let keys: Vec<u64> = spec.cells.iter().map(|c| spec.route_key(c)).collect();
        assert_eq!(keys.len(), 3);
        assert!(keys[0] != keys[1] && keys[1] != keys[2] && keys[0] != keys[2]);
        // …and the key matches the model-less cache key exactly, so a
        // coordinator and a cache-warm worker agree on cell identity.
        for cell in &spec.cells {
            assert_eq!(spec.route_key(cell), spec.cell_key(cell, None).value());
        }
        // A sub-spec carrying only one cell (a fabric assignment slice)
        // routes that cell identically to the full grid.
        let sub = CampaignSpec {
            cells: vec![spec.cells[1]],
            ..spec.clone()
        };
        assert_eq!(sub.route_key(&sub.cells[0]), keys[1]);
    }

    #[test]
    fn campaign_spec_roundtrip() {
        let spec = sample_spec();
        let bytes = spec.to_bytes();
        assert_eq!(CampaignSpec::from_bytes(&bytes), Some(spec));
    }

    #[test]
    fn scheduled_campaign_roundtrips_and_gets_fresh_keys() {
        let mut spec = sample_spec();
        spec.attack = AttackScheduler::Context(ContextTrigger::ttc(2.0));
        assert_eq!(CampaignSpec::from_bytes(&spec.to_bytes()), Some(spec.clone()));
        // A scheduled campaign is a different experiment from the immediate
        // one: cache and routing keys must not collide with the legacy
        // family (which itself stays byte-for-byte stable — the attack
        // field only enters the config Debug rendering when non-default).
        let immediate = sample_spec();
        for cell in &spec.cells {
            assert_eq!(spec.config_for(cell).attack, spec.attack);
            assert_ne!(spec.cell_key(cell, None), immediate.cell_key(cell, None));
            assert_ne!(spec.route_key(cell), immediate.route_key(cell));
        }
        // Non-finite trigger fields are malformed on the wire.
        let mut bad = spec.clone();
        bad.attack = AttackScheduler::Context(ContextTrigger::ttc(f64::NAN));
        assert_eq!(CampaignSpec::from_bytes(&bad.to_bytes()), None);
    }

    #[test]
    fn campaign_spec_rejects_corruption() {
        let spec = sample_spec();
        let bytes = spec.to_bytes();
        // Truncation at every boundary.
        for cut in 0..bytes.len() {
            assert_eq!(CampaignSpec::from_bytes(&bytes[..cut]), None, "cut {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(CampaignSpec::from_bytes(&long), None);
        // Bad version byte.
        let mut bad = bytes;
        bad[0] = 9;
        assert_eq!(CampaignSpec::from_bytes(&bad), None);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut spec = sample_spec();
        spec.scenario_mask = 0;
        assert_eq!(CampaignSpec::from_bytes(&spec.to_bytes()), None);
        let mut spec = sample_spec();
        spec.scenario_mask = 0xFF; // bits beyond S6
        assert_eq!(CampaignSpec::from_bytes(&spec.to_bytes()), None);
        let mut spec = sample_spec();
        spec.repetitions = 0;
        assert_eq!(CampaignSpec::from_bytes(&spec.to_bytes()), None);
        let mut spec = sample_spec();
        spec.cells.clear();
        assert_eq!(CampaignSpec::from_bytes(&spec.to_bytes()), None);
    }

    #[test]
    fn full_grid_cell_key_matches_cli_fingerprint() {
        let spec = CampaignSpec::new(
            2025,
            10,
            vec![CellSpec {
                fault: Some(FaultType::DesiredCurvature),
                interventions: InterventionConfig::driver_and_check(),
            }],
        );
        assert!(spec.is_full_grid());
        let cell = spec.cells[0];
        let direct = campaign_cell_fingerprint(
            cell.fault,
            &PlatformConfig::with_interventions(cell.interventions),
            None,
            2025,
            10,
        );
        assert_eq!(spec.cell_key(&cell, None), direct);
        // A masked grid must NOT collide with the full-grid key family.
        let mut masked = spec.clone();
        masked.scenario_mask = 0b1;
        assert_ne!(masked.cell_key(&cell, None), direct);
    }

    #[test]
    fn mitigation_cells_roundtrip() {
        let mut ens = InterventionConfig::ensemble_only();
        ens.views = 12;
        let spec = CampaignSpec {
            cells: vec![
                CellSpec {
                    fault: Some(FaultType::RelativeDistance),
                    interventions: ens,
                },
                CellSpec {
                    fault: Some(FaultType::Mixed),
                    interventions: InterventionConfig::maskcheck_only(),
                },
            ],
            ..sample_spec()
        };
        assert_eq!(CampaignSpec::from_bytes(&spec.to_bytes()), Some(spec));
    }

    #[test]
    fn mitigation_variants_get_distinct_cache_and_route_keys() {
        // Satellite regression: the three mitigation strategies — and
        // different view counts of one strategy — are different
        // experiments, so the memo/disk cache keys and the fabric routing
        // keys must all be distinct. A collision here would silently serve
        // one strategy's Table VII numbers as another's.
        let fault = Some(FaultType::RelativeDistance);
        let mut variants = vec![
            InterventionConfig::ml_only(),
            InterventionConfig::ensemble_only(),
            InterventionConfig::maskcheck_only(),
        ];
        let mut ens12 = InterventionConfig::ensemble_only();
        ens12.views = 12;
        variants.push(ens12);
        let cells: Vec<CellSpec> = variants
            .iter()
            .map(|&interventions| CellSpec {
                fault,
                interventions,
            })
            .collect();
        let spec = CampaignSpec::new(2025, 10, cells.clone());
        let model = Some(Fingerprint::new().write_str("weights"));
        for i in 0..cells.len() {
            for j in i + 1..cells.len() {
                assert_ne!(
                    spec.cell_key(&cells[i], model),
                    spec.cell_key(&cells[j], model),
                    "cache-key collision between variants {i} and {j}"
                );
                assert_ne!(
                    spec.route_key(&cells[i]),
                    spec.route_key(&cells[j]),
                    "route-key collision between variants {i} and {j}"
                );
            }
        }
        // The CUSUM cell keeps the exact legacy key: pre-existing cache
        // entries written before the variants existed stay valid.
        let legacy = campaign_cell_fingerprint(
            fault,
            &PlatformConfig::with_interventions(InterventionConfig::ml_only()),
            model,
            2025,
            10,
        );
        assert_eq!(spec.cell_key(&cells[0], model), legacy);
    }

    #[test]
    fn masked_run_ids_are_a_subset() {
        let spec = sample_spec();
        let ids = spec.run_ids();
        assert_eq!(ids.len(), 2 * 2 * 3); // 2 scenarios × 2 positions × 3 reps
        assert!(ids
            .iter()
            .all(|id| matches!(id.scenario, ScenarioId::S1 | ScenarioId::S4)));
        let full = campaign_run_ids_masked(3, SCENARIO_MASK_ALL);
        assert!(ids.iter().all(|id| full.contains(id)));
    }

    #[test]
    fn run_record_roundtrip_preserves_nan() {
        let rec = RunRecord {
            min_ttc: f64::INFINITY,
            avg_following_distance: f64::NAN,
            h1_time: Some(10.25),
            accident: Some(AccidentKind::LaneViolation),
            accident_time: Some(11.0),
            ml_activated: true,
            ..RunRecord::default()
        };
        let mut w = ByteWriter::new();
        encode_run_record(&rec, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_run_record(&mut r).expect("decodes");
        assert!(r.exhausted());
        // Debug equality is NaN-tolerant bit-pattern equality here.
        assert_eq!(format!("{rec:?}"), format!("{back:?}"));
    }

    #[test]
    fn run_id_roundtrip_and_bounds() {
        let id = RunId {
            scenario: ScenarioId::S5,
            position: InitialPosition::Far,
            repetition: 7,
        };
        let mut w = ByteWriter::new();
        encode_run_id(id, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_run_id(&mut r), Some(id));
        // Out-of-range scenario index.
        let mut bad = bytes;
        bad[0] = 6;
        assert_eq!(decode_run_id(&mut ByteReader::new(&bad)), None);
    }

    #[test]
    fn reader_never_reads_past_end() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u16(), Some(0x0201));
        assert_eq!(r.u32(), None);
        assert_eq!(r.u8(), Some(3));
        assert!(r.exhausted());
        // Oversized blob length must not allocate or wrap.
        let mut r = ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 1]);
        assert_eq!(r.blob(), None);
    }
}
