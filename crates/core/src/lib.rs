//! Closed-loop simulation platform and experiment campaign harness — the
//! paper's primary contribution (Fig. 3): OpenPilot-like control software,
//! a physical-world simulator, a driver reaction simulator, key ADAS safety
//! mechanisms, and a fault-injection engine, wired into one deterministic
//! 100 Hz loop with campaign-level sweeps and aggregation.
//!
//! # Quickstart
//!
//! ```
//! use adas_core::{Platform, PlatformConfig, InterventionConfig};
//! use adas_attack::{FaultInjector, FaultSpec, FaultType};
//! use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
//! use adas_simulator::DeterministicRng;
//!
//! // Build scenario S1 with a relative-distance attack and AEB on an
//! // independent sensor.
//! let mut rng = DeterministicRng::for_run(7, 0, 0, 0);
//! let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
//! let injector = FaultInjector::new(FaultSpec::new(
//!     FaultType::RelativeDistance,
//!     setup.patch_start_s,
//! ));
//! let config = PlatformConfig::with_interventions(
//!     InterventionConfig::aeb_independent_only(),
//! );
//! let mut platform = Platform::new(&setup, config, injector, None, &mut rng);
//! let record = platform.run();
//! assert!(record.prevented());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod config;
pub mod experiment;
pub mod job;
pub mod platform;
pub mod replay;
pub mod tables;

/// Deterministic work-stealing executor (re-export of [`adas_parallel`]):
/// shared atomic work-queue over scoped threads, honouring `ADAS_THREADS`.
pub use adas_parallel as parallel;

/// Hardened `ADAS_*` environment parsing (re-export of
/// [`adas_parallel::env`]): trims values, rejects empty/garbage input with
/// a warning instead of a silent fallback. Shared by every crate that
/// reads configuration from the environment.
pub use adas_parallel::env;

pub use batch::{run_lockstep, run_lockstep_ctl, BatchStats};
pub use cache::{fingerprint_dataset, ArtifactCache, CacheStats, Fingerprint};
/// Mitigation-strategy selector and model architecture, re-exported so
/// downstream crates can name them without a direct `adas-ml` edge.
pub use adas_ml::{MitigationKind, ModelSpec};
pub use config::{attack_from_env, mitigation_from_env, InterventionConfig, PlatformConfig, MAX_VIEWS};
pub use experiment::{
    campaign_cell_fingerprint, campaign_run_ids, campaign_run_ids_masked, cell_stats_cached,
    collect_training_data, run_campaign, run_campaign_with_width, run_ids_ctl, run_single,
    CellStats, RunId, SCENARIO_MASK_ALL,
};
pub use job::{CampaignSpec, CellSpec};
pub use platform::{Platform, RunEnd, RunEnd2};
pub use replay::{
    config_fingerprint, replay_trace, run_campaign_traced, run_campaign_traced_with_width,
    run_single_traced, run_traced, trace_header, Perturbation, ReplayError, ReplayReport,
    TraceSink,
};
pub use tables::{fmt_opt_time, fmt_pct, TextTable};
