//! The closed-loop simulation platform (paper Fig. 3).
//!
//! One `Platform` owns a world, the perception emulator, the OpenPilot-like
//! controller, the fault injector, every safety intervention, and the
//! metric/hazard monitors; [`Platform::step`] executes one 10 ms cycle of
//! the loop:
//!
//! ```text
//! world ──ground truth──► perception ──► fault injection ──► ADAS (ACC+ALC)
//!   ▲                          │                                   │
//!   │                    AEBS(comp./indep.)   safety check ◄───────┘
//!   │                          │driver (true world + FCW/LDW)  ML (Alg. 1)
//!   └────── actuators ◄── priority arbiter ◄──────────────────────┘
//! ```

use crate::config::PlatformConfig;
use adas_attack::{FaultContext, FaultInjector};
use adas_control::{AdasCommand, AdasController};
use adas_ml::{ControlTarget, Mitigator, PerceptionViews, StateFeatures, FEATURE_DIM, TARGET_DIM};
use adas_perception::{PerceptionEmulator, PerceptionFrame};
use adas_safety::{
    arbitrate, Aebs, AebsConfig, AebsMode, AebsOutput, ArbiterInputs, CommandSource,
    DriverAction, DriverConfig, DriverInputs, DriverModel, Ldw, LdwConfig, SafetyCheck,
    SafetyCheckConfig,
};
use adas_recorder::TraceWriter;
use adas_scenarios::{HazardMonitor, RunMetrics, RunRecord, ScenarioSetup};
use adas_simulator::{
    DeterministicRng, LeadObservation, TraceRecorder, TraceSample, World, WorldConfig,
};
use serde::{Deserialize, Serialize};

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunEnd {
    /// Ran the full configured number of steps.
    TimeLimit,
    /// An accident latched.
    Accident,
    /// The ego came to a lasting stop (successful emergency stop).
    Quiescent,
}

/// The assembled closed-loop platform for one run.
#[derive(Debug)]
pub struct Platform {
    config: PlatformConfig,
    world: World,
    perception: PerceptionEmulator,
    adas: AdasController,
    injector: FaultInjector,
    aebs: Aebs,
    check: Option<SafetyCheck>,
    driver: Option<DriverModel>,
    ldw: Ldw,
    ml: Option<Mitigator>,
    hazards: HazardMonitor,
    metrics: RunMetrics,
    trace: Option<TraceRecorder>,
    writer: Option<TraceWriter>,
    last_executed: ControlTarget,
    stationary_steps: usize,
    steps_run: usize,
}

impl Platform {
    /// Assembles a platform for one scenario run.
    ///
    /// `injector` carries the attack (use [`FaultInjector::disabled`] for
    /// benign runs); `ml` is the mitigation runtime (any
    /// [`Mitigator`] variant) when the configuration enables it; `rng`
    /// seeds the perception noise.
    #[must_use]
    pub fn new(
        setup: &ScenarioSetup,
        config: PlatformConfig,
        injector: FaultInjector,
        ml: Option<Mitigator>,
        rng: &mut DeterministicRng,
    ) -> Self {
        let mut adas_cfg = config.adas;
        adas_cfg.acc.set_speed = setup.ego_speed;

        let world_cfg = WorldConfig {
            friction: config.friction,
            ..WorldConfig::default()
        };
        let mut world = World::new(world_cfg, setup.road.clone());
        world.spawn_ego(setup.ego_start_s, setup.ego_speed);
        for npc in &setup.npcs {
            world.add_npc(npc.clone());
        }
        for zone in &setup.friction_zones {
            world.add_friction_zone(*zone);
        }

        let iv = config.interventions;
        Self {
            config,
            world,
            perception: PerceptionEmulator::new(config.perception, rng.split(0xFEED)),
            adas: AdasController::new(adas_cfg),
            injector,
            aebs: Aebs::new(AebsConfig::default(), iv.aebs),
            check: iv.safety_check.then(|| SafetyCheck::new(SafetyCheckConfig::default())),
            driver: iv.driver.then(|| {
                DriverModel::new(DriverConfig {
                    reaction_time: iv.driver_reaction_time,
                    speed_limit: setup.ego_speed,
                    ..DriverConfig::default()
                })
            }),
            ldw: Ldw::new(LdwConfig::default()),
            ml: if iv.ml { ml } else { None },
            hazards: HazardMonitor::new(config.hazards),
            metrics: RunMetrics::new(),
            trace: None,
            writer: None,
            last_executed: ControlTarget::default(),
            stationary_steps: 0,
            steps_run: 0,
        }
    }

    /// Attaches a trace recorder (for the figure harnesses).
    pub fn attach_trace(&mut self, recorder: TraceRecorder) {
        self.trace = Some(recorder);
    }

    /// Takes the trace recorder back after a run.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take()
    }

    /// Attaches a flight-recorder writer that is fed directly from the
    /// step loop — the zero-copy capture path: samples go straight into
    /// the writer (events derived online) with no intermediate buffer.
    pub fn attach_writer(&mut self, writer: TraceWriter) {
        self.writer = Some(writer);
    }

    /// Takes the flight-recorder writer back after a run.
    pub fn take_writer(&mut self) -> Option<TraceWriter> {
        self.writer.take()
    }

    /// The simulated world (read access for examples/tests).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The hazard monitor.
    #[must_use]
    pub fn hazards(&self) -> &HazardMonitor {
        &self.hazards
    }

    /// Executes one 10 ms control cycle. Returns the latest perception
    /// frame (post fault injection) for inspection.
    ///
    /// Composed of [`Self::begin_step`] (stages 1–7 up to the ML feature
    /// encode), the scalar LSTM forward, and [`Self::finish_step`]
    /// (mitigation decision, arbitration, actuation, monitors) — the same
    /// seams the lockstep batch driver uses, so the scalar and batched
    /// paths execute identical per-run operation sequences.
    pub fn step(&mut self) -> PerceptionFrame {
        let pending = self.begin_step();
        let ml_y = match (
            self.ml.as_mut().and_then(Mitigator::as_cusum_mut),
            pending.ml_input.as_ref(),
        ) {
            (Some(ml), Some(input)) => Some(ml.forward(&input.x)),
            _ => None,
        };
        self.finish_step(pending, ml_y)
    }

    /// Stages 1–7 of one control cycle: perception + fault injection, ADAS
    /// control, safety check, AEBS, LDW, driver model, and the ML feature
    /// encode — everything up to (but not including) the LSTM forward.
    pub(crate) fn begin_step(&mut self) -> PendingCycle {
        let dt = adas_simulator::units::SIM_DT;
        let time = self.world.time();

        // 1. Perception (DNN outputs) + fault injection. The pre-injection
        // channel values are captured first (plain reads, no stream
        // consumption) — the view-based mitigations jitter the fault delta
        // between these and the post-injection values.
        let truth = self.world.lead_observation();
        let mut frame = self.perception.perceive(&self.world);
        let clean_rd = frame.lead.map(|l| l.distance);
        let clean_kappa = frame.desired_curvature;
        let ego_s = self.world.ego().state().s;
        let fault_active = self.injector.apply(
            &mut frame,
            &FaultContext {
                time,
                ego_s,
                ego_d: self.world.ego().state().d,
                true_rd: truth.map(|o| o.distance),
                // Live world state for the context-aware attack scheduler:
                // the attacker watches the same quantities the victim's
                // sensors expose.
                ttc: truth.map(|o| o.ttc()),
                road_curvature: self.world.road().curvature_at(ego_s),
            },
        );

        // 2. ADAS control (consumes possibly-poisoned outputs).
        let raw_cmd = self.adas.control(&frame, dt);

        // 3. Firmware safety check (ADAS/ML level only).
        let checked_cmd = match self.check.as_mut() {
            Some(check) => check.check(raw_cmd, dt).command,
            None => raw_cmd,
        };

        // 4. AEBS: data source depends on the configuration.
        let aeb_lead = match self.aebs.mode() {
            AebsMode::Disabled => None,
            AebsMode::Compromised => frame.lead.map(|l| (l.distance, l.closing_speed)),
            AebsMode::Independent => truth.map(|o| (o.distance, o.closing_speed)),
        };
        let ego_v = self.world.ego().state().v;
        let aeb_out = self.aebs.evaluate(aeb_lead, ego_v, time);

        // 5. LDW from the (possibly poisoned) perception lane lines.
        let perceived_edge = frame.lanes.nearest_line() - self.world.ego().params().width / 2.0;
        let ldw_alert = self.ldw.evaluate(perceived_edge, time, dt);

        // 6. Human driver watches the true world plus the alerts.
        let ego_state = *self.world.ego().state();
        let true_line_dist = self.world.ego_lane_line_distance();
        let driver_action = match self.driver.as_mut() {
            Some(driver) => driver.update(&DriverInputs {
                time,
                fcw_alert: aeb_out.fcw_alert,
                ldw_alert,
                ego_speed: ego_state.v,
                adas_accel: checked_cmd.accel,
                ego_accel: ego_state.accel,
                true_lead: truth.map(|o| (o.distance, o.closing_speed)),
                cut_in: self.world.cut_in_threat(),
                lateral_offset: ego_state.d,
                heading_error: ego_state.psi,
                // The paper's lateral trigger uses the *predicted* distance
                // to the lane lines — which a road-patch attack poisons.
                lane_line_distance: perceived_edge,
            }),
            None => adas_safety::DriverAction::default(),
        };

        // 7 (first half). ML mitigation consumes fault-free redundant
        // state; encode the staging for the active strategy here. The
        // CUSUM baseline gets its feature vector (LSTM forward left to the
        // caller — scalar inline or batched across lanes); the view-based
        // strategies get the clean/attacked perception channel pairs and
        // run their own view fan-out inside `finish_step`.
        let (ml_input, views_input) = match self.ml.as_ref() {
            None => (None, None),
            Some(mit) => {
                let features = StateFeatures {
                    ego_speed: ego_state.v,
                    lead_distance: truth.map_or(f64::INFINITY, |o| o.distance),
                    closing_speed: truth.map_or(0.0, |o| o.closing_speed),
                    left_line: self.world.road().lane_width() / 2.0 - ego_state.d,
                    right_line: self.world.road().lane_width() / 2.0 + ego_state.d,
                    curvature: self.world.road().curvature_at(ego_state.s),
                    heading: ego_state.psi,
                    prev_accel: self.last_executed.accel,
                    prev_steer: self.last_executed.steer,
                };
                let op_out = ControlTarget {
                    accel: checked_cmd.accel,
                    steer: checked_cmd.steer,
                };
                if mit.wants_views() {
                    (
                        None,
                        Some(PerceptionViews {
                            features,
                            clean_rd,
                            attacked_rd: frame.lead.map(|l| l.distance),
                            clean_kappa,
                            attacked_kappa: frame.desired_curvature,
                            op_out,
                        }),
                    )
                } else {
                    (
                        Some(MlInput {
                            x: features.encode(),
                            op_out,
                        }),
                        None,
                    )
                }
            }
        };

        PendingCycle {
            time,
            truth,
            frame,
            fault_active,
            checked_cmd,
            aeb_out,
            driver_action,
            true_line_dist,
            ml_input,
            views_input,
        }
    }

    /// Commits one control cycle begun by [`Self::begin_step`]: the ML
    /// mitigation decision (fed the externally computed LSTM output
    /// `ml_y`, if any), priority arbitration, actuation, and monitors.
    ///
    /// `ml_y` must be `Some` exactly when the pending cycle carries an ML
    /// input, and must be the model output for that input on this run's
    /// recurrent stream — [`MlMitigator::forward`] on the scalar path, the
    /// run's lane of [`adas_ml::LstmPredictor::step_batch`] on the batched
    /// path (bit-identical by construction).
    pub(crate) fn finish_step(
        &mut self,
        pending: PendingCycle,
        ml_y: Option<[f64; TARGET_DIM]>,
    ) -> PerceptionFrame {
        let PendingCycle {
            time,
            truth,
            frame,
            fault_active,
            checked_cmd,
            aeb_out,
            driver_action,
            true_line_dist,
            ml_input,
            views_input,
        } = pending;

        // 7 (second half). Mitigation decision: the CUSUM baseline judges
        // the externally computed LSTM output; the view-based strategies
        // run their whole cycle here on the staged perception views.
        let to_cmd = |target: ControlTarget| AdasCommand {
            accel: target.accel,
            steer: target.steer,
            lead_engaged: checked_cmd.lead_engaged,
        };
        let ml_cmd = match self.ml.as_mut() {
            None => match (ml_input, ml_y) {
                (None, None) => None,
                _ => panic!("ml_y must accompany a pending ML input (and only then)"),
            },
            Some(Mitigator::Cusum(ml)) => match (ml_input, ml_y) {
                (Some(input), Some(y)) => {
                    ml.update_with_output(&y, &input.op_out, time).map(to_cmd)
                }
                _ => panic!("ml_y must accompany a pending ML input (and only then)"),
            },
            Some(mit) => {
                assert!(
                    ml_y.is_none(),
                    "view-based mitigations compute inline; no external LSTM output expected"
                );
                let views = views_input
                    .as_ref()
                    .expect("views staged for a view-based mitigator");
                mit.update_views(views, time).map(to_cmd)
            }
        };

        // 8. Priority arbitration (AEB > driver > ML > ADAS).
        let ego_params = *self.world.ego().params();
        let arb = arbitrate(
            &ArbiterInputs {
                adas: checked_cmd,
                ml: ml_cmd,
                driver: driver_action,
                aeb_brake: aeb_out.brake,
            },
            &ego_params,
        );

        // 9. Actuate and advance the physical world.
        self.world.step(arb.command);
        self.steps_run += 1;
        self.last_executed = ControlTarget {
            accel: arb.command.gas * ego_params.engine_accel_limit
                - arb.command.brake * ego_params.full_brake_decel,
            steer: arb.command.steer,
        };

        // 10. Monitors.
        let _ = self.hazards.update(&self.world);
        let t_fcw_now = self.aebs.t_fcw(self.world.ego().state().v);
        self.metrics.step(
            truth.map(|o| o.distance),
            truth.map(|o| o.closing_speed),
            t_fcw_now,
            arb.command.brake,
            true_line_dist,
        );

        if self.trace.is_some() || self.writer.is_some() {
            let st = self.world.ego().state();
            let sample = TraceSample {
                time,
                ego_s: st.s,
                ego_d: st.d,
                ego_v: st.v,
                ego_accel: st.accel,
                gas: arb.command.gas,
                brake: arb.command.brake,
                steer: arb.command.steer,
                true_rd: truth.map_or(f64::INFINITY, |o| o.distance),
                perceived_rd: frame.lead.map_or(f64::INFINITY, |l| l.distance),
                lead_v: truth.map_or(f64::NAN, |o| o.lead_speed),
                lane_line_distance: true_line_dist,
                ttc: truth.map_or(f64::INFINITY, |o| o.ttc()),
                fcw_alert: aeb_out.fcw_alert,
                aeb_active: arb.longitudinal == CommandSource::Aeb,
                driver_braking: driver_action.brake.is_some(),
                driver_steering: driver_action.steer.is_some(),
                ml_active: ml_cmd.is_some(),
                fault_active,
            };
            if let Some(trace) = self.trace.as_mut() {
                trace.record(sample);
            }
            if let Some(writer) = self.writer.as_mut() {
                writer.record(sample);
            }
        }

        if self.world.ego().state().v < 0.05 {
            self.stationary_steps += 1;
        } else {
            self.stationary_steps = 0;
        }

        frame
    }

    /// True when the run should end now.
    #[must_use]
    pub fn finished(&self) -> RunEnd2 {
        if self.hazards.accident().is_some() {
            return RunEnd2::Yes(RunEnd::Accident);
        }
        if self.steps_run >= self.config.max_steps {
            return RunEnd2::Yes(RunEnd::TimeLimit);
        }
        if self.config.quiescence_steps > 0 && self.stationary_steps >= self.config.quiescence_steps
        {
            return RunEnd2::Yes(RunEnd::Quiescent);
        }
        RunEnd2::No
    }

    /// Runs to completion and returns the record.
    pub fn run(&mut self) -> RunRecord {
        loop {
            let _ = self.step();
            if let RunEnd2::Yes(_) = self.finished() {
                break;
            }
        }
        self.record()
    }

    /// Builds the [`RunRecord`] from the current monitors (callable after a
    /// manual stepping loop too).
    #[must_use]
    pub fn record(&self) -> RunRecord {
        let mut rec = self.metrics.finish();
        rec.h1_time = self.hazards.first_h1();
        rec.h2_time = self.hazards.first_h2();
        if let Some((t, kind)) = self.hazards.accident() {
            rec.accident = Some(kind);
            rec.accident_time = Some(t);
        }
        rec.fault_start = self.injector.first_activation_time();
        rec.aeb_trigger = self.aebs.first_brake_time();
        if let Some(driver) = &self.driver {
            rec.driver_brake_trigger = driver.first_brake_trigger().map(|(t, _)| t);
            rec.driver_steer_trigger = driver.first_steer_trigger();
        }
        rec.ml_activated = self
            .ml
            .as_ref()
            .is_some_and(|m| m.first_activation_time().is_some());
        rec
    }
}

/// Encoded ML-mitigation input for one cycle: the feature vector the LSTM
/// consumes and the ADAS output the CUSUM gate compares against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MlInput {
    /// Encoded [`StateFeatures`] — one lane's column of the batched input
    /// panel.
    pub(crate) x: [f64; FEATURE_DIM],
    op_out: ControlTarget,
}

/// One control cycle's stage 1–7 products, pending the LSTM forward and
/// the commit in [`Platform::finish_step`].
///
/// The world has *not* advanced yet when this exists; the batch driver
/// holds one per lane while a single weights-stationary matvec serves
/// every lane's LSTM step.
#[derive(Debug)]
pub(crate) struct PendingCycle {
    time: f64,
    truth: Option<LeadObservation>,
    frame: PerceptionFrame,
    pub(crate) fault_active: bool,
    checked_cmd: AdasCommand,
    aeb_out: AebsOutput,
    driver_action: DriverAction,
    true_line_dist: f64,
    pub(crate) ml_input: Option<MlInput>,
    /// Clean/attacked perception channel pairs for the view-based
    /// mitigations (`None` for the CUSUM baseline and unmitigated runs).
    views_input: Option<PerceptionViews>,
}

/// Tri-state "is the run finished" answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd2 {
    /// Keep stepping.
    No,
    /// Finished for the given reason.
    Yes(RunEnd),
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_attack::{FaultSpec, FaultType};
    use adas_scenarios::{InitialPosition, ScenarioId};

    fn setup(id: ScenarioId) -> ScenarioSetup {
        let mut rng = DeterministicRng::for_run(42, id.index() as u64, 0, 0);
        ScenarioSetup::build(id, InitialPosition::Near, &mut rng)
    }

    fn run(
        id: ScenarioId,
        config: PlatformConfig,
        fault: Option<FaultType>,
    ) -> RunRecord {
        let s = setup(id);
        let injector = match fault {
            Some(ft) => FaultInjector::new(FaultSpec::new(ft, s.patch_start_s)),
            None => FaultInjector::disabled(),
        };
        let mut rng = DeterministicRng::for_run(42, id.index() as u64, 0, 1);
        let mut p = Platform::new(&s, config, injector, None, &mut rng);
        p.run()
    }

    #[test]
    fn benign_s1_no_accident() {
        let rec = run(ScenarioId::S1, PlatformConfig::default(), None);
        assert!(rec.prevented(), "benign S1 must not crash: {rec:?}");
        assert!(rec.min_ttc > 1.5, "min_ttc {}", rec.min_ttc);
        assert!(rec.avg_following_distance > 15.0 && rec.avg_following_distance < 45.0,
            "following {}", rec.avg_following_distance);
    }

    #[test]
    fn rd_attack_without_interventions_crashes() {
        let rec = run(
            ScenarioId::S1,
            PlatformConfig::default(),
            Some(FaultType::RelativeDistance),
        );
        assert!(rec.accident.is_some(), "RD attack must cause accident");
        assert!(rec.fault_start.is_some());
    }

    #[test]
    fn curvature_attack_without_interventions_departs_lane() {
        let rec = run(
            ScenarioId::S1,
            PlatformConfig::default(),
            Some(FaultType::DesiredCurvature),
        );
        assert_eq!(
            rec.accident,
            Some(adas_scenarios::AccidentKind::LaneViolation),
            "{rec:?}"
        );
    }

    #[test]
    fn aeb_independent_prevents_rd_attack() {
        let cfg = PlatformConfig::with_interventions(
            crate::config::InterventionConfig::aeb_independent_only(),
        );
        let rec = run(ScenarioId::S1, cfg, Some(FaultType::RelativeDistance));
        assert!(rec.prevented(), "AEB-indep must prevent: {rec:?}");
        assert!(rec.aeb_trigger.is_some());
    }

    #[test]
    fn trace_recording_works() {
        let s = setup(ScenarioId::S1);
        let mut rng = DeterministicRng::for_run(42, 0, 0, 5);
        let mut p = Platform::new(
            &s,
            PlatformConfig::default(),
            FaultInjector::disabled(),
            None,
            &mut rng,
        );
        p.attach_trace(TraceRecorder::new());
        for _ in 0..100 {
            let _ = p.step();
        }
        let trace = p.take_trace().expect("trace attached");
        assert_eq!(trace.len(), 100);
        assert!(trace.samples()[50].ego_v > 0.0);
    }

    #[test]
    fn run_ends_by_time_limit_when_nothing_happens() {
        let cfg = PlatformConfig {
            max_steps: 200,
            quiescence_steps: 0,
            ..PlatformConfig::default()
        };
        let rec = run(ScenarioId::S1, cfg, None);
        assert_eq!(rec.steps, 200);
    }
}
