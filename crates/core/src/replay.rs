//! Replay executor: re-runs a recorded trace through the platform and
//! verifies bit-exact equivalence, plus the campaign-side trace sink.
//!
//! The flight-recorder data layer lives in [`adas_recorder`] (formats,
//! writer, diff, policy); this module supplies the pieces that need the
//! platform itself:
//!
//! * [`run_single_traced`] — execute one run while capturing a [`Trace`];
//! * [`replay_trace`] — reconstruct the run from its header, re-execute
//!   it, and localise the first divergent step/field (or report
//!   `Identical`);
//! * [`TraceSink`] / [`run_campaign_traced`] — the campaign hook that
//!   records every run and persists only the noteworthy ones under the
//!   [`TracePolicy`].

use crate::cache::Fingerprint;
use crate::config::{InterventionConfig, PlatformConfig};
use crate::experiment::{campaign_run_ids, make_mitigator, RunId};
use crate::platform::{Platform, RunEnd, RunEnd2};
use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_ml::{LstmPredictor, MitigationKind};
use adas_recorder::trace::InterventionSummary;
use adas_recorder::{
    diff_traces, DiffReport, EndReason, RecordMode, Trace, TraceHeader, TraceOutcome, TracePolicy,
    TraceWriter,
};
use adas_scenarios::{RunRecord, ScenarioSetup};
use adas_simulator::{DeterministicRng, FrictionCondition, TraceSample};
use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Per-worker sample-buffer pool (capacity for one run). A full-mode
    /// capture stores ~1.5 MB of samples per run; recycling the buffer
    /// across a campaign's runs keeps the writer from re-faulting fresh
    /// pages every run. The buffer travels with the [`Trace`] out of
    /// [`run_traced`] and comes back via [`recycle_sample_buffer`] once
    /// the sink is done with it.
    static SAMPLE_BUF: Cell<Vec<TraceSample>> = const { Cell::new(Vec::new()) };
}

/// Returns a sample buffer to the thread-local pool, keeping the larger of
/// the offered and pooled allocations.
fn recycle_sample_buffer(mut buf: Vec<TraceSample>) {
    SAMPLE_BUF.with(|cell| {
        let pooled = cell.take();
        if pooled.capacity() > buf.capacity() {
            buf = pooled;
        }
        buf.clear();
        cell.set(buf);
    });
}

/// Stable fingerprint of the full platform configuration, stored in every
/// trace header. Replay reconstructs a config from the header's projection
/// and refuses to run if its fingerprint differs — a loud failure beats a
/// silently meaningless bit-for-bit comparison against different physics.
#[must_use]
pub fn config_fingerprint(config: &PlatformConfig) -> u64 {
    Fingerprint::new()
        .write_str("platform-config-v1")
        .write_debug(config)
        .value()
}

/// Builds the trace header for one run. `model_fingerprint` must be the
/// trained-weights fingerprint when the configuration actually uses an ML
/// model, 0 otherwise.
#[must_use]
pub fn trace_header(
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    model_fingerprint: u64,
    campaign_seed: u64,
) -> TraceHeader {
    let iv = config.interventions;
    TraceHeader {
        scenario: id.scenario,
        position: id.position,
        repetition: id.repetition,
        fault,
        campaign_seed,
        config_fingerprint: config_fingerprint(config),
        model_fingerprint: if iv.ml { model_fingerprint } else { 0 },
        interventions: InterventionSummary {
            driver: iv.driver,
            driver_reaction_time: iv.driver_reaction_time,
            safety_check: iv.safety_check,
            aebs: iv.aebs,
            ml: iv.ml,
            mitigation: iv.mitigation.code(),
            views: iv.views,
        },
        friction: config.friction,
        max_steps: config.max_steps as u64,
        quiescence_steps: config.quiescence_steps as u64,
        first_step: 0,
        attack: config.attack,
    }
}

/// Reconstructs the [`PlatformConfig`] a trace ran under from its header
/// projection (defaults + interventions + friction + run-length knobs).
#[must_use]
pub fn reconstruct_config(header: &TraceHeader) -> PlatformConfig {
    PlatformConfig {
        interventions: InterventionConfig {
            driver: header.interventions.driver,
            driver_reaction_time: header.interventions.driver_reaction_time,
            safety_check: header.interventions.safety_check,
            aebs: header.interventions.aebs,
            ml: header.interventions.ml,
            mitigation: MitigationKind::from_code(header.interventions.mitigation)
                .unwrap_or_default(),
            views: header.interventions.views,
        },
        friction: header.friction,
        max_steps: usize::try_from(header.max_steps).unwrap_or(usize::MAX),
        quiescence_steps: usize::try_from(header.quiescence_steps).unwrap_or(usize::MAX),
        attack: header.attack,
        ..PlatformConfig::default()
    }
}

/// Executes the run described by `header` under `config`, capturing a trace.
///
/// This is [`run_single`](crate::experiment::run_single) with a recorder
/// attached: identical RNG derivation, scenario construction, and stepping,
/// so a traced run produces bit-identical physics to an untraced one.
#[must_use]
pub fn run_traced(
    header: TraceHeader,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    mode: RecordMode,
) -> (RunRecord, Trace) {
    let id = RunId {
        scenario: header.scenario,
        position: header.position,
        repetition: header.repetition,
    };
    let mut setup_rng = DeterministicRng::for_run(
        header.campaign_seed,
        id.scenario.index() as u64,
        id.position.index() as u64,
        u64::from(id.repetition),
    );
    let setup = ScenarioSetup::build(id.scenario, id.position, &mut setup_rng);
    let injector = match header.fault {
        Some(ft) => FaultInjector::new(
            FaultSpec::new(ft, setup.patch_start_s).scheduled(config.attack),
        ),
        None => FaultInjector::disabled(),
    };
    let ml = make_mitigator(ml_model, config, &mut setup_rng);
    let mut platform = Platform::new(&setup, *config, injector, ml, &mut setup_rng);
    platform.attach_writer(make_writer(mode, config.max_steps));
    let end = loop {
        let _ = platform.step();
        if let RunEnd2::Yes(end) = platform.finished() {
            break end;
        }
    };
    finish_traced(platform, end, header)
}

/// Builds the capture writer for one traced run. Fused capture: the writer
/// is fed directly from the step loop (one sample construction, one push —
/// no intermediate buffer or second pass). Full mode adopts the worker's
/// recycled buffer; ring mode is already bounded and cache-hot, so it
/// keeps its own small deque and the pooled buffer stays parked in the
/// thread-local.
fn make_writer(mode: RecordMode, max_steps: usize) -> TraceWriter {
    match mode {
        RecordMode::Full => {
            let mut w = TraceWriter::from_buffer(SAMPLE_BUF.with(Cell::take));
            w.reserve(max_steps);
            w
        }
        RecordMode::Ring(_) => TraceWriter::new(mode),
    }
}

/// Detaches the writer from a finished platform and seals the trace.
fn finish_traced(mut platform: Platform, end: RunEnd, header: TraceHeader) -> (RunRecord, Trace) {
    let record = platform.record();
    let writer = platform.take_writer().expect("writer was attached");
    let outcome = TraceOutcome {
        end: match end {
            RunEnd::TimeLimit => EndReason::TimeLimit,
            RunEnd::Accident => EndReason::Accident,
            RunEnd::Quiescent => EndReason::Quiescent,
        },
        accident: record.accident,
        accident_time: record.accident_time,
        fault_start: record.fault_start,
        min_ttc: record.min_ttc,
        min_lane_line_distance: record.min_lane_line_distance,
        steps: record.steps,
    };
    let trace = writer.finish(header, outcome);
    (record, trace)
}

/// Executes a single fully-specified run while capturing its trace.
///
/// `model_fingerprint` is the trained-weights fingerprint (0 when no model
/// is in play); it is recorded in the header so replay can demand the same
/// weights.
#[must_use]
pub fn run_single_traced(
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    model_fingerprint: u64,
    campaign_seed: u64,
    mode: RecordMode,
) -> (RunRecord, Trace) {
    let header = trace_header(id, fault, config, model_fingerprint, campaign_seed);
    run_traced(header, config, ml_model, mode)
}

/// A deliberate, test-only physics perturbation applied during replay to
/// demonstrate divergence localisation: replaying a golden trace under a
/// perturbation must yield a `Diverged` verdict pointing at the first
/// affected step and field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// Scales the road-surface friction coefficient by the given factor —
    /// the canonical "one-line physics change".
    FrictionScale(f64),
}

impl Perturbation {
    /// Applies the perturbation to a reconstructed config.
    pub fn apply(self, config: &mut PlatformConfig) {
        match self {
            Perturbation::FrictionScale(k) => {
                config.friction = FrictionCondition::Custom(config.friction.scale() * k);
            }
        }
    }

    /// Parses the `ADAS_REPLAY_PERTURB` syntax: `friction=<factor>`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let (key, value) = s.trim().split_once('=')?;
        match key.trim() {
            "friction" => value.trim().parse().ok().map(Perturbation::FrictionScale),
            _ => None,
        }
    }
}

/// Why a trace could not be replayed at all (as opposed to replaying and
/// diverging).
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The config reconstructed from the header does not fingerprint to the
    /// recorded value: platform defaults changed since the recording (or
    /// the trace was made by an incompatible build).
    ConfigMismatch {
        /// Fingerprint stored in the trace header.
        recorded: u64,
        /// Fingerprint of the config reconstructed from the header.
        reconstructed: u64,
    },
    /// The trace was recorded with an ML model but none was supplied.
    ModelRequired {
        /// The required trained-weights fingerprint.
        fingerprint: u64,
    },
    /// The supplied ML model's weights differ from the recorded ones.
    ModelMismatch {
        /// Fingerprint stored in the trace header.
        recorded: u64,
        /// Fingerprint of the supplied model.
        provided: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::ConfigMismatch {
                recorded,
                reconstructed,
            } => write!(
                f,
                "config fingerprint mismatch: trace recorded {recorded:016x}, \
                 reconstruction yields {reconstructed:016x} — platform defaults \
                 changed since this trace was captured"
            ),
            ReplayError::ModelRequired { fingerprint } => write!(
                f,
                "trace was recorded with ML model {fingerprint:016x}; supply the \
                 matching trained weights to replay it"
            ),
            ReplayError::ModelMismatch { recorded, provided } => write!(
                f,
                "ML model mismatch: trace recorded weights {recorded:016x}, \
                 supplied weights fingerprint {provided:016x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Result of replaying a trace: the full diff report plus the freshly
/// replayed trace (for `adas-replay diff`-style inspection).
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Header/step/outcome comparison of recorded vs replayed.
    pub report: DiffReport,
    /// The trace produced by the replay execution.
    pub replayed: Trace,
}

/// Re-executes a recorded run from its header and compares step-by-step.
///
/// `ml` supplies the trained model and its fingerprint when the trace was
/// recorded with ML mitigation. `perturbation` deliberately alters the
/// replay physics (divergence demonstration / sensitivity probing); the
/// replayed trace keeps the recorded config fingerprint so the diff
/// isolates the *physics* divergence rather than flagging the header.
///
/// # Errors
///
/// Returns a [`ReplayError`] when the run cannot be faithfully
/// reconstructed (config drift, missing or wrong ML weights).
pub fn replay_trace(
    trace: &Trace,
    ml: Option<(&Arc<LstmPredictor>, u64)>,
    perturbation: Option<Perturbation>,
) -> Result<ReplayReport, ReplayError> {
    let header = &trace.header;
    let config = reconstruct_config(header);
    let reconstructed = config_fingerprint(&config);
    if reconstructed != header.config_fingerprint {
        return Err(ReplayError::ConfigMismatch {
            recorded: header.config_fingerprint,
            reconstructed,
        });
    }
    let model = if header.model_fingerprint != 0 {
        match ml {
            None => {
                return Err(ReplayError::ModelRequired {
                    fingerprint: header.model_fingerprint,
                })
            }
            Some((m, fp)) => {
                if fp != header.model_fingerprint {
                    return Err(ReplayError::ModelMismatch {
                        recorded: header.model_fingerprint,
                        provided: fp,
                    });
                }
                Some(m)
            }
        }
    } else {
        None
    };

    let mut run_config = config;
    if let Some(p) = perturbation {
        p.apply(&mut run_config);
    }
    let mut replay_header = header.clone();
    replay_header.first_step = 0;
    let (_, replayed) = run_traced(replay_header, &run_config, model, RecordMode::Full);
    Ok(ReplayReport {
        report: diff_traces(trace, &replayed),
        replayed,
    })
}

/// Campaign-side trace sink: hands each finished run's trace to the
/// [`TracePolicy`] and persists the noteworthy ones, with atomic counters
/// so the parallel executor can share one sink across workers.
#[derive(Debug)]
pub struct TraceSink {
    policy: TracePolicy,
    recorded: AtomicU64,
    persisted: AtomicU64,
    errors: AtomicU64,
}

impl TraceSink {
    /// A sink enforcing the given policy.
    #[must_use]
    pub fn new(policy: TracePolicy) -> Self {
        Self {
            policy,
            recorded: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// A sink configured from `ADAS_TRACE` / `ADAS_TRACE_DIR` /
    /// `ADAS_TRACE_RING`.
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(TracePolicy::from_env())
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> &TracePolicy {
        &self.policy
    }

    /// True when runs should be recorded at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }

    /// Offers one finished run. Persists the trace (content-addressed under
    /// the policy directory) when the policy says so; returns the path when
    /// a file was written.
    pub fn offer(&self, record: &RunRecord, trace: &Trace) -> Option<PathBuf> {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if !self.policy.should_persist(record) {
            return None;
        }
        match trace.save_in(&self.policy.dir) {
            Ok(path) => {
                self.persisted.fetch_add(1, Ordering::Relaxed);
                Some(path)
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("[trace] cannot persist {}: {e}", trace.identity());
                None
            }
        }
    }

    /// Runs recorded through this sink.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces persisted to disk.
    #[must_use]
    pub fn persisted(&self) -> u64 {
        self.persisted.load(Ordering::Relaxed)
    }

    /// Persistence failures (I/O errors; the campaign itself continues).
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

/// [`run_campaign`](crate::experiment::run_campaign) with a flight
/// recorder attached: when the sink's policy enables tracing, every run is
/// recorded and offered to the sink after it finishes; otherwise this is
/// exactly `run_campaign` (zero overhead).
///
/// Results are identical to `run_campaign` either way — recording observes
/// the loop, it never influences it.
#[must_use]
pub fn run_campaign_traced(
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    model_fingerprint: u64,
    campaign_seed: u64,
    repetitions: u32,
    sink: &TraceSink,
) -> Vec<(RunId, RunRecord)> {
    run_campaign_traced_with_width(
        fault,
        config,
        ml_model,
        model_fingerprint,
        campaign_seed,
        repetitions,
        sink,
        crate::parallel::batch_width(),
    )
}

/// [`run_campaign_traced`] at an explicit lockstep batch width. Recording
/// observes the loop on both paths — each lane owns its writer — so
/// per-run records and traces are bit-identical at any width.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_campaign_traced_with_width(
    fault: Option<FaultType>,
    config: &PlatformConfig,
    ml_model: Option<&Arc<LstmPredictor>>,
    model_fingerprint: u64,
    campaign_seed: u64,
    repetitions: u32,
    sink: &TraceSink,
    width: usize,
) -> Vec<(RunId, RunRecord)> {
    if !sink.enabled() {
        return crate::experiment::run_campaign_with_width(
            fault,
            config,
            ml_model,
            campaign_seed,
            repetitions,
            width,
        );
    }
    let mode = sink.policy().record_mode;
    let ids = campaign_run_ids(repetitions);
    let offer = |record: &RunRecord, trace: Trace| {
        sink.offer(record, &trace);
        // The trace is done with its samples either way (persisted bytes
        // are already on disk); recycle the bulk allocation for this
        // worker's next run.
        recycle_sample_buffer(trace.samples);
    };
    let records = if width <= 1 {
        crate::parallel::map(&ids, |_, id| {
            let (record, trace) = run_single_traced(
                *id,
                fault,
                config,
                ml_model,
                model_fingerprint,
                campaign_seed,
                mode,
            );
            offer(&record, trace);
            record
        })
    } else {
        let model = ml_model.filter(|_| config.interventions.ml);
        // Full-mode note: the thread-local pool holds one buffer per
        // worker, so one lane per batch adopts it and the other in-flight
        // lanes allocate fresh; recycling keeps the largest buffer, so
        // steady state still avoids regrowing the hottest allocation.
        crate::batch::run_lockstep_ctl(
            &ids,
            width,
            model,
            |_, id| {
                let mut platform = crate::experiment::build_platform(
                    *id,
                    fault,
                    config,
                    model,
                    campaign_seed,
                );
                platform.attach_writer(make_writer(mode, config.max_steps));
                platform
            },
            |_, id, end, platform| {
                let header = trace_header(*id, fault, config, model_fingerprint, campaign_seed);
                let (record, trace) = finish_traced(platform, end, header);
                offer(&record, trace);
                record
            },
            &crate::parallel::MapControl::new(),
        )
        .expect("uncancelled campaign completed")
    };
    ids.into_iter().zip(records).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_campaign, run_single};
    use adas_recorder::{TraceMode, Verdict};
    use adas_scenarios::{InitialPosition, ScenarioId};

    fn short_config() -> PlatformConfig {
        PlatformConfig {
            max_steps: 400,
            ..PlatformConfig::default()
        }
    }

    fn id() -> RunId {
        RunId {
            scenario: ScenarioId::S1,
            position: InitialPosition::Near,
            repetition: 0,
        }
    }

    #[test]
    fn traced_run_matches_untraced_record() {
        let cfg = short_config();
        let plain = run_single(id(), Some(FaultType::RelativeDistance), &cfg, None, 7);
        let (traced, trace) =
            run_single_traced(id(), Some(FaultType::RelativeDistance), &cfg, None, 0, 7, RecordMode::Full);
        // Bit-identical records: recording must not influence the run.
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
        assert_eq!(trace.samples.len() as u64, traced.steps);
    }

    #[test]
    fn replay_of_recorded_run_is_identical() {
        let cfg = short_config();
        let (_, trace) =
            run_single_traced(id(), Some(FaultType::RelativeDistance), &cfg, None, 0, 7, RecordMode::Full);
        // The recorded config is non-default (max_steps), so reconstruction
        // must still fingerprint identically.
        let report = replay_trace(&trace, None, None).expect("replayable");
        assert!(report.report.is_identical(), "{:?}", report.report.verdict);
    }

    #[test]
    fn perturbed_replay_localises_divergence() {
        let cfg = short_config();
        let (_, trace) = run_single_traced(id(), None, &cfg, None, 0, 7, RecordMode::Full);
        // 0.1 puts the traction cap (mu·g) below the engine limit, so any
        // gas application realises differently — gentler scales can leave a
        // benign cruise legitimately untouched.
        let report = replay_trace(&trace, None, Some(Perturbation::FrictionScale(0.1)))
            .expect("replayable");
        let Verdict::Diverged(d) = &report.report.verdict else {
            panic!("decimated friction must diverge");
        };
        // Friction affects realised dynamics, not the clock.
        assert_ne!(d.field, "time");
    }

    #[test]
    fn config_drift_is_a_loud_error() {
        let cfg = short_config();
        let (_, mut trace) = run_single_traced(id(), None, &cfg, None, 0, 7, RecordMode::Full);
        trace.header.config_fingerprint ^= 1;
        let err = replay_trace(&trace, None, None).expect_err("must refuse");
        assert!(matches!(err, ReplayError::ConfigMismatch { .. }));
    }

    #[test]
    fn replay_without_required_model_is_an_error() {
        let cfg = short_config();
        let (_, mut trace) = run_single_traced(id(), None, &cfg, None, 0, 7, RecordMode::Full);
        trace.header.model_fingerprint = 0xDEAD;
        let err = replay_trace(&trace, None, None).expect_err("must refuse");
        assert!(matches!(err, ReplayError::ModelRequired { .. }));
    }

    #[test]
    fn perturbation_parsing() {
        assert_eq!(
            Perturbation::parse("friction=0.75"),
            Some(Perturbation::FrictionScale(0.75))
        );
        assert_eq!(Perturbation::parse("gravity=2"), None);
        assert_eq!(Perturbation::parse("friction"), None);
    }

    #[test]
    fn sink_persists_only_noteworthy_runs_under_hazard_policy() {
        let dir = std::env::temp_dir().join(format!("adas-trace-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = TracePolicy {
            mode: TraceMode::Hazard,
            dir: dir.clone(),
            record_mode: RecordMode::Full,
        };
        let sink = TraceSink::new(policy);
        let cfg = PlatformConfig {
            max_steps: 2000,
            ..PlatformConfig::default()
        };
        // An unprotected RD attack crashes (noteworthy); a benign run is not.
        let (crash_rec, crash_trace) =
            run_single_traced(id(), Some(FaultType::RelativeDistance), &cfg, None, 0, 7, RecordMode::Full);
        let (benign_rec, benign_trace) =
            run_single_traced(id(), None, &short_config(), None, 0, 7, RecordMode::Full);
        let crash_path = sink.offer(&crash_rec, &crash_trace);
        let benign_path = sink.offer(&benign_rec, &benign_trace);
        assert!(crash_path.is_some(), "accident run must persist");
        assert!(benign_path.is_none(), "benign run must not persist");
        assert_eq!((sink.recorded(), sink.persisted()), (2, 1));
        // Round-trip the persisted file.
        let loaded = Trace::load(&crash_path.expect("persisted")).expect("loadable");
        assert_eq!(format!("{loaded:?}"), format!("{crash_trace:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_traced_campaign_matches_scalar_traced() {
        let cfg = PlatformConfig {
            max_steps: 300,
            ..PlatformConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("adas-trace-batched-{}", std::process::id()));
        let policy = |d: &std::path::Path| TracePolicy {
            mode: TraceMode::All,
            dir: d.to_path_buf(),
            record_mode: RecordMode::Full,
        };
        let _ = std::fs::remove_dir_all(&dir);
        let scalar_sink = TraceSink::new(policy(&dir.join("scalar")));
        let scalar = run_campaign_traced_with_width(
            Some(FaultType::RelativeDistance),
            &cfg,
            None,
            0,
            9,
            1,
            &scalar_sink,
            1,
        );
        let batched_sink = TraceSink::new(policy(&dir.join("batched")));
        let batched = run_campaign_traced_with_width(
            Some(FaultType::RelativeDistance),
            &cfg,
            None,
            0,
            9,
            1,
            &batched_sink,
            5,
        );
        assert_eq!(format!("{scalar:?}"), format!("{batched:?}"));
        assert_eq!(scalar_sink.recorded(), batched_sink.recorded());
        assert_eq!(scalar_sink.persisted(), batched_sink.persisted());
        // Persisted traces are content-addressed, so bit-identical captures
        // produce identical file sets.
        let names = |d: &std::path::Path| {
            let mut v: Vec<String> = std::fs::read_dir(d)
                .map(|rd| {
                    rd.filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
                        .collect()
                })
                .unwrap_or_default();
            v.sort();
            v
        };
        assert_eq!(names(&dir.join("scalar")), names(&dir.join("batched")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_traced_matches_plain_campaign() {
        let cfg = PlatformConfig {
            max_steps: 300,
            ..PlatformConfig::default()
        };
        let plain = run_campaign(None, &cfg, None, 9, 1);
        let sink = TraceSink::new(TracePolicy {
            mode: TraceMode::Hazard,
            dir: std::env::temp_dir().join("adas-trace-none"),
            record_mode: RecordMode::Full,
        });
        let traced = run_campaign_traced(None, &cfg, None, 0, 9, 1, &sink);
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
        assert_eq!(sink.recorded(), 12);
        // The hazard policy persists exactly the noteworthy subset (some
        // benign cut-in scenarios do dip under the near-miss TTC).
        let noteworthy = plain
            .iter()
            .filter(|(_, r)| adas_recorder::policy::is_noteworthy(r))
            .count() as u64;
        assert_eq!(sink.persisted(), noteworthy);
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("adas-trace-none"));
    }
}
