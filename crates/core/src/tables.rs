//! Plain-text table formatting for the experiment harness binaries.

/// A simple fixed-width text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table with column alignment and a separator line.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats an optional seconds value as `x.xx` or `-`.
#[must_use]
pub fn fmt_opt_time(v: Option<f64>) -> String {
    match v {
        Some(t) => format!("{t:.2}"),
        None => "-".to_owned(),
    }
}

/// Formats a percentage as `xx.xx%`.
#[must_use]
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Scenario", "Accidents"]);
        t.row(["S1", "0/20"]);
        t.row(["S4-long-label", "10/20"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Scenario"));
        // All rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_opt_time(None), "-");
        assert_eq!(fmt_opt_time(Some(3.195)), "3.19");
        assert_eq!(fmt_pct(82.5), "82.50%");
    }
}
