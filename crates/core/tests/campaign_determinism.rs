//! Determinism guarantees of the parallel campaign executor and the
//! artifact cache: results must be bit-for-bit identical at any thread
//! count, and a cache hit must reproduce the cold computation exactly.

use adas_attack::FaultType;
use adas_core::{
    campaign_cell_fingerprint, cell_stats_cached, run_campaign, ArtifactCache, CellStats,
    InterventionConfig, PlatformConfig,
};
use std::sync::Mutex;

/// Serialises tests that mutate `ADAS_THREADS` (integration tests in this
/// binary run on parallel threads, and the variable is process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

const SEED: u64 = 0x5EED;

fn campaign_with_threads(threads: &str, cfg: &PlatformConfig) -> Vec<u8> {
    std::env::set_var("ADAS_THREADS", threads);
    let records = run_campaign(Some(FaultType::RelativeDistance), cfg, None, SEED, 1);
    std::env::remove_var("ADAS_THREADS");
    // Serialise through Debug so any drift in any field is caught, not
    // just the aggregated statistics.
    format!("{records:?}").into_bytes()
}

#[test]
fn run_campaign_is_thread_count_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();
    let cfg = PlatformConfig::with_interventions(InterventionConfig::driver_only());
    let serial = campaign_with_threads("1", &cfg);
    let four = campaign_with_threads("4", &cfg);
    let many = campaign_with_threads("13", &cfg);
    assert_eq!(serial, four, "4 threads must match serial bit-for-bit");
    assert_eq!(serial, many, "13 threads must match serial bit-for-bit");
}

#[test]
fn cache_hit_reproduces_cold_cell_stats_exactly() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!(
        "adas-cache-test-{}-determinism",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::at(&dir);

    let cfg = PlatformConfig::with_interventions(InterventionConfig::driver_only());
    let key = campaign_cell_fingerprint(Some(FaultType::DesiredCurvature), &cfg, None, SEED, 1);

    let cold = cell_stats_cached(&cache, key, || {
        let records = run_campaign(Some(FaultType::DesiredCurvature), &cfg, None, SEED, 1);
        CellStats::from_records(records.iter().map(|(_, r)| r))
    });
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.writes),
        (0, 1, 1),
        "cold lookup must miss and persist"
    );

    let warm = cell_stats_cached(&cache, key, || {
        panic!("warm lookup must be served from the cache, not recomputed")
    });
    assert_eq!(cache.stats().hits, 1, "second lookup must hit");
    assert_eq!(
        cold.to_bytes(),
        warm.to_bytes(),
        "cached CellStats must be bit-identical to the cold computation"
    );

    // A different key (here: different repetition count) must not collide.
    let other = campaign_cell_fingerprint(Some(FaultType::DesiredCurvature), &cfg, None, SEED, 2);
    assert_ne!(key.value(), other.value());

    let _ = std::fs::remove_dir_all(&dir);
}
