//! Property tests of the `CellStats` cache codec: round-trip fidelity,
//! bit-flip rejection, and no-panic behaviour on arbitrary input.
//!
//! The codec guards the artifact cache — a corrupted or truncated entry
//! must decode to `None` (a cache miss, recompute) and never to a
//! `CellStats` with silently wrong numbers.

use adas_core::CellStats;
use proptest::prelude::*;

fn stats(
    runs: usize,
    pcts: &[f64; 4],
    times: &[Option<f64>; 3],
    rates: &[f64; 4],
) -> CellStats {
    CellStats {
        runs,
        a1_pct: pcts[0],
        a2_pct: pcts[1],
        prevented_pct: pcts[2],
        hazard_pct: pcts[3],
        aeb_mitigation_time: times[0],
        driver_brake_mitigation_time: times[1],
        driver_steer_mitigation_time: times[2],
        aeb_trigger_rate: rates[0],
        driver_brake_trigger_rate: rates[1],
        driver_steer_trigger_rate: rates[2],
        ml_trigger_rate: rates[3],
    }
}

proptest! {
    #[test]
    fn round_trip_is_exact(
        runs in 0usize..100_000,
        a1 in 0.0f64..100.0,
        a2 in 0.0f64..100.0,
        hazard in 0.0f64..100.0,
        t_aeb in prop::option::of(0.0f64..60.0),
        t_brake in prop::option::of(0.0f64..60.0),
        t_steer in prop::option::of(0.0f64..60.0),
        r1 in 0.0f64..100.0,
        r2 in 0.0f64..100.0,
        r3 in 0.0f64..100.0,
        r4 in 0.0f64..100.0,
    ) {
        let original = stats(
            runs,
            &[a1, a2, 100.0 - a1 - a2, hazard],
            &[t_aeb, t_brake, t_steer],
            &[r1, r2, r3, r4],
        );
        let bytes = original.to_bytes();
        let decoded = CellStats::from_bytes(&bytes);
        prop_assert_eq!(decoded, Some(original));
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        a1 in 0.0f64..100.0,
        t_aeb in prop::option::of(0.0f64..60.0),
        byte_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let original = stats(
            120,
            &[a1, 0.0, 100.0 - a1, a1],
            &[t_aeb, None, Some(3.25)],
            &[50.0, 25.0, 12.5, 0.0],
        );
        let mut bytes = original.to_bytes();
        let idx = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        // A flip anywhere — magic, payload, or the checksum itself — must
        // be detected; silently wrong statistics are the failure mode this
        // codec exists to prevent.
        prop_assert_eq!(CellStats::from_bytes(&bytes), None);
    }

    #[test]
    fn truncation_and_extension_are_rejected(
        cut in 1usize..64,
        extra in prop::collection::vec(0u64..256, 1..16),
    ) {
        let original = stats(
            12,
            &[25.0, 25.0, 50.0, 75.0],
            &[Some(1.5), None, None],
            &[100.0, 0.0, 0.0, 8.3],
        );
        let bytes = original.to_bytes();
        let truncated = &bytes[..bytes.len() - cut.min(bytes.len())];
        prop_assert_eq!(CellStats::from_bytes(truncated), None);
        let mut extended = bytes.clone();
        extended.extend(extra.iter().map(|&b| b as u8));
        prop_assert_eq!(CellStats::from_bytes(&extended), None);
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        junk in prop::collection::vec(0u64..256, 0..200),
    ) {
        let bytes: Vec<u8> = junk.iter().map(|&b| b as u8).collect();
        // Random input essentially never carries a valid checksum; the
        // contract under test is "None or valid, never a panic".
        let _ = CellStats::from_bytes(&bytes);
    }
}

#[test]
fn v1_entries_without_checksum_miss() {
    // A version-1 entry (old magic, no trailing checksum) must read as a
    // cache miss so stale artifacts are recomputed, not misparsed.
    let current = stats(
        10,
        &[10.0, 0.0, 90.0, 10.0],
        &[None, None, None],
        &[0.0, 0.0, 0.0, 0.0],
    )
    .to_bytes();
    let mut v1 = b"ADASCELL\x01".to_vec();
    v1.extend_from_slice(&current[9..current.len() - 8]);
    assert_eq!(CellStats::from_bytes(&v1), None);
}
