//! Golden-trace regression: the committed flight-recorder traces under
//! `results/traces/golden/` must replay bit-identically on every commit.
//!
//! This guards two invariants at once:
//!
//! - **Determinism** — the simulation stack reproduces the exact step
//!   stream recorded when the goldens were captured, across build profiles
//!   and thread counts.
//! - **Config stability** — replay reconstructs the platform configuration
//!   from the trace header and refuses (with a loud
//!   [`ReplayError::ConfigMismatch`]) if defaults drifted since recording.
//!   An intentional physics/config change therefore shows up here and the
//!   goldens must be regenerated with `adas-replay record --golden`.

use adas_core::{replay_trace, ReplayError};
use adas_recorder::Trace;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/traces/golden")
}

fn golden_traces() -> Vec<(PathBuf, Trace)> {
    let dir = golden_dir();
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("golden trace dir {} missing: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "bin") {
            let trace = Trace::load(&path)
                .unwrap_or_else(|e| panic!("{} failed to load: {e}", path.display()));
            out.push((path, trace));
        }
    }
    out.sort_by(|(a, _), (b, _)| a.cmp(b));
    out
}

#[test]
fn golden_set_is_complete() {
    let traces = golden_traces();
    assert!(
        traces.len() >= 3,
        "expected at least 3 golden traces, found {}",
        traces.len()
    );
    // The set must cover a benign run, an unmitigated accident, and a
    // prevented run — regenerations that drop a case should fail loudly.
    assert!(traces.iter().any(|(_, t)| t.header.fault.is_none()));
    assert!(traces.iter().any(|(_, t)| t.outcome.accident.is_some()));
    assert!(traces
        .iter()
        .any(|(_, t)| t.header.fault.is_some() && t.outcome.accident.is_none()));
}

#[test]
fn golden_traces_replay_identically() {
    for (path, trace) in golden_traces() {
        assert_eq!(
            trace.header.model_fingerprint, 0,
            "{}: golden traces must not need a trained model",
            path.display()
        );
        let result = replay_trace(&trace, None, None).unwrap_or_else(|e| {
            let hint = match &e {
                ReplayError::ConfigMismatch { .. } => {
                    " (config defaults drifted — regenerate with `adas-replay record --golden` \
                     if the change is intentional)"
                }
                _ => "",
            };
            panic!("{}: replay refused: {e}{hint}", path.display())
        });
        assert!(
            result.report.is_identical(),
            "{}: golden trace diverged{}\nheader mismatches: {:?}\nverdict: {}\noutcome: {:?}",
            path.display(),
            " — the simulation is no longer deterministic w.r.t. the recorded run",
            result.report.header_mismatches,
            result.report.verdict,
            result.report.outcome_mismatch,
        );
    }
}
