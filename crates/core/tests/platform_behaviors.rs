//! Platform-level behaviours: data-flow correctness between the subsystems
//! that the unit tests cannot see in isolation.

use adas_attack::{FaultInjector, FaultSpec, FaultType};
use adas_core::{InterventionConfig, Platform, PlatformConfig, RunEnd2};
use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::{DeterministicRng, TraceRecorder};

fn build_scenario(
    scenario: ScenarioId,
    iv: InterventionConfig,
    fault: Option<FaultType>,
    rep: u64,
) -> (Platform, adas_scenarios::ScenarioSetup) {
    let mut rng = DeterministicRng::for_run(31, scenario.index() as u64, 0, rep);
    let setup = ScenarioSetup::build(scenario, InitialPosition::Near, &mut rng);
    let injector = match fault {
        Some(ft) => FaultInjector::new(FaultSpec::new(ft, setup.patch_start_s)),
        None => FaultInjector::disabled(),
    };
    let platform = Platform::new(
        &setup,
        PlatformConfig::with_interventions(iv),
        injector,
        None,
        &mut rng,
    );
    (platform, setup)
}

fn build(
    iv: InterventionConfig,
    fault: Option<FaultType>,
    rep: u64,
) -> (Platform, adas_scenarios::ScenarioSetup) {
    build_scenario(ScenarioId::S1, iv, fault, rep)
}

#[test]
fn safety_check_clamps_executed_braking() {
    // With the PANDA clamp active and no other interventions, the executed
    // brake fraction from the ADAS never exceeds 3.5/9.8.
    let (mut p, _) = build(
        InterventionConfig {
            safety_check: true,
            ..InterventionConfig::none()
        },
        None,
        0,
    );
    p.attach_trace(TraceRecorder::new());
    loop {
        let _ = p.step();
        if let RunEnd2::Yes(_) = p.finished() {
            break;
        }
    }
    let trace = p.take_trace().unwrap();
    let max_brake = trace.samples().iter().map(|s| s.brake).fold(0.0, f64::max);
    assert!(
        max_brake <= 3.5 / 9.8 + 1e-6,
        "clamped ADAS brake exceeded: {max_brake}"
    );
}

#[test]
fn without_safety_check_braking_can_exceed_the_clamp() {
    // S4 (sudden lead stop) forces the unclamped planner into hard braking.
    let (mut p, _) = build_scenario(ScenarioId::S4, InterventionConfig::none(), None, 0);
    p.attach_trace(TraceRecorder::new());
    loop {
        let _ = p.step();
        if let RunEnd2::Yes(_) = p.finished() {
            break;
        }
    }
    let trace = p.take_trace().unwrap();
    let max_brake = trace.samples().iter().map(|s| s.brake).fold(0.0, f64::max);
    assert!(max_brake > 3.5 / 9.8, "expected hard braking: {max_brake}");
}

#[test]
fn fcw_alerts_precede_aeb_braking() {
    let (mut p, _) = build(
        InterventionConfig::aeb_independent_only(),
        Some(FaultType::RelativeDistance),
        0,
    );
    p.attach_trace(TraceRecorder::new());
    loop {
        let _ = p.step();
        if let RunEnd2::Yes(_) = p.finished() {
            break;
        }
    }
    let trace = p.take_trace().unwrap();
    let first_fcw = trace.samples().iter().find(|s| s.fcw_alert).map(|s| s.time);
    let first_aeb = trace.samples().iter().find(|s| s.aeb_active).map(|s| s.time);
    let (fcw, aeb) = (first_fcw.expect("FCW fired"), first_aeb.expect("AEB fired"));
    assert!(fcw <= aeb, "FCW at {fcw} must precede AEB at {aeb}");
}

#[test]
fn aeb_brake_overrides_driver_in_trace() {
    // When both the driver and AEB want to brake, the trace's aeb flag and
    // full-strength brake confirm the arbitration order end-to-end.
    let (mut p, _) = build(
        InterventionConfig::driver_check_aeb_independent(),
        Some(FaultType::RelativeDistance),
        0,
    );
    p.attach_trace(TraceRecorder::new());
    loop {
        let _ = p.step();
        if let RunEnd2::Yes(_) = p.finished() {
            break;
        }
    }
    let trace = p.take_trace().unwrap();
    let overlap: Vec<_> = trace
        .samples()
        .iter()
        .filter(|s| s.aeb_active && s.driver_braking)
        .collect();
    assert!(!overlap.is_empty(), "expected an AEB/driver overlap phase");
    for s in overlap {
        assert!(s.brake >= 0.9 - 1e-9, "AEB level must win: {}", s.brake);
    }
}

#[test]
fn fault_activity_is_recorded_in_the_trace() {
    let (mut p, setup) = build(InterventionConfig::none(), Some(FaultType::DesiredCurvature), 0);
    p.attach_trace(TraceRecorder::new());
    loop {
        let _ = p.step();
        if let RunEnd2::Yes(_) = p.finished() {
            break;
        }
    }
    let trace = p.take_trace().unwrap();
    let first_fault = trace
        .samples()
        .iter()
        .find(|s| s.fault_active)
        .expect("fault fired");
    // The fault fires once the ego reaches the patch.
    assert!(
        first_fault.ego_s >= setup.patch_start_s - 1.0,
        "fault at s={} before patch at {}",
        first_fault.ego_s,
        setup.patch_start_s
    );
}

#[test]
fn quiescence_ends_runs_after_a_full_stop() {
    // S4: the lead stops for good; with AEB the ego stops behind it and
    // stays there, so the quiescence cutoff must end the run early.
    let (mut p, _) = build_scenario(
        ScenarioId::S4,
        InterventionConfig::aeb_independent_only(),
        None,
        0,
    );
    let mut steps = 0usize;
    let end = loop {
        let _ = p.step();
        steps += 1;
        if let RunEnd2::Yes(end) = p.finished() {
            break end;
        }
    };
    assert!(
        p.record().prevented(),
        "S4 with AEB must not crash: {:?}",
        p.record()
    );
    assert!(steps < 9_000, "run did not end early ({steps} steps, {end:?})");
}
