//! The `adas-serve bench` load generator: saturation curve for the
//! sharded serving fabric.
//!
//! For every `(workers, clients)` point in a powers-of-two sweep, the
//! bench spins up that many **in-process** worker daemons on ephemeral
//! ports (disk cache disabled — memo tier only), fronts them with a
//! coordinator, runs one warm-up campaign (so the measured phase
//! exercises routing + merge + memo hits, not cold simulation), then
//! hammers the coordinator with K concurrent TCP clients. Each client
//! submits through a FIFO fairness gate ([`adas_parallel::FairGate`]) and
//! retries admission rejections on the deterministic backoff schedule
//! ([`adas_serve::backoff`]), so the curve reports steady-state
//! throughput (cells/sec) and latency (p50/p99) rather than a rejection
//! storm.

use crate::coordinator::{Coordinator, FabricConfig};
use crate::front::CoordinatorServer;
use adas_core::{ArtifactCache, CampaignSpec};
use adas_parallel::FairGate;
use adas_serve::metrics::Histogram;
use adas_serve::{Client, Server, ServerConfig, Submission};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Largest client count in the sweep (the `--clients` flag).
    pub max_clients: usize,
    /// Largest worker count in the sweep (the `--workers` flag).
    pub max_workers: usize,
    /// Campaigns each client submits per point.
    pub campaigns_per_client: usize,
    /// Coordinator admission limit (and client-side gate capacity).
    pub admit: usize,
    /// The campaign grid every submission evaluates.
    pub spec: CampaignSpec,
}

/// One measured point on the saturation curve.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Worker daemons serving the fleet.
    pub workers: usize,
    /// Concurrent submitting clients.
    pub clients: usize,
    /// Campaigns completed in the measured phase.
    pub campaigns: u64,
    /// Cells merged in the measured phase.
    pub cells: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed_ms: u64,
    /// Merged-cell throughput.
    pub cells_per_sec: f64,
    /// Median campaign latency (submission → `JobDone`).
    pub p50_ms: u64,
    /// Tail campaign latency.
    pub p99_ms: u64,
    /// Admission rejections absorbed by client backoff.
    pub retries: u64,
}

/// Powers of two up to and including `max` (always ends with `max`).
fn sweep(max: usize) -> Vec<usize> {
    let mut points = Vec::new();
    let mut p = 1usize;
    while p < max {
        points.push(p);
        p *= 2;
    }
    points.push(max.max(1));
    points.dedup();
    points
}

/// One in-process worker daemon: bound server + its run thread.
struct BenchWorker {
    addr: String,
    thread: std::thread::JoinHandle<()>,
}

fn spawn_workers(n: usize, queue: usize) -> std::io::Result<Vec<BenchWorker>> {
    (0..n)
        .map(|_| {
            let server = Server::bind(ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                queue_capacity: queue,
                cache: ArtifactCache::disabled(),
                trace_dir: std::env::temp_dir(),
                model_spec: adas_core::ModelSpec::default(),
            })?;
            let addr = server.local_addr()?.to_string();
            let thread = std::thread::spawn(move || {
                let _ = server.run();
            });
            Ok(BenchWorker { addr, thread })
        })
        .collect()
}

fn stop_workers(workers: Vec<BenchWorker>) {
    for w in &workers {
        if let Ok(mut c) = Client::connect(&w.addr) {
            let _ = c.shutdown();
        }
    }
    for w in workers {
        let _ = w.thread.join();
    }
}

/// Runs one `(workers, clients)` point end to end.
///
/// # Errors
///
/// Propagates worker/coordinator spawn failures; client-side transport
/// errors abort that client's remaining campaigns but not the point.
pub fn run_point(
    workers: usize,
    clients: usize,
    config: &BenchConfig,
) -> Result<BenchPoint, String> {
    let fleet = spawn_workers(workers, config.admit.max(2) * 2)
        .map_err(|e| format!("spawn workers: {e}"))?;
    let fabric = FabricConfig {
        workers: fleet.iter().map(|w| w.addr.clone()).collect(),
        heartbeat: Duration::from_millis(500),
        deadline: Duration::from_secs(60),
        vnodes: 64,
        admit: config.admit,
        epoch: 1,
    };
    let coordinator = Coordinator::connect(&fabric).map_err(|e| e.to_string())?;
    let fleet_handle = Arc::clone(&coordinator.fleet);
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator, config.admit)
        .map_err(|e| format!("bind coordinator: {e}"))?;
    let front_addr = front.local_addr().map_err(|e| e.to_string())?.to_string();
    let front_thread = std::thread::spawn(move || {
        let _ = front.run();
    });

    // Warm-up: one campaign fills every worker's memo tier along the
    // routing assignment, so the measured phase is steady-state.
    {
        let mut client = Client::connect(&front_addr).map_err(|e| e.to_string())?;
        client
            .run_campaign(&config.spec, |_, _| {})
            .map_err(|e| e.to_string())?
            .map_err(|r| format!("warm-up rejected: {r:?}"))?;
    }

    let gate = Arc::new(FairGate::new(config.admit));
    let latencies = Arc::new(Histogram::default());
    let campaigns = Arc::new(AtomicU64::new(0));
    let cells = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_id in 0..clients {
            let front_addr = &front_addr;
            let gate = Arc::clone(&gate);
            let latencies = Arc::clone(&latencies);
            let campaigns = Arc::clone(&campaigns);
            let cells = Arc::clone(&cells);
            let retries = Arc::clone(&retries);
            let spec = &config.spec;
            let rounds = config.campaigns_per_client;
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(front_addr) else {
                    return;
                };
                for round in 0..rounds {
                    let _turn = gate.enter();
                    let t0 = Instant::now();
                    let seed = (client_id as u64) << 32 | round as u64;
                    let mut attempt = 0u32;
                    let accepted = loop {
                        match client.submit(spec) {
                            Ok(Submission::Accepted { .. }) => break true,
                            Ok(Submission::Rejected { retry_after_ms, .. }) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                if retry_after_ms == 0 || attempt >= 16 {
                                    break false;
                                }
                                std::thread::sleep(Duration::from_millis(
                                    adas_serve::backoff::delay_ms(retry_after_ms, attempt, seed),
                                ));
                                attempt += 1;
                            }
                            Err(_) => break false,
                        }
                    };
                    if !accepted {
                        return;
                    }
                    let Ok((streamed, state)) = client.stream_results(|_, _| {}) else {
                        return;
                    };
                    if state != adas_serve::JobState::Done {
                        return;
                    }
                    latencies.record(t0.elapsed());
                    campaigns.fetch_add(1, Ordering::Relaxed);
                    cells.fetch_add(streamed.len() as u64, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed();

    // Tear down: front first (stops accepting), then the fleet.
    if let Ok(mut c) = Client::connect(&front_addr) {
        let _ = c.shutdown();
    }
    let _ = front_thread.join();
    fleet_handle.stop();
    stop_workers(fleet);

    let cells = cells.load(Ordering::Relaxed);
    let elapsed_ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
    Ok(BenchPoint {
        workers,
        clients,
        campaigns: campaigns.load(Ordering::Relaxed),
        cells,
        elapsed_ms,
        cells_per_sec: if elapsed.as_secs_f64() > 0.0 {
            cells as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_ms: latencies.quantile_ms(0.50),
        p99_ms: latencies.quantile_ms(0.99),
        retries: retries.load(Ordering::Relaxed),
    })
}

/// Runs the full sweep, logging each point to stderr.
///
/// # Errors
///
/// Propagates the first point that fails to set up.
pub fn run(config: &BenchConfig) -> Result<Vec<BenchPoint>, String> {
    let mut points = Vec::new();
    for &workers in &sweep(config.max_workers) {
        for &clients in &sweep(config.max_clients) {
            let point = run_point(workers, clients, config)?;
            eprintln!(
                "[bench] workers={:>2} clients={:>2} → {:>8.1} cells/s  p50={}ms p99={}ms  \
                 ({} campaigns, {} retries)",
                point.workers,
                point.clients,
                point.cells_per_sec,
                point.p50_ms,
                point.p99_ms,
                point.campaigns,
                point.retries,
            );
            points.push(point);
        }
    }
    Ok(points)
}

/// Serialises the curve as the `results/SERVE_bench.json` document.
#[must_use]
pub fn to_json(config: &BenchConfig, points: &[BenchPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"workers\": {}, \"clients\": {}, \"campaigns\": {}, \"cells\": {}, \
                 \"elapsed_ms\": {}, \"cells_per_sec\": {:.1}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"retries\": {} }}",
                p.workers,
                p.clients,
                p.campaigns,
                p.cells,
                p.elapsed_ms,
                p.cells_per_sec,
                p.p50_ms,
                p.p99_ms,
                p.retries,
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"fabric saturation\",\n  \"grid\": {{ \"cells\": {}, \"reps\": {}, \
         \"max_steps\": {} }},\n  \"admit\": {},\n  \"campaigns_per_client\": {},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        config.spec.cells.len(),
        config.spec.repetitions,
        config.spec.max_steps,
        config.admit,
        config.campaigns_per_client,
        rows.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::sweep;

    #[test]
    fn sweep_is_powers_of_two_ending_at_max() {
        assert_eq!(sweep(1), vec![1]);
        assert_eq!(sweep(2), vec![1, 2]);
        assert_eq!(sweep(4), vec![1, 2, 4]);
        assert_eq!(sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(sweep(8), vec![1, 2, 4, 8]);
    }
}
