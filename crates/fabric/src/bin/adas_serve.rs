//! `adas-serve` — campaign evaluation daemon, fabric coordinator, and
//! client in one binary.
//!
//! ```text
//! adas-serve serve   [--addr HOST:PORT] [--queue N]      (alias: worker)
//! adas-serve coordinator [--addr HOST:PORT] [--workers A,B,...] [--admit N]
//! adas-serve bench   --clients K --workers N [--campaigns M] [--admit N]
//!                    [campaign flags]
//! adas-serve client submit   [--addr A] [campaign flags]
//! adas-serve client fuzz     [--addr A] [fuzz flags]
//! adas-serve client bench    [--addr A] [campaign flags]
//! adas-serve client status   JOB [--addr A]
//! adas-serve client watch    JOB [--addr A]
//! adas-serve client cancel   JOB [--addr A]
//! adas-serve client metrics  [--addr A]
//! adas-serve client replay   HEX [--addr A]
//! adas-serve client shutdown [--addr A]
//! ```
//!
//! Campaign flags (submit/bench): `--seed N` (default 2025), `--reps N`
//! (default 10), `--max-steps N` (0 = full runs), `--scenarios S1,S4|all`,
//! `--faults none,rd,dc,mixed|all`, `--rows none,driver-check,…|all`,
//! `--attack immediate|ttc<S,lane>M,curv>K,arm>S` (default `ADAS_ATTACK`
//! or immediate).
//!
//! Defaults come from `ADAS_SERVE_ADDR` / `ADAS_SERVE_QUEUE` and the
//! `ADAS_FABRIC_*` family where a flag is not given. Exit codes: 0
//! success, 1 rejected/diverged/failed, 2 usage or transport error.

use adas_core::job::CellSpec;
use adas_core::{CampaignSpec, InterventionConfig, SCENARIO_MASK_ALL};
use adas_fabric::bench::BenchConfig;
use adas_fabric::{Coordinator, CoordinatorServer, FabricConfig};
use adas_scenarios::ScenarioId;
use adas_serve::{Client, JobState, ReplayOutcome, Server, ServerConfig, Submission};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "adas-serve — long-lived campaign evaluation service

USAGE:
  adas-serve serve [--addr HOST:PORT] [--queue N]        (alias: worker)
      Run a daemon (defaults: ADAS_SERVE_ADDR or 127.0.0.1:4747,
      ADAS_SERVE_QUEUE or 8). SIGTERM/ctrl-c drains in-flight jobs.
      A daemon doubles as a fabric worker: coordinators register via
      the v2 RegisterWorker/AssignCells frames.

  adas-serve coordinator [--addr HOST:PORT] [--workers A,B,...] [--admit N]
      Shard submitted campaigns across a worker fleet (consistent-hash
      routing, heartbeat health tracking, re-dispatch from dead workers,
      deterministic grid-order merge). Workers default to
      ADAS_FABRIC_WORKERS; all `client` verbs work against it.

  adas-serve bench --clients K --workers N [--campaigns M] [--admit N]
                   [campaign flags]
      Saturation sweep: spin up in-process worker fleets and measure
      cells/sec + p50/p99 latency for powers-of-two client × worker
      counts. Writes results/SERVE_bench.json.

  adas-serve client submit [--addr A] [--seed N] [--reps N]
                           [--max-steps N] [--scenarios LIST|all]
                           [--faults LIST|all] [--rows LIST|all]
      Submit a campaign grid and stream per-cell results.
      Faults: none rd dc mixed. Rows: none driver driver-check
      driver-check-aeb-comp driver-check-aeb-indep aeb-comp aeb-indep
      ml ml-ens ml-mask.

  adas-serve client fuzz [--addr A] [--seed N] [--sessions N] [--runs N]
                         [--batch N] [--shrink N] [--secs-ms N] [--repros DIR]
      Submit a fuzz-farm job (N time-boxed coverage-guided sessions on
      consecutive seeds), stream per-session outcomes, and print the
      fleet-wide deduped finding set. Against a coordinator the sessions
      shard across the fleet; the deduped set is identical either way.
      Defaults: ADAS_FUZZ_FARM_SESSIONS (4), ADAS_FUZZ_FARM_RUNS (120),
      ADAS_FUZZ_FARM_SECS_MS (0 = unbounded). --repros saves deduped
      shrunk repros + traces under DIR.

  adas-serve client bench [--addr A] [campaign flags]
      Submit the same campaign twice and report cold vs warm wall time.

  adas-serve client status JOB | watch JOB | cancel JOB [--addr A]
  adas-serve client metrics [--addr A]
  adas-serve client replay HEX [--addr A]
  adas-serve client shutdown [--addr A]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "serve" | "worker" => cmd_serve(rest),
        "coordinator" => cmd_coordinator(rest),
        "bench" => cmd_bench(rest),
        "client" => cmd_client(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Flag-value extractor: returns the value following `flag` and removes
/// both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let result = (|| -> Result<(), String> {
        let mut config = ServerConfig::from_env();
        if let Some(addr) = take_flag(&mut args, "--addr")? {
            config.addr = addr;
        }
        if let Some(queue) = take_flag(&mut args, "--queue")? {
            config.queue_capacity = queue
                .parse::<usize>()
                .map_err(|e| format!("--queue: {e}"))?
                .max(1);
        }
        if !args.is_empty() {
            return Err(format!("unexpected arguments: {args:?}"));
        }
        let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        eprintln!("[serve] listening on {addr} (SIGTERM or `client shutdown` to drain + exit)");
        server.run().map_err(|e| e.to_string())?;
        eprintln!("[serve] drained, exiting");
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_coordinator(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let result = (|| -> Result<(), String> {
        let mut config = FabricConfig::from_env();
        if let Some(list) = take_flag(&mut args, "--workers")? {
            config.workers = list
                .split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect();
        }
        if let Some(admit) = take_flag(&mut args, "--admit")? {
            config.admit = admit
                .parse::<usize>()
                .map_err(|e| format!("--admit: {e}"))?
                .max(1);
        }
        let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| {
            adas_core::env::raw("ADAS_SERVE_ADDR").unwrap_or_else(|| adas_serve::DEFAULT_ADDR.into())
        });
        if !args.is_empty() {
            return Err(format!("unexpected arguments: {args:?}"));
        }
        let admit = config.admit;
        let coordinator = Coordinator::connect(&config).map_err(|e| e.to_string())?;
        let front =
            CoordinatorServer::bind(&addr, coordinator, admit).map_err(|e| format!("bind: {e}"))?;
        let bound = front.local_addr().map_err(|e| e.to_string())?;
        eprintln!(
            "[fabric] coordinator listening on {bound} over {} workers (`client shutdown` to exit)",
            config.workers.len()
        );
        front.run().map_err(|e| e.to_string())?;
        eprintln!("[fabric] coordinator exiting");
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let result = (|| -> Result<(), String> {
        let spec = campaign_from_flags(&mut args)?;
        let max_clients = match take_flag(&mut args, "--clients")? {
            Some(s) => s.parse::<usize>().map_err(|e| format!("--clients: {e}"))?.max(1),
            None => 4,
        };
        let max_workers = match take_flag(&mut args, "--workers")? {
            Some(s) => s.parse::<usize>().map_err(|e| format!("--workers: {e}"))?.max(1),
            None => 2,
        };
        let campaigns_per_client = match take_flag(&mut args, "--campaigns")? {
            Some(s) => s.parse::<usize>().map_err(|e| format!("--campaigns: {e}"))?.max(1),
            None => 2,
        };
        let admit = match take_flag(&mut args, "--admit")? {
            Some(s) => s.parse::<usize>().map_err(|e| format!("--admit: {e}"))?.max(1),
            None => 4,
        };
        if !args.is_empty() {
            return Err(format!("unexpected arguments: {args:?}"));
        }
        let config = BenchConfig {
            max_clients,
            max_workers,
            campaigns_per_client,
            admit,
            spec,
        };
        eprintln!(
            "[bench] saturation sweep: ≤{max_workers} workers × ≤{max_clients} clients, \
             {} cells/campaign",
            config.spec.cells.len()
        );
        let points = adas_fabric::bench::run(&config)?;
        let json = adas_fabric::bench::to_json(&config, &points);
        adas_bench::write_results_file("SERVE_bench.json", &json);
        println!("{json}");
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Parses the campaign flags shared by `submit` and `bench`.
fn campaign_from_flags(args: &mut Vec<String>) -> Result<CampaignSpec, String> {
    let seed = match take_flag(args, "--seed")? {
        Some(s) => s.parse().map_err(|e| format!("--seed: {e}"))?,
        None => adas_bench::CAMPAIGN_SEED,
    };
    let reps = match take_flag(args, "--reps")? {
        Some(s) => s.parse().map_err(|e| format!("--reps: {e}"))?,
        None => adas_bench::REPS,
    };
    let max_steps = match take_flag(args, "--max-steps")? {
        Some(s) => s.parse().map_err(|e| format!("--max-steps: {e}"))?,
        None => 0,
    };
    let scenario_mask = match take_flag(args, "--scenarios")?.as_deref() {
        None => SCENARIO_MASK_ALL,
        Some("all") => SCENARIO_MASK_ALL,
        Some(list) => {
            let mut mask = 0u8;
            for token in list.split(',') {
                let token = token.trim().to_uppercase();
                let bit = ScenarioId::ALL
                    .iter()
                    .position(|s| format!("{s:?}") == token)
                    .ok_or_else(|| format!("--scenarios: unknown scenario `{token}`"))?;
                mask |= 1 << bit;
            }
            mask
        }
    };
    let attack = match take_flag(args, "--attack")? {
        Some(s) => adas_attack::AttackScheduler::parse(&s)
            .ok_or_else(|| format!("--attack: unknown schedule `{s}`"))?,
        None => adas_core::config::attack_from_env(),
    };
    let faults = parse_faults(take_flag(args, "--faults")?.as_deref().unwrap_or("all"))?;
    let rows = parse_rows(take_flag(args, "--rows")?.as_deref().unwrap_or("none,driver-check"))?;
    let cells: Vec<CellSpec> = faults
        .iter()
        .flat_map(|&fault| {
            rows.iter().map(move |&interventions| CellSpec {
                fault,
                interventions,
            })
        })
        .collect();
    let spec = CampaignSpec {
        campaign_seed: seed,
        repetitions: reps,
        max_steps,
        scenario_mask,
        attack,
        cells,
    };
    if !spec.validate() {
        return Err("campaign flags produce an invalid spec".into());
    }
    Ok(spec)
}

fn parse_faults(list: &str) -> Result<Vec<Option<adas_attack::FaultType>>, String> {
    use adas_attack::FaultType;
    if list == "all" {
        return Ok(vec![
            Some(FaultType::RelativeDistance),
            Some(FaultType::DesiredCurvature),
            Some(FaultType::Mixed),
        ]);
    }
    list.split(',')
        .map(|t| match t.trim() {
            "none" => Ok(None),
            "rd" => Ok(Some(FaultType::RelativeDistance)),
            "dc" => Ok(Some(FaultType::DesiredCurvature)),
            "mixed" => Ok(Some(FaultType::Mixed)),
            other => Err(format!("--faults: unknown fault `{other}`")),
        })
        .collect()
}

fn parse_rows(list: &str) -> Result<Vec<InterventionConfig>, String> {
    if list == "all" {
        return Ok(InterventionConfig::table_vi_rows().to_vec());
    }
    list.split(',')
        .map(|t| match t.trim() {
            "none" => Ok(InterventionConfig::none()),
            "driver" => Ok(InterventionConfig::driver_only()),
            "driver-check" => Ok(InterventionConfig::driver_and_check()),
            "driver-check-aeb-comp" => Ok(InterventionConfig::driver_check_aeb_compromised()),
            "driver-check-aeb-indep" => Ok(InterventionConfig::driver_check_aeb_independent()),
            "aeb-comp" => Ok(InterventionConfig::aeb_compromised_only()),
            "aeb-indep" => Ok(InterventionConfig::aeb_independent_only()),
            "ml" => Ok(InterventionConfig::ml_only()),
            "ml-ens" => Ok(InterventionConfig::ensemble_only()),
            "ml-mask" => Ok(InterventionConfig::maskcheck_only()),
            other => Err(format!("--rows: unknown row `{other}`")),
        })
        .collect()
}

/// Parses the fuzz-farm flags for `client fuzz`. Env defaults let CI and
/// scripted sweeps configure the farm without flag plumbing.
fn fuzz_from_flags(args: &mut Vec<String>) -> Result<adas_fuzz::FuzzJobSpec, String> {
    let first_seed = match take_flag(args, "--seed")? {
        Some(s) => s.parse().map_err(|e| format!("--seed: {e}"))?,
        None => adas_bench::CAMPAIGN_SEED,
    };
    let sessions = match take_flag(args, "--sessions")? {
        Some(s) => s.parse::<usize>().map_err(|e| format!("--sessions: {e}"))?,
        None => adas_parallel::env::parse_or("ADAS_FUZZ_FARM_SESSIONS", "a session count ≥ 1", 4),
    }
    .max(1);
    let mut spec = adas_fuzz::FuzzJobSpec::quick(first_seed, sessions);
    if let Some(s) = take_flag(args, "--runs")? {
        spec.max_runs = s.parse().map_err(|e| format!("--runs: {e}"))?;
    } else {
        spec.max_runs =
            adas_parallel::env::parse_or("ADAS_FUZZ_FARM_RUNS", "a run budget ≥ 1", spec.max_runs);
    }
    if let Some(s) = take_flag(args, "--batch")? {
        spec.batch = s.parse().map_err(|e| format!("--batch: {e}"))?;
    }
    if let Some(s) = take_flag(args, "--shrink")? {
        spec.shrink_steps = s.parse().map_err(|e| format!("--shrink: {e}"))?;
    }
    if let Some(s) = take_flag(args, "--secs-ms")? {
        spec.max_secs_ms = s.parse().map_err(|e| format!("--secs-ms: {e}"))?;
    } else {
        spec.max_secs_ms =
            adas_parallel::env::parse_or("ADAS_FUZZ_FARM_SECS_MS", "a time box in ms (0 = none)", 0);
    }
    if !spec.validate() {
        return Err("fuzz flags produce an invalid job spec".into());
    }
    Ok(spec)
}

fn addr_from_flags(args: &mut Vec<String>) -> Result<String, String> {
    Ok(take_flag(args, "--addr")?.unwrap_or_else(|| {
        adas_core::env::raw("ADAS_SERVE_ADDR").unwrap_or_else(|| adas_serve::DEFAULT_ADDR.into())
    }))
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn parse_job_id(args: &mut Vec<String>) -> Result<u64, String> {
    if args.is_empty() {
        return Err("expected a JOB id".into());
    }
    let token = args.remove(0);
    token.parse().map_err(|e| format!("job id `{token}`: {e}"))
}

fn cmd_client(args: &[String]) -> ExitCode {
    let Some((verb, rest)) = args.split_first() else {
        eprintln!("client needs a verb\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let mut args = rest.to_vec();
    let result = (|| -> Result<ExitCode, String> {
        match verb.as_str() {
            "submit" => {
                let spec = campaign_from_flags(&mut args)?;
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let mut client = connect(&addr)?;
                let t0 = Instant::now();
                // Queue-full rejections back off on the deterministic
                // jittered schedule before giving up.
                let seed = spec.campaign_seed;
                match client
                    .submit_with_backoff(&spec, adas_serve::backoff::DEFAULT_ATTEMPTS, seed)
                    .map_err(|e| e.to_string())?
                {
                    Submission::Rejected {
                        retry_after_ms,
                        reason,
                    } => {
                        eprintln!("rejected: {reason} (retry after {retry_after_ms} ms)");
                        Ok(ExitCode::from(1))
                    }
                    Submission::Accepted { job_id, .. } => {
                        let (cells, state) = client
                            .stream_results(|index, stats| {
                                println!(
                                    "cell {index:>3}: A1 {:6.2}%  A2 {:6.2}%  prevented {:6.2}%  ({} runs)",
                                    stats.a1_pct, stats.a2_pct, stats.prevented_pct, stats.runs
                                );
                            })
                            .map_err(|e| e.to_string())?;
                        println!(
                            "job {} {} · {} cells in {:.2} s",
                            job_id,
                            state,
                            cells.len(),
                            t0.elapsed().as_secs_f64()
                        );
                        Ok(if state == JobState::Done {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::from(1)
                        })
                    }
                }
            }
            "fuzz" => {
                let spec = fuzz_from_flags(&mut args)?;
                let repro_dir = take_flag(&mut args, "--repros")?;
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let mut client = connect(&addr)?;
                let t0 = Instant::now();
                match client.submit_fuzz(&spec).map_err(|e| e.to_string())? {
                    Submission::Rejected {
                        retry_after_ms,
                        reason,
                    } => {
                        eprintln!("rejected: {reason} (retry after {retry_after_ms} ms)");
                        Ok(ExitCode::from(1))
                    }
                    Submission::Accepted { job_id, .. } => {
                        let (outcomes, state) = client
                            .stream_fuzz(|o| {
                                println!(
                                    "session {:>10}: {:>6} runs · corpus {:>4} · {} findings{}",
                                    o.seed,
                                    o.runs,
                                    o.corpus,
                                    o.findings.len(),
                                    if o.hit_time_budget { " · time-boxed" } else { "" }
                                );
                            })
                            .map_err(|e| e.to_string())?;
                        // The same fold the daemon/coordinator ran: the
                        // deduped set is reproducible client-side.
                        let summary = adas_fuzz::farm::fold(&spec, &outcomes);
                        println!(
                            "job {} {} · {} sessions · {} deduped findings ({} duplicates) \
                             in {:.2} s",
                            job_id,
                            state,
                            summary.sessions,
                            summary.findings.len(),
                            summary.dedup_hits,
                            t0.elapsed().as_secs_f64()
                        );
                        for (oracle, count) in summary.by_oracle().iter().enumerate() {
                            if *count > 0 {
                                println!(
                                    "  {:<24} {count}",
                                    adas_fuzz::OracleKind::ALL[oracle].name()
                                );
                            }
                        }
                        if let Some(dir) = repro_dir {
                            let paths = adas_fuzz::farm::save_repros(
                                &summary.findings,
                                std::path::Path::new(&dir),
                            )?;
                            println!("saved {} repros under {dir}", paths.len());
                        }
                        Ok(if state == JobState::Done {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::from(1)
                        })
                    }
                }
            }
            "bench" => {
                let spec = campaign_from_flags(&mut args)?;
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let mut client = connect(&addr)?;
                let mut lap = |label: &str| -> Result<f64, String> {
                    let t0 = Instant::now();
                    let outcome = client.run_campaign(&spec, |_, _| {}).map_err(|e| e.to_string())?;
                    let wall = t0.elapsed().as_secs_f64();
                    match outcome {
                        Ok(r) if r.state == JobState::Done => {
                            println!("{label}: {} cells in {wall:.3} s", r.cells.len());
                            Ok(wall)
                        }
                        Ok(r) => Err(format!("{label} run ended {}", r.state)),
                        Err(Submission::Rejected { reason, .. }) => {
                            Err(format!("{label} run rejected: {reason}"))
                        }
                        Err(_) => unreachable!("run_campaign streams"),
                    }
                };
                let cold_s = lap("cold")?;
                let warm_s = lap("warm")?;
                let speedup = if warm_s > 0.0 { cold_s / warm_s } else { 0.0 };
                println!("speedup: {speedup:.1}× (cold {cold_s:.3} s → warm {warm_s:.3} s)");
                Ok(ExitCode::SUCCESS)
            }
            "status" => {
                let job_id = parse_job_id(&mut args)?;
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let status = connect(&addr)?.status(job_id).map_err(|e| e.to_string())?;
                println!(
                    "job {job_id}: {} · cells {}/{} · {} runs executed",
                    status.state, status.cells_done, status.cells_total, status.runs_done
                );
                Ok(ExitCode::SUCCESS)
            }
            "watch" => {
                let job_id = parse_job_id(&mut args)?;
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let mut client = connect(&addr)?;
                loop {
                    let status = client.status(job_id).map_err(|e| e.to_string())?;
                    println!(
                        "job {job_id}: {} · cells {}/{} · {} runs executed",
                        status.state, status.cells_done, status.cells_total, status.runs_done
                    );
                    if status.state.is_terminal() {
                        return Ok(ExitCode::SUCCESS);
                    }
                    std::thread::sleep(Duration::from_millis(500));
                }
            }
            "cancel" => {
                let job_id = parse_job_id(&mut args)?;
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let status = connect(&addr)?.cancel(job_id).map_err(|e| e.to_string())?;
                println!("job {job_id}: cancellation requested (state {})", status.state);
                Ok(ExitCode::SUCCESS)
            }
            "metrics" => {
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let json = connect(&addr)?.metrics().map_err(|e| e.to_string())?;
                print!("{json}");
                Ok(ExitCode::SUCCESS)
            }
            "replay" => {
                if args.is_empty() {
                    return Err("expected a trace hash".into());
                }
                let hex = args.remove(0);
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                let (outcome, detail) =
                    connect(&addr)?.replay(&hex).map_err(|e| e.to_string())?;
                println!("{outcome:?}: {detail}");
                Ok(match outcome {
                    ReplayOutcome::Identical => ExitCode::SUCCESS,
                    _ => ExitCode::from(1),
                })
            }
            "shutdown" => {
                let addr = addr_from_flags(&mut args)?;
                expect_empty(&args)?;
                connect(&addr)?.shutdown().map_err(|e| e.to_string())?;
                println!("shutdown acknowledged; server is draining");
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unknown client verb `{other}`")),
        }
    })();
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn expect_empty(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unexpected arguments: {args:?}"))
    }
}
