//! The campaign coordinator: shards a grid across the fleet, re-dispatches
//! cells from dead or slow workers, and merges streamed results in
//! deterministic grid order.
//!
//! # Dispatch algorithm
//!
//! A campaign runs in **rounds**. Each round routes every still-missing
//! cell over a consistent-hash ring built from the *currently live*
//! workers (so warm cells stay put while everyone is healthy, and only a
//! dead worker's cells move), then dispatches one `AssignCells` slice per
//! worker on its own data connection and streams results into the merge
//! buffer. A worker whose connection errors or stalls past the deadline
//! is marked dead; its unfinished cells simply remain missing and the
//! next round re-routes them across the survivors. Queue-full rejections
//! retry on the same worker with the client backoff schedule — a busy
//! worker is not a dead worker.
//!
//! # Determinism
//!
//! The merge buffer is indexed by global grid position and emits the
//! `on_cell` stream as a strict in-order prefix: cell *k* is emitted only
//! after every cell `< k`. Arrival order — which worker answered first,
//! how often a cell was re-dispatched — can never reorder or duplicate
//! output, so a sharded campaign is byte-identical to a single-daemon or
//! in-process run of the same grid.

use crate::fleet::Fleet;
use crate::ring::HashRing;
use crate::FabricError;
use adas_core::{CampaignSpec, CellStats};
use adas_fuzz::farm::{self, FarmSummary, FuzzJobSpec, SessionOutcome};
use adas_serve::sink::{self, StoreSink};
use adas_serve::{Client, Submission};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where the coordinator persists deduped shrunk repros after a fuzz
/// farm job (unset = no repro persistence).
pub const FUZZ_REPRO_DIR_ENV: &str = "ADAS_FUZZ_FARM_REPRO_DIR";

/// Rounds with neither progress nor a fleet change before a campaign is
/// declared stuck (workers persistently rejecting or wedged).
const MAX_STALLED_ROUNDS: u32 = 8;

/// Submission attempts per assignment before yielding to the next round.
const ASSIGN_ATTEMPTS: u32 = 6;

/// Fabric topology and tuning, usually from `ADAS_FABRIC_*`.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Worker dial addresses (`host:port`, configuration order = ring
    /// slot order).
    pub workers: Vec<String>,
    /// Heartbeat probe interval.
    pub heartbeat: Duration,
    /// Per-frame stall deadline: a worker silent this long mid-stream (or
    /// unresponsive to probes) is dead.
    pub deadline: Duration,
    /// Virtual ring points per worker.
    pub vnodes: usize,
    /// Concurrent campaigns admitted by the coordinator front-end.
    pub admit: usize,
    /// Fleet epoch sent with registrations.
    pub epoch: u64,
}

impl FabricConfig {
    /// Configuration from `ADAS_FABRIC_WORKERS` (comma-separated
    /// addresses), `ADAS_FABRIC_HEARTBEAT_MS`, `ADAS_FABRIC_DEADLINE_MS`,
    /// `ADAS_FABRIC_VNODES`, and `ADAS_FABRIC_ADMIT`, through the
    /// hardened `adas_parallel::env` parsers.
    #[must_use]
    pub fn from_env() -> Self {
        let workers = adas_parallel::env::raw("ADAS_FABRIC_WORKERS")
            .map(|list| {
                list.split(',')
                    .map(|a| a.trim().to_owned())
                    .filter(|a| !a.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        let heartbeat_ms: u64 =
            adas_parallel::env::parse_or("ADAS_FABRIC_HEARTBEAT_MS", "a probe interval in ms", 1000);
        let deadline_ms: u64 =
            adas_parallel::env::parse_or("ADAS_FABRIC_DEADLINE_MS", "a stall deadline in ms", 30_000);
        Self {
            workers,
            heartbeat: Duration::from_millis(heartbeat_ms.max(10)),
            deadline: Duration::from_millis(deadline_ms.max(100)),
            vnodes: adas_parallel::env::parse_or("ADAS_FABRIC_VNODES", "virtual nodes ≥ 1", 64usize)
                .clamp(1, 4096),
            admit: adas_parallel::env::parse_or("ADAS_FABRIC_ADMIT", "admitted campaigns ≥ 1", 4usize)
                .max(1),
            epoch: 1,
        }
    }
}

/// Coordinator-side counters, snapshotted into the `Metrics` frame.
#[derive(Debug, Default)]
pub struct FabricMetrics {
    /// Campaigns merged to completion.
    pub campaigns: AtomicU64,
    /// Campaigns bounced at the admission limit.
    pub rejected: AtomicU64,
    /// Cells dispatched (re-dispatches counted again).
    pub cells_assigned: AtomicU64,
    /// Cells merged (each global index exactly once).
    pub cells_merged: AtomicU64,
    /// Late/duplicate results dropped by the merge buffer.
    pub duplicates_dropped: AtomicU64,
    /// Extra rounds forced by death/slowness/backpressure.
    pub redispatch_rounds: AtomicU64,
    /// Queue-full rejections absorbed by assignment backoff.
    pub assign_rejections: AtomicU64,
    /// Fuzz farm jobs folded to completion.
    pub fuzz_jobs: AtomicU64,
    /// Fuzz sessions merged (each seed exactly once).
    pub fuzz_sessions: AtomicU64,
    /// Deduped findings surviving the fleet-wide fold.
    pub fuzz_findings: AtomicU64,
    /// Findings dropped as behavioural duplicates by the fold.
    pub fuzz_dedup_hits: AtomicU64,
}

/// In-order merge buffer: slots by global index, emitting a strict
/// prefix stream.
struct Merge<'a> {
    slots: Vec<Option<CellStats>>,
    next_emit: usize,
    on_cell: &'a mut (dyn FnMut(u32, &CellStats) + Send),
    duplicates: u64,
}

impl Merge<'_> {
    /// Inserts one result; first write wins (re-dispatch races and late
    /// frames from timed-out workers are dropped). Emits every newly
    /// contiguous cell in grid order.
    fn insert(&mut self, index: usize, stats: CellStats) {
        if index >= self.slots.len() || self.slots[index].is_some() {
            self.duplicates += 1;
            return;
        }
        self.slots[index] = Some(stats);
        while self.next_emit < self.slots.len() {
            let Some(stats) = &self.slots[self.next_emit] else {
                break;
            };
            (self.on_cell)(self.next_emit as u32, stats);
            self.next_emit += 1;
        }
    }

    fn missing(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Fuzz-session merge buffer: slots by global seed index, first write
/// wins (a seed re-dispatched after a slow worker's death may complete
/// twice — identical payloads, only one counts), emitting sessions as a
/// strict seed-order prefix exactly like the campaign merge.
struct FuzzMerge<'a> {
    slots: Vec<Option<SessionOutcome>>,
    next_emit: usize,
    on_session: &'a mut (dyn FnMut(&SessionOutcome) + Send),
    duplicates: u64,
}

impl FuzzMerge<'_> {
    fn insert(&mut self, index: usize, outcome: SessionOutcome) {
        if index >= self.slots.len() || self.slots[index].is_some() {
            self.duplicates += 1;
            return;
        }
        self.slots[index] = Some(outcome);
        while self.next_emit < self.slots.len() {
            let Some(outcome) = &self.slots[self.next_emit] else {
                break;
            };
            (self.on_session)(outcome);
            self.next_emit += 1;
        }
    }

    fn missing(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect()
    }
}

/// A connected coordinator: fleet handle + dispatch state.
#[derive(Debug)]
pub struct Coordinator {
    /// The worker fleet (shared with the monitor thread).
    pub fleet: Arc<Fleet>,
    /// Live counters.
    pub metrics: FabricMetrics,
    /// Optional `ADAS_STORE_DIR` write-through for fuzz findings — the
    /// coordinator is the single store writer for farm jobs (workers
    /// skip persistence on assigned slices to avoid double-writes).
    store_sink: StoreSink,
    vnodes: usize,
    deadline: Duration,
    assignment_ids: AtomicU64,
}

impl Coordinator {
    /// Wraps a connected fleet.
    #[must_use]
    pub fn new(fleet: Arc<Fleet>, config: &FabricConfig) -> Self {
        Self {
            fleet,
            metrics: FabricMetrics::default(),
            store_sink: StoreSink::from_env(),
            vnodes: config.vnodes,
            deadline: config.deadline,
            assignment_ids: AtomicU64::new(1),
        }
    }

    /// Connects the fleet and starts its monitor in one step.
    ///
    /// # Errors
    ///
    /// Fleet connection failures ([`FabricError::NoWorkers`] /
    /// [`FabricError::NoLiveWorkers`]).
    pub fn connect(config: &FabricConfig) -> Result<Self, FabricError> {
        let fleet = Fleet::connect(
            &config.workers,
            config.epoch,
            config.heartbeat,
            config.deadline,
        )?;
        fleet.start_monitor();
        Ok(Self::new(fleet, config))
    }

    /// Runs one campaign across the fleet: shards by routing key, streams
    /// `on_cell(global_index, stats)` in strict grid order, and returns
    /// the full grid (index order).
    ///
    /// # Errors
    ///
    /// [`FabricError::NoLiveWorkers`] when the whole fleet is dead with
    /// cells outstanding; [`FabricError::Stalled`] when live workers stop
    /// making progress.
    pub fn run_campaign(
        &self,
        spec: &CampaignSpec,
        mut on_cell: impl FnMut(u32, &CellStats) + Send,
    ) -> Result<Vec<CellStats>, FabricError> {
        if !spec.validate() {
            return Err(FabricError::InvalidSpec);
        }
        let keys: Vec<u64> = spec.cells.iter().map(|c| spec.route_key(c)).collect();
        let merge = Mutex::new(Merge {
            slots: vec![None; spec.cells.len()],
            next_emit: 0,
            on_cell: &mut on_cell,
            duplicates: 0,
        });

        let mut round = 0u32;
        let mut stalled = 0u32;
        loop {
            let missing = merge.lock().expect("merge lock").missing();
            if missing.is_empty() {
                break;
            }
            let live = self.fleet.live_slots();
            if live.is_empty() {
                return Err(FabricError::NoLiveWorkers);
            }
            if round > 0 {
                self.metrics.redispatch_rounds.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "[fabric] round {round}: re-dispatching {} cells across {} live workers",
                    missing.len(),
                    live.len()
                );
            }
            // Route the missing cells over the live subset of the ring.
            let ring = HashRing::new(
                &live.iter().map(|&s| self.fleet.workers[s].id).collect::<Vec<_>>(),
                self.vnodes,
            );
            let mut shards: Vec<Vec<u32>> = vec![Vec::new(); live.len()];
            for &cell in &missing {
                let slot = ring.route(keys[cell]).expect("non-empty ring");
                shards[slot].push(cell as u32);
            }
            let before = missing.len();
            let fleet_before = live.len();
            std::thread::scope(|scope| {
                for (ring_slot, indices) in shards.into_iter().enumerate() {
                    if indices.is_empty() {
                        continue;
                    }
                    let fleet_slot = live[ring_slot];
                    let merge = &merge;
                    scope.spawn(move || {
                        self.dispatch_shard(fleet_slot, &indices, spec, merge);
                    });
                }
            });
            let after = merge.lock().expect("merge lock").missing().len();
            let fleet_after = self.fleet.live_slots().len();
            if after == before && fleet_after == fleet_before {
                stalled += 1;
                if stalled >= MAX_STALLED_ROUNDS {
                    return Err(FabricError::Stalled {
                        missing: after,
                        rounds: round + 1,
                    });
                }
            } else {
                stalled = 0;
            }
            round += 1;
        }

        let mut merged = merge.into_inner().expect("merge lock");
        self.metrics
            .duplicates_dropped
            .fetch_add(merged.duplicates, Ordering::Relaxed);
        self.metrics.campaigns.fetch_add(1, Ordering::Relaxed);
        let cells: Vec<CellStats> = merged
            .slots
            .drain(..)
            .map(|s| s.expect("merge complete"))
            .collect();
        self.metrics
            .cells_merged
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        Ok(cells)
    }

    /// Dispatches one worker's shard on a fresh data connection and
    /// drains its result stream into the merge buffer. Transport failures
    /// and stream stalls mark the worker dead; its unfinished cells stay
    /// missing for the next round.
    fn dispatch_shard(
        &self,
        fleet_slot: usize,
        indices: &[u32],
        spec: &CampaignSpec,
        merge: &Mutex<Merge<'_>>,
    ) {
        let worker = &self.fleet.workers[fleet_slot];
        let sub = CampaignSpec {
            cells: indices.iter().map(|&i| spec.cells[i as usize]).collect(),
            ..spec.clone()
        };
        let assignment_id = self.assignment_ids.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .cells_assigned
            .fetch_add(indices.len() as u64, Ordering::Relaxed);

        let mut client = match Client::connect(&worker.addr) {
            Ok(c) => c,
            Err(_) => return self.fleet.mark_dead(fleet_slot),
        };
        // The stall deadline applies per frame: any single read blocking
        // this long means the worker is wedged (results, even cold
        // computes, heartbeat the stream via per-cell frames).
        if client.set_read_timeout(Some(self.deadline)).is_err() {
            return self.fleet.mark_dead(fleet_slot);
        }

        // Queue-full is backpressure, not death: retry on the backoff
        // schedule, then give the cells back to the next round.
        let mut attempt = 0u32;
        loop {
            match client.assign_cells(assignment_id, indices, &sub) {
                Ok(Submission::Accepted { .. }) => break,
                Ok(Submission::Rejected { retry_after_ms, .. }) => {
                    self.metrics.assign_rejections.fetch_add(1, Ordering::Relaxed);
                    if retry_after_ms == 0 || attempt + 1 >= ASSIGN_ATTEMPTS {
                        return; // worker draining or persistently full
                    }
                    std::thread::sleep(Duration::from_millis(adas_serve::backoff::delay_ms(
                        retry_after_ms,
                        attempt,
                        assignment_id,
                    )));
                    attempt += 1;
                }
                Err(_) => return self.fleet.mark_dead(fleet_slot),
            }
        }

        let streamed = client.stream_results(|global_index, stats| {
            merge
                .lock()
                .expect("merge lock")
                .insert(global_index as usize, stats.clone());
        });
        match streamed {
            Ok((_, adas_serve::JobState::Done)) => {}
            // A cancelled/failed assignment or any transport/stall error:
            // treat the worker as unhealthy and let re-dispatch recover.
            _ => self.fleet.mark_dead(fleet_slot),
        }
    }

    /// Runs one fuzz-farm job across the fleet: shards the session seeds
    /// over the live workers, streams `on_session` in strict seed order,
    /// folds every outcome into the fleet-wide deduped finding set, and
    /// persists deduped repros ([`FUZZ_REPRO_DIR_ENV`]) plus store rows
    /// (`ADAS_STORE_DIR`) centrally.
    ///
    /// Determinism: the fold runs over the complete outcome set in global
    /// `spec.seeds` order with the same first-write-wins discipline a
    /// single daemon applies, so the deduped finding set and the shrunk
    /// repro bytes are independent of worker count, shard routing, and
    /// mid-job worker deaths.
    ///
    /// # Errors
    ///
    /// [`FabricError::InvalidSpec`] for a spec failing validation,
    /// [`FabricError::NoLiveWorkers`] when the whole fleet is dead with
    /// sessions outstanding, [`FabricError::Stalled`] when live workers
    /// stop making progress.
    pub fn run_fuzz_farm(
        &self,
        spec: &FuzzJobSpec,
        mut on_session: impl FnMut(&SessionOutcome) + Send,
    ) -> Result<FarmSummary, FabricError> {
        if !spec.validate() {
            return Err(FabricError::InvalidSpec);
        }
        let merge = Mutex::new(FuzzMerge {
            slots: vec![None; spec.seeds.len()],
            next_emit: 0,
            on_session: &mut on_session,
            duplicates: 0,
        });

        let mut round = 0u32;
        let mut stalled = 0u32;
        loop {
            let missing = merge.lock().expect("fuzz merge lock").missing();
            if missing.is_empty() {
                break;
            }
            let live = self.fleet.live_slots();
            if live.is_empty() {
                return Err(FabricError::NoLiveWorkers);
            }
            if round > 0 {
                self.metrics.redispatch_rounds.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "[fabric] fuzz round {round}: re-dispatching {} sessions across {} live workers",
                    missing.len(),
                    live.len()
                );
            }
            let ring = HashRing::new(
                &live.iter().map(|&s| self.fleet.workers[s].id).collect::<Vec<_>>(),
                self.vnodes,
            );
            let mut shards: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
            for &idx in &missing {
                let slot = ring.route(spec.seeds[idx]).expect("non-empty ring");
                shards[slot].push(idx);
            }
            let before = missing.len();
            let fleet_before = live.len();
            std::thread::scope(|scope| {
                for (ring_slot, indices) in shards.into_iter().enumerate() {
                    if indices.is_empty() {
                        continue;
                    }
                    let fleet_slot = live[ring_slot];
                    let merge = &merge;
                    scope.spawn(move || {
                        self.dispatch_fuzz_shard(fleet_slot, &indices, spec, merge);
                    });
                }
            });
            let after = merge.lock().expect("fuzz merge lock").missing().len();
            let fleet_after = self.fleet.live_slots().len();
            if after == before && fleet_after == fleet_before {
                stalled += 1;
                if stalled >= MAX_STALLED_ROUNDS {
                    return Err(FabricError::Stalled {
                        missing: after,
                        rounds: round + 1,
                    });
                }
            } else {
                stalled = 0;
            }
            round += 1;
        }

        let mut merged = merge.into_inner().expect("fuzz merge lock");
        self.metrics
            .duplicates_dropped
            .fetch_add(merged.duplicates, Ordering::Relaxed);
        let outcomes: Vec<SessionOutcome> = merged
            .slots
            .drain(..)
            .map(|s| s.expect("fuzz merge complete"))
            .collect();
        // The global fold: same code path a single daemon runs, over the
        // complete outcome set in spec.seeds order.
        let summary = farm::fold(spec, &outcomes);
        self.metrics.fuzz_jobs.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .fuzz_sessions
            .fetch_add(summary.sessions, Ordering::Relaxed);
        self.metrics
            .fuzz_findings
            .fetch_add(summary.findings.len() as u64, Ordering::Relaxed);
        self.metrics
            .fuzz_dedup_hits
            .fetch_add(summary.dedup_hits, Ordering::Relaxed);

        if self.store_sink.enabled() {
            let rows: Vec<adas_store::FindingRow> =
                summary.findings.iter().map(sink::finding_row).collect();
            self.store_sink.findings(&rows);
        }
        if let Some(dir) = adas_core::env::raw(FUZZ_REPRO_DIR_ENV) {
            match farm::save_repros(&summary.findings, std::path::Path::new(&dir)) {
                Ok(paths) => {
                    if !paths.is_empty() {
                        eprintln!("[fabric] persisted {} repros under {dir}", paths.len());
                    }
                }
                Err(e) => eprintln!("[fabric] repro persistence failed: {e}"),
            }
        }
        Ok(summary)
    }

    /// Dispatches one worker's seed slice on a fresh data connection and
    /// drains its per-session result stream into the fuzz merge buffer.
    /// Transport failures and stream stalls mark the worker dead; its
    /// unfinished seeds stay missing for the next round.
    fn dispatch_fuzz_shard(
        &self,
        fleet_slot: usize,
        indices: &[usize],
        spec: &FuzzJobSpec,
        merge: &Mutex<FuzzMerge<'_>>,
    ) {
        let worker = &self.fleet.workers[fleet_slot];
        let sub = FuzzJobSpec {
            seeds: indices.iter().map(|&i| spec.seeds[i]).collect(),
            ..spec.clone()
        };
        let assignment_id = self.assignment_ids.fetch_add(1, Ordering::Relaxed);

        let mut client = match Client::connect(&worker.addr) {
            Ok(c) => c,
            Err(_) => return self.fleet.mark_dead(fleet_slot),
        };
        // The stream heartbeats one frame per finished session, so the
        // per-frame stall deadline must cover at least one session. For
        // time-boxed jobs widen it to a generous multiple of the budget;
        // unbounded jobs fall back to the configured fabric deadline.
        let frame_deadline = self
            .deadline
            .max(Duration::from_millis(u64::from(spec.max_secs_ms).saturating_mul(4)));
        if client.set_read_timeout(Some(frame_deadline)).is_err() {
            return self.fleet.mark_dead(fleet_slot);
        }

        match client.assign_fuzz(assignment_id, &sub) {
            Ok(Submission::Accepted { .. }) => {}
            // Workers run fuzz sessions on the connection handler, not the
            // campaign queue, so a rejection is a drain signal: hand the
            // seeds back to the next round without penalising the worker.
            Ok(Submission::Rejected { .. }) => {
                self.metrics.assign_rejections.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return self.fleet.mark_dead(fleet_slot),
        }

        // Map each streamed outcome back to its global seed index.
        let streamed = client.stream_fuzz(|outcome| {
            if let Some(pos) = spec.seeds.iter().position(|&s| s == outcome.seed) {
                merge
                    .lock()
                    .expect("fuzz merge lock")
                    .insert(pos, outcome.clone());
            }
        });
        match streamed {
            Ok((_, adas_serve::JobState::Done)) => {}
            _ => self.fleet.mark_dead(fleet_slot),
        }
    }

    /// Coordinator metrics snapshot (hand-rolled JSON, like the serve
    /// metrics — the vendored `serde` is a compile-only stub).
    #[must_use]
    pub fn metrics_json(&self, active_campaigns: usize, admit: usize) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let m = &self.metrics;
        let (store_cells, store_findings) = self.store_sink.appended();
        format!(
            "{{\n  \"role\": \"coordinator\",\n  \"admission\": {{ \"active\": {active_campaigns}, \
             \"limit\": {admit} }},\n  \"campaigns\": {{ \"done\": {}, \"rejected\": {} }},\n  \
             \"cells\": {{ \"assigned\": {}, \"merged\": {}, \"duplicates_dropped\": {} }},\n  \
             \"fuzz\": {{ \"jobs\": {}, \"sessions\": {}, \"findings\": {}, \
             \"dedup_hits\": {} }},\n  \
             \"store\": {{ \"enabled\": {}, \"cells\": {store_cells}, \
             \"findings\": {store_findings} }},\n  \
             \"redispatch_rounds\": {},\n  \"assign_rejections\": {},\n  \
             \"workers_lost\": {},\n  \"workers_revived\": {},\n  \"workers\": {}\n}}\n",
            g(&m.campaigns),
            g(&m.rejected),
            g(&m.cells_assigned),
            g(&m.cells_merged),
            g(&m.duplicates_dropped),
            g(&m.fuzz_jobs),
            g(&m.fuzz_sessions),
            g(&m.fuzz_findings),
            g(&m.fuzz_dedup_hits),
            self.store_sink.enabled(),
            g(&m.redispatch_rounds),
            g(&m.assign_rejections),
            self.fleet.lost.load(Ordering::Relaxed),
            self.fleet.revived.load(Ordering::Relaxed),
            self.fleet.status_json(),
        )
    }
}
