//! Worker fleet membership and health tracking.
//!
//! The coordinator registers with every worker at startup
//! (`RegisterWorker` → `WorkerHello`), then a single monitor thread
//! probes each live worker with `Heartbeat` frames over a persistent
//! per-worker connection. A worker is marked **dead** when a probe fails
//! at the transport level or no ack arrives within the configured
//! deadline; dead workers are re-probed every sweep and **revived** when
//! a fresh registration succeeds (a restarted daemon rejoins
//! automatically). Queue-full rejections are *not* health signals —
//! only the transport decides liveness.

use crate::FabricError;
use adas_serve::client::WorkerHello;
use adas_serve::Client;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One worker's membership record.
#[derive(Debug)]
pub struct WorkerSlot {
    /// Dial address (`host:port`).
    pub addr: String,
    /// Stable ring identity ([`crate::ring::worker_id`] of `addr`).
    pub id: u64,
    alive: AtomicBool,
    /// Capabilities from the most recent successful registration.
    hello: Mutex<Option<WorkerHello>>,
    /// Milliseconds since fleet start at the last successful probe.
    last_seen_ms: AtomicU64,
    /// Monitor-owned heartbeat connection (reconnected on failure).
    conn: Mutex<Option<Client>>,
}

impl WorkerSlot {
    /// Whether the worker is currently considered live.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Capabilities from the latest `WorkerHello`, if ever registered.
    #[must_use]
    pub fn hello(&self) -> Option<WorkerHello> {
        *self.hello.lock().expect("hello lock")
    }
}

/// The worker fleet: slots plus the monitor's shared clock and state.
#[derive(Debug)]
pub struct Fleet {
    /// All configured workers, in configuration order (= ring slots).
    pub workers: Vec<Arc<WorkerSlot>>,
    /// Coordinator session epoch, sent with every registration.
    pub epoch: u64,
    heartbeat: Duration,
    deadline: Duration,
    started: Instant,
    stop: AtomicBool,
    /// Monotonic heartbeat nonce (shared across workers — uniqueness is
    /// all the ack check needs).
    nonces: AtomicU64,
    /// Workers lost (dead transitions) since fleet start.
    pub lost: AtomicU64,
    /// Workers revived (dead → alive transitions) since fleet start.
    pub revived: AtomicU64,
}

impl Fleet {
    /// Connects to and registers with every address. Workers that fail
    /// the initial handshake start *dead* (the monitor keeps trying);
    /// at least one must register or this fails fast.
    ///
    /// # Errors
    ///
    /// [`FabricError::NoWorkers`] for an empty list,
    /// [`FabricError::NoLiveWorkers`] when every registration fails.
    pub fn connect(
        addrs: &[String],
        epoch: u64,
        heartbeat: Duration,
        deadline: Duration,
    ) -> Result<Arc<Self>, FabricError> {
        if addrs.is_empty() {
            return Err(FabricError::NoWorkers);
        }
        let fleet = Arc::new(Self {
            workers: addrs
                .iter()
                .map(|addr| {
                    Arc::new(WorkerSlot {
                        addr: addr.clone(),
                        id: crate::ring::worker_id(addr),
                        alive: AtomicBool::new(false),
                        hello: Mutex::new(None),
                        last_seen_ms: AtomicU64::new(0),
                        conn: Mutex::new(None),
                    })
                })
                .collect(),
            epoch,
            heartbeat,
            deadline,
            started: Instant::now(),
            stop: AtomicBool::new(false),
            nonces: AtomicU64::new(1),
            lost: AtomicU64::new(0),
            revived: AtomicU64::new(0),
        });
        let mut live = 0usize;
        for slot in 0..fleet.workers.len() {
            if fleet.try_register(slot) {
                live += 1;
            } else {
                eprintln!(
                    "[fabric] worker {} unreachable at startup (monitor will keep probing)",
                    fleet.workers[slot].addr
                );
            }
        }
        if live == 0 {
            return Err(FabricError::NoLiveWorkers);
        }
        Ok(fleet)
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Slot indices of currently-live workers.
    #[must_use]
    pub fn live_slots(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_alive())
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks a worker dead (transport failure observed by the monitor or
    /// by a dispatch connection). Idempotent.
    pub fn mark_dead(&self, slot: usize) {
        let w = &self.workers[slot];
        if w.alive.swap(false, Ordering::Relaxed) {
            self.lost.fetch_add(1, Ordering::Relaxed);
            eprintln!("[fabric] worker {} marked dead", w.addr);
        }
        *w.conn.lock().expect("conn lock") = None;
    }

    /// Opens a fresh connection, registers, and marks the slot alive.
    /// Returns success.
    fn try_register(&self, slot: usize) -> bool {
        let w = &self.workers[slot];
        let Ok(mut client) = Client::connect(&w.addr) else {
            return false;
        };
        if client.set_read_timeout(Some(self.deadline)).is_err() {
            return false;
        }
        // A slot that registered before and comes back is a revival; the
        // startup handshake is not.
        let was_registered = w.hello.lock().expect("hello lock").is_some();
        match client.register_worker(self.epoch) {
            Ok(hello) => {
                *w.hello.lock().expect("hello lock") = Some(hello);
                *w.conn.lock().expect("conn lock") = Some(client);
                w.last_seen_ms.store(self.now_ms(), Ordering::Relaxed);
                if !w.alive.swap(true, Ordering::Relaxed) {
                    if was_registered {
                        self.revived.fetch_add(1, Ordering::Relaxed);
                    }
                    eprintln!("[fabric] worker {} registered (epoch {})", w.addr, self.epoch);
                }
                true
            }
            Err(_) => false,
        }
    }

    /// One monitor sweep: heartbeat live workers (marking the stalled or
    /// unreachable dead), re-register dead ones.
    pub fn sweep(&self) {
        for slot in 0..self.workers.len() {
            let w = &self.workers[slot];
            if w.is_alive() {
                let nonce = self.nonces.fetch_add(1, Ordering::Relaxed);
                let ok = {
                    let mut conn = w.conn.lock().expect("conn lock");
                    conn.as_mut().is_some_and(|c| c.heartbeat(nonce).is_ok())
                };
                if ok {
                    w.last_seen_ms.store(self.now_ms(), Ordering::Relaxed);
                } else {
                    let silent =
                        self.now_ms().saturating_sub(w.last_seen_ms.load(Ordering::Relaxed));
                    // One failed probe after a recent success may be a
                    // blip; past the deadline it is a death.
                    *w.conn.lock().expect("conn lock") = None;
                    if silent >= self.deadline.as_millis() as u64 || !self.try_register(slot) {
                        self.mark_dead(slot);
                    }
                }
            } else {
                self.try_register(slot);
            }
        }
    }

    /// Spawns the monitor thread (one per fleet); it sweeps every
    /// heartbeat interval until [`Self::stop`].
    pub fn start_monitor(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let fleet = Arc::clone(self);
        std::thread::Builder::new()
            .name("fabric-monitor".into())
            .spawn(move || {
                while !fleet.stop.load(Ordering::Relaxed) {
                    fleet.sweep();
                    std::thread::sleep(fleet.heartbeat);
                }
            })
            .expect("spawn fabric monitor")
    }

    /// Stops the monitor thread (it exits within one heartbeat interval).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Per-worker status as a JSON array fragment.
    #[must_use]
    pub fn status_json(&self) -> String {
        let now = self.now_ms();
        let rows: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                let seen = w.last_seen_ms.load(Ordering::Relaxed);
                let (threads, batch, queue) = w
                    .hello()
                    .map_or((0, 0, 0), |h| (h.threads, h.batch_width, h.queue_capacity));
                format!(
                    "{{ \"addr\": \"{}\", \"alive\": {}, \"silent_ms\": {}, \
                     \"threads\": {threads}, \"batch_width\": {batch}, \
                     \"queue_capacity\": {queue} }}",
                    w.addr,
                    w.is_alive(),
                    now.saturating_sub(seen),
                )
            })
            .collect();
        format!("[ {} ]", rows.join(", "))
    }
}
