//! The coordinator's client-facing TCP front-end.
//!
//! Speaks the same versioned wire protocol as a worker daemon, so every
//! existing `adas-serve client` verb works unchanged against a
//! coordinator: `SubmitCampaign` is sharded across the fleet instead of
//! executed locally, with the familiar `Accepted` → `CellResult`* →
//! `JobDone` stream (in grid order, like any daemon). Admission control
//! bounds concurrent campaigns: beyond the limit, submissions get a
//! `Rejected` frame with a `retry_after_ms` hint, which
//! [`adas_serve::Client::submit_with_backoff`] honours.

use crate::coordinator::Coordinator;
use crate::FabricError;
use adas_serve::protocol::{recv_request, send_response};
use adas_serve::{JobState, Request, Response};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Retry hint sent with admission-control rejections.
const RETRY_AFTER_MS: u32 = 500;

/// A bound coordinator front-end.
pub struct CoordinatorServer {
    listener: TcpListener,
    shared: Arc<FrontShared>,
}

struct FrontShared {
    coordinator: Coordinator,
    admit: usize,
    active: AtomicUsize,
    job_ids: AtomicU64,
    shutdown: AtomicBool,
}

impl CoordinatorServer {
    /// Binds the listen socket around a connected coordinator.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, coordinator: Coordinator, admit: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            shared: Arc::new(FrontShared {
                coordinator,
                admit: admit.max(1),
                active: AtomicUsize::new(0),
                job_ids: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop: one thread per client connection, until a `Shutdown`
    /// request arrives. Stops the fleet monitor on exit.
    ///
    /// # Errors
    ///
    /// Propagates listener failures (accept errors are per-connection
    /// and non-fatal).
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        for h in handles {
            let _ = h.join();
        }
        self.shared.coordinator.fleet.stop();
        Ok(())
    }
}

fn handle_connection(shared: &FrontShared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let request = match recv_request(&mut stream) {
            Ok(r) => r,
            Err(_) => return, // disconnect or malformed frame: drop peer
        };
        let keep_going = handle_request(shared, &mut stream, request);
        if !matches!(keep_going, Ok(true)) {
            return;
        }
    }
}

/// Returns `Ok(false)` to close the connection gracefully.
fn handle_request(
    shared: &FrontShared,
    stream: &mut TcpStream,
    request: Request,
) -> std::io::Result<bool> {
    match request {
        Request::SubmitCampaign(spec) => {
            if shared.shutdown.load(Ordering::Relaxed) {
                send_response(
                    stream,
                    &Response::Rejected {
                        retry_after_ms: 0,
                        reason: "coordinator shutting down".to_owned(),
                    },
                )?;
                return Ok(true);
            }
            // Admission control: bound concurrent campaigns fleet-wide.
            if shared.active.fetch_add(1, Ordering::AcqRel) >= shared.admit {
                shared.active.fetch_sub(1, Ordering::AcqRel);
                shared
                    .coordinator
                    .metrics
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                send_response(
                    stream,
                    &Response::Rejected {
                        retry_after_ms: RETRY_AFTER_MS,
                        reason: "coordinator at admission limit".to_owned(),
                    },
                )?;
                return Ok(true);
            }
            let result = submit_sharded(shared, stream, &spec);
            shared.active.fetch_sub(1, Ordering::AcqRel);
            result?;
            Ok(true)
        }
        Request::SubmitFuzz(spec) => {
            if shared.shutdown.load(Ordering::Relaxed) {
                send_response(
                    stream,
                    &Response::Rejected {
                        retry_after_ms: 0,
                        reason: "coordinator shutting down".to_owned(),
                    },
                )?;
                return Ok(true);
            }
            // Fuzz jobs share the campaign admission budget.
            if shared.active.fetch_add(1, Ordering::AcqRel) >= shared.admit {
                shared.active.fetch_sub(1, Ordering::AcqRel);
                shared
                    .coordinator
                    .metrics
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                send_response(
                    stream,
                    &Response::Rejected {
                        retry_after_ms: RETRY_AFTER_MS,
                        reason: "coordinator at admission limit".to_owned(),
                    },
                )?;
                return Ok(true);
            }
            let result = submit_fuzz_sharded(shared, stream, &spec);
            shared.active.fetch_sub(1, Ordering::AcqRel);
            result?;
            Ok(true)
        }
        Request::Metrics => {
            let json = shared
                .coordinator
                .metrics_json(shared.active.load(Ordering::Relaxed), shared.admit);
            send_response(stream, &Response::MetricsJson(json))?;
            Ok(true)
        }
        Request::Heartbeat { nonce } => {
            send_response(
                stream,
                &Response::HeartbeatAck {
                    nonce,
                    queued: 0,
                    running: u32::try_from(shared.active.load(Ordering::Relaxed))
                        .unwrap_or(u32::MAX),
                },
            )?;
            Ok(true)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Relaxed);
            send_response(stream, &Response::ShutdownAck)?;
            Ok(false)
        }
        _ => {
            send_response(
                stream,
                &Response::Error("unsupported by the fabric coordinator".to_owned()),
            )?;
            Ok(true)
        }
    }
}

fn submit_sharded(
    shared: &FrontShared,
    stream: &mut TcpStream,
    spec: &adas_core::CampaignSpec,
) -> std::io::Result<()> {
    if !spec.validate() {
        return send_response(stream, &Response::Error("invalid campaign spec".to_owned()));
    }
    let job_id = shared.job_ids.fetch_add(1, Ordering::Relaxed);
    send_response(
        stream,
        &Response::Accepted {
            job_id,
            cells: u32::try_from(spec.cells.len()).unwrap_or(u32::MAX),
        },
    )?;
    // The merge emits in strict grid order, so frames can stream straight
    // through; any transport error surfaces after the campaign completes
    // (the fleet keeps its work either way).
    let mut stream_err = None;
    let outcome = shared.coordinator.run_campaign(spec, |index, stats| {
        if stream_err.is_none() {
            if let Err(e) = send_response(
                stream,
                &Response::CellResult {
                    job_id,
                    cell_index: index,
                    stats: stats.clone(),
                },
            ) {
                stream_err = Some(e);
            }
        }
    });
    if let Some(e) = stream_err {
        return Err(e);
    }
    let state = match outcome {
        Ok(_) => JobState::Done,
        Err(FabricError::NoLiveWorkers | FabricError::Stalled { .. }) => JobState::Failed,
        Err(_) => JobState::Failed,
    };
    send_response(stream, &Response::JobDone { job_id, state })
}

/// Shards a fuzz-farm job across the fleet, streaming per-session
/// outcomes in seed order with the same `Accepted` → `FuzzResult`* →
/// `JobDone` shape a single daemon produces. The fleet-wide fold, repro
/// persistence, and store write-through all happen inside
/// [`Coordinator::run_fuzz_farm`].
fn submit_fuzz_sharded(
    shared: &FrontShared,
    stream: &mut TcpStream,
    spec: &adas_fuzz::FuzzJobSpec,
) -> std::io::Result<()> {
    if !spec.validate() {
        return send_response(stream, &Response::Error("invalid fuzz job spec".to_owned()));
    }
    let job_id = shared.job_ids.fetch_add(1, Ordering::Relaxed);
    send_response(
        stream,
        &Response::Accepted {
            job_id,
            cells: u32::try_from(spec.seeds.len()).unwrap_or(u32::MAX),
        },
    )?;
    let mut stream_err = None;
    let outcome = shared.coordinator.run_fuzz_farm(spec, |session| {
        if stream_err.is_none() {
            if let Err(e) = send_response(
                stream,
                &Response::FuzzResult {
                    job_id,
                    outcome: session.clone(),
                },
            ) {
                stream_err = Some(e);
            }
        }
    });
    if let Some(e) = stream_err {
        return Err(e);
    }
    let state = match outcome {
        Ok(_) => JobState::Done,
        Err(_) => JobState::Failed,
    };
    send_response(stream, &Response::JobDone { job_id, state })
}
