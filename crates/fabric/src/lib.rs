//! `adas-fabric`: multi-worker campaign sharding over the `adas-serve`
//! wire protocol.
//!
//! The serve daemon evaluates one campaign grid on one machine; fabric
//! scales that out. A **coordinator** registers with a fleet of ordinary
//! `adas-serve` daemons (each one is a **worker** — same binary, same
//! queue/executor/cache tiers), shards each campaign's cells across them
//! by content-addressed routing key, and merges the streamed results
//! back into strict grid order. Three design rules carry the system:
//!
//! - **Cache affinity.** Cells route by [`CampaignSpec::route_key`] — the
//!   model-independent prefix of the cell's cache fingerprint — over a
//!   consistent-hash ring ([`ring`]), so a re-run campaign lands every
//!   warm cell on the worker whose memo/disk tiers already hold it.
//! - **Fault tolerance.** A monitor thread ([`fleet`]) heartbeats every
//!   worker; cells owned by a dead or stalled worker are re-dispatched
//!   across the survivors in the next round ([`coordinator`]). A killed
//!   worker changes *where* cells run, never *what* they produce.
//! - **Determinism.** The merge buffer emits results by global grid
//!   index, never arrival order, and drops duplicates from re-dispatch
//!   races — a sharded campaign is bit-identical to a single-daemon run
//!   (asserted end-to-end in `tests/fabric_e2e.rs` and CI).
//!
//! [`bench`] adds the `adas-serve bench` load generator: K concurrent
//! clients against N in-process workers, publishing the saturation curve
//! to `results/SERVE_bench.json`.
//!
//! [`CampaignSpec::route_key`]: adas_core::CampaignSpec::route_key

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod coordinator;
pub mod fleet;
pub mod front;
pub mod ring;

pub use coordinator::{Coordinator, FabricConfig, FabricMetrics};
pub use fleet::{Fleet, WorkerSlot};
pub use front::CoordinatorServer;
pub use ring::HashRing;

/// Fabric-level failures (distinct from per-frame
/// [`adas_serve::ProtocolError`]s, which workers absorb per-connection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The worker list is empty (no `ADAS_FABRIC_WORKERS` / `--workers`).
    NoWorkers,
    /// Every configured worker is unreachable or dead.
    NoLiveWorkers,
    /// The campaign spec failed validation before dispatch.
    InvalidSpec,
    /// Live workers stopped making progress (persistently full queues or
    /// wedged streams) for too many consecutive rounds.
    Stalled {
        /// Cells still missing when the campaign was abandoned.
        missing: usize,
        /// Dispatch rounds executed before giving up.
        rounds: u32,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoWorkers => write!(f, "no workers configured"),
            Self::NoLiveWorkers => write!(f, "no live workers in the fleet"),
            Self::InvalidSpec => write!(f, "campaign spec failed validation"),
            Self::Stalled { missing, rounds } => write!(
                f,
                "campaign stalled with {missing} cells missing after {rounds} rounds"
            ),
        }
    }
}

impl std::error::Error for FabricError {}
