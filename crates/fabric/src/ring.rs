//! Consistent-hash ring for cell → worker routing.
//!
//! Each worker contributes `vnodes` virtual points to a 64-bit ring; a
//! cell's routing key (`CampaignSpec::route_key`, the model-independent
//! cache fingerprint) is routed to the first point at or after it,
//! wrapping at the top. Two properties matter here:
//!
//! 1. **Cache affinity** — the mapping is a pure function of the worker
//!    *identities* and the key, so across campaigns (and across
//!    coordinator restarts) a warm cell keeps landing on the node whose
//!    memo/disk tiers already hold it.
//! 2. **Minimal disruption** — when a worker dies, only the keys it owned
//!    move (to their next point on the ring); everyone else's warm cells
//!    stay put. A plain `key % n` would reshuffle almost everything.

use adas_core::Fingerprint;

/// A worker's stable ring identity, derived from its address.
#[must_use]
pub fn worker_id(addr: &str) -> u64 {
    Fingerprint::new().write_str("fabric-worker").write_str(addr).value()
}

/// 64-bit avalanche finalizer (the murmur3/splitmix constant pair).
///
/// FNV-1a is a fine identity hash but its high bits avalanche poorly on
/// short inputs, and ring placement orders points by the *full* u64 —
/// unmixed, a 4-worker ring can hand one worker half the keyspace.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// An immutable consistent-hash ring over a set of workers.
///
/// Workers are referenced by *slot*: the index into the `workers` slice
/// the ring was built from (callers keep the slice).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, slot)` sorted by position (ties broken by slot so
    /// construction order never matters).
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual points per worker id.
    #[must_use]
    pub fn new(worker_ids: &[u64], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(worker_ids.len() * vnodes);
        for (slot, &id) in worker_ids.iter().enumerate() {
            for replica in 0..vnodes {
                let pos = mix(
                    Fingerprint::new()
                        .write_str("fabric-ring")
                        .write_u64(id)
                        .write_u64(replica as u64)
                        .value(),
                );
                points.push((pos, slot));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// True when the ring has no points (no workers).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Routes a key to a worker slot. `None` on an empty ring.
    #[must_use]
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        // Mix the key too: routing keys are FNV fingerprints with the
        // same weak high bits.
        let key = mix(key);
        // First point at or after the key, wrapping to the start.
        let idx = self.points.partition_point(|&(pos, _)| pos < key);
        let (_, slot) = self.points[idx % self.points.len()];
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<u64> {
        (0..n).map(|i| worker_id(&format!("10.0.0.{i}:4747"))).collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(&ids(4), 64);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            let a = ring.route(key).expect("non-empty ring");
            let b = ring.route(key).expect("non-empty ring");
            assert_eq!(a, b);
            assert!(a < 4);
        }
        assert!(HashRing::new(&[], 64).route(7).is_none());
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(&ids(4), 64);
        let mut counts = [0usize; 4];
        for key in (0..40_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            counts[ring.route(key).expect("route")] += 1;
        }
        for (slot, &c) in counts.iter().enumerate() {
            // 4 workers × 64 vnodes: every worker should see 10k ± 60 %.
            assert!(
                (4_000..=16_000).contains(&c),
                "slot {slot} got {c}/40000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_worker_only_moves_its_own_keys() {
        let all = ids(4);
        let full = HashRing::new(&all, 64);
        // Drop slot 3; surviving slots keep their positions 0..3.
        let survivors = &all[..3];
        let reduced = HashRing::new(survivors, 64);
        let mut moved = 0usize;
        let mut owned_by_dead = 0usize;
        let total = 20_000u64;
        for key in (0..total).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            let before = full.route(key).expect("route");
            let after = reduced.route(key).expect("route");
            if before == 3 {
                owned_by_dead += 1;
            } else if before != after {
                moved += 1;
            }
        }
        assert!(owned_by_dead > 0, "slot 3 owned nothing?");
        assert_eq!(
            moved, 0,
            "keys owned by surviving workers must not move when another worker leaves"
        );
    }
}
