//! End-to-end fabric tests: a sharded campaign is bit-identical to the
//! direct `run_single` path and to a single-daemon run; a worker killed
//! mid-campaign (SIGKILL, no drain) loses no cells and produces no
//! duplicates; and garbage byte streams never wedge the coordinator or a
//! worker.

use adas_attack::FaultType;
use adas_core::job::CellSpec;
use adas_core::{run_single, ArtifactCache, CampaignSpec, CellStats, InterventionConfig};
use adas_fabric::{Coordinator, CoordinatorServer, FabricConfig};
use adas_scenarios::RunRecord;
use adas_serve::{Client, JobState, Server, ServerConfig};
use std::io::BufRead;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adas-fabric-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Binds an in-process worker daemon on an ephemeral port.
fn start_worker(name: &str) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    start_worker_with_spec(name, adas_ml::ModelSpec::default())
}

fn start_worker_with_spec(
    name: &str,
    model_spec: adas_ml::ModelSpec,
) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 8,
        cache: ArtifactCache::disabled(),
        trace_dir: tmp_dir(name),
        model_spec,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn stop_worker(addr: &str, handle: thread::JoinHandle<std::io::Result<()>>) {
    Client::connect(addr).expect("connect").shutdown().expect("shutdown ack");
    handle.join().expect("join").expect("clean exit");
}

fn fabric_config(workers: Vec<String>) -> FabricConfig {
    FabricConfig {
        workers,
        heartbeat: Duration::from_millis(250),
        deadline: Duration::from_secs(30),
        vnodes: 64,
        admit: 4,
        epoch: 1,
    }
}

/// S1 + S4, short runs — small but non-trivial, five distinct cells so a
/// 4-worker ring almost surely splits the grid.
fn sharded_spec() -> CampaignSpec {
    CampaignSpec {
        campaign_seed: 8_082_025,
        repetitions: 2,
        max_steps: 1200,
        scenario_mask: 0b00_1001,
        attack: adas_attack::AttackScheduler::Immediate,
        cells: vec![
            CellSpec {
                fault: Some(FaultType::RelativeDistance),
                interventions: InterventionConfig::none(),
            },
            CellSpec {
                fault: Some(FaultType::RelativeDistance),
                interventions: InterventionConfig::driver_and_check(),
            },
            CellSpec {
                fault: Some(FaultType::DesiredCurvature),
                interventions: InterventionConfig::driver_only(),
            },
            CellSpec {
                fault: Some(FaultType::Mixed),
                interventions: InterventionConfig::driver_and_check(),
            },
            CellSpec {
                fault: None,
                interventions: InterventionConfig::none(),
            },
        ],
    }
}

/// The reference result: the same grid evaluated in-process through
/// `run_single`, serially, exactly as the CLI harnesses do.
fn direct_cell_bytes(spec: &CampaignSpec) -> Vec<Vec<u8>> {
    let ids = spec.run_ids();
    spec.cells
        .iter()
        .map(|cell| {
            let config = spec.config_for(cell);
            let records: Vec<RunRecord> = ids
                .iter()
                .map(|id| run_single(*id, cell.fault, &config, None, spec.campaign_seed))
                .collect();
            CellStats::from_records(&records).to_bytes()
        })
        .collect()
}

#[test]
fn sharded_campaign_bit_identical_to_direct_and_single_daemon() {
    let spec = sharded_spec();
    let reference = direct_cell_bytes(&spec);

    // Single daemon over the wire.
    let (solo_addr, solo) = start_worker("solo");
    let mut client = Client::connect(&solo_addr).expect("connect solo");
    let result = client
        .run_campaign(&spec, |_, _| {})
        .expect("protocol ok")
        .expect("accepted");
    assert_eq!(result.state, JobState::Done);
    let solo_bytes: Vec<Vec<u8>> =
        result.cells.iter().map(|(_, s)| s.to_bytes()).collect();
    stop_worker(&solo_addr, solo);
    assert_eq!(
        solo_bytes, reference,
        "single-daemon run must match the direct path"
    );

    // Four-worker fabric, driven through the Coordinator API.
    let fleet: Vec<(String, _)> = (0..4).map(|i| start_worker(&format!("w{i}"))).collect();
    let addrs: Vec<String> = fleet.iter().map(|(a, _)| a.clone()).collect();
    let config = fabric_config(addrs.clone());
    let coordinator = Coordinator::connect(&config).expect("connect fleet");

    let emitted = std::sync::Mutex::new(Vec::new());
    let cells = coordinator
        .run_campaign(&spec, |index, _| emitted.lock().unwrap().push(index))
        .expect("sharded campaign");
    let fabric_bytes: Vec<Vec<u8>> = cells.iter().map(CellStats::to_bytes).collect();
    assert_eq!(
        fabric_bytes, reference,
        "sharded run must be bit-identical to the direct path"
    );
    // Strict grid-order emission, never arrival order.
    let order: Vec<u32> = (0..spec.cells.len() as u32).collect();
    assert_eq!(*emitted.lock().unwrap(), order);
    // The grid really was split across workers.
    let live = coordinator.fleet.live_slots();
    assert_eq!(live.len(), 4, "all workers should be live");

    // Warm re-run: every cell now memo-hits on the worker that owns it.
    let warm = coordinator.run_campaign(&spec, |_, _| {}).expect("warm run");
    let warm_bytes: Vec<Vec<u8>> = warm.iter().map(CellStats::to_bytes).collect();
    assert_eq!(warm_bytes, reference, "warm sharded run must not drift");
    coordinator.fleet.stop();

    // Same campaign through the TCP front-end: the stock client sees an
    // ordinary daemon that happens to shard.
    let front_coordinator =
        Coordinator::connect(&fabric_config(addrs.clone())).expect("connect fleet for front");
    let front = CoordinatorServer::bind("127.0.0.1:0", front_coordinator, 4).expect("bind front");
    let front_addr = front.local_addr().expect("front addr").to_string();
    let front_thread = thread::spawn(move || front.run());
    let mut client = Client::connect(&front_addr).expect("connect front");
    let result = client
        .run_campaign(&spec, |_, _| {})
        .expect("protocol ok")
        .expect("accepted");
    assert_eq!(result.state, JobState::Done);
    for (i, (index, _)) in result.cells.iter().enumerate() {
        assert_eq!(*index as usize, i, "front must stream in grid order");
    }
    let front_bytes: Vec<Vec<u8>> =
        result.cells.iter().map(|(_, s)| s.to_bytes()).collect();
    assert_eq!(front_bytes, reference, "front-end run must not drift");

    let metrics = client.metrics().expect("front metrics");
    assert!(metrics.contains("\"role\": \"coordinator\""), "{metrics}");
    client.shutdown().expect("front shutdown");
    front_thread.join().expect("join").expect("front exits");

    for (addr, handle) in fleet {
        stop_worker(&addr, handle);
    }
}

#[test]
fn mitigation_cells_shard_bit_identically_to_direct_and_single_daemon() {
    // One cell per ML mitigation strategy: the strategy + view count ride
    // the v2 cell codec through routing and land on (potentially)
    // different workers, and every path — direct, single daemon, sharded
    // fabric — must produce the same bytes. Workers train their resident
    // model at a small spec so the test stays cheap; the direct reference
    // trains identical weights through the same pipeline.
    let tiny = adas_ml::ModelSpec {
        hidden1: 16,
        hidden2: 8,
        seed: 9,
    };
    let spec = CampaignSpec {
        campaign_seed: 8_082_025,
        repetitions: 1,
        max_steps: 900,
        scenario_mask: 0b00_1001,
        attack: adas_attack::AttackScheduler::Immediate,
        cells: vec![
            CellSpec {
                fault: Some(FaultType::RelativeDistance),
                interventions: InterventionConfig::ml_only(),
            },
            CellSpec {
                fault: Some(FaultType::RelativeDistance),
                interventions: InterventionConfig::ensemble_only(),
            },
            CellSpec {
                fault: Some(FaultType::Mixed),
                interventions: InterventionConfig::maskcheck_only(),
            },
        ],
    };
    let model = std::sync::Arc::new(adas_bench::trained_baseline_cached(
        &ArtifactCache::disabled(),
        spec.campaign_seed,
        tiny,
    ));
    let ids = spec.run_ids();
    let reference: Vec<Vec<u8>> = spec
        .cells
        .iter()
        .map(|cell| {
            let config = spec.config_for(cell);
            let records: Vec<RunRecord> = ids
                .iter()
                .map(|id| run_single(*id, cell.fault, &config, Some(&model), spec.campaign_seed))
                .collect();
            CellStats::from_records(&records).to_bytes()
        })
        .collect();

    // Single daemon over the wire.
    let (solo_addr, solo) = start_worker_with_spec("mitig-solo", tiny);
    let mut client = Client::connect(&solo_addr).expect("connect solo");
    let result = client
        .run_campaign(&spec, |_, _| {})
        .expect("protocol ok")
        .expect("accepted");
    assert_eq!(result.state, JobState::Done);
    let solo_bytes: Vec<Vec<u8>> = result.cells.iter().map(|(_, s)| s.to_bytes()).collect();
    stop_worker(&solo_addr, solo);
    assert_eq!(
        solo_bytes, reference,
        "single-daemon mitigation cells must match the direct path"
    );

    // Two-worker fabric: mitigation variants of otherwise-equal cells
    // have distinct route keys, so they may land on different workers.
    let fleet: Vec<(String, _)> = (0..2)
        .map(|i| start_worker_with_spec(&format!("mitig-w{i}"), tiny))
        .collect();
    let addrs: Vec<String> = fleet.iter().map(|(a, _)| a.clone()).collect();
    // Lazy model training + view-based cells make the first dispatch slow
    // on a loaded machine — keep the silence deadline far above it so
    // this test never exercises the dead-worker path.
    let config = FabricConfig {
        deadline: Duration::from_secs(300),
        ..fabric_config(addrs)
    };
    let coordinator = Coordinator::connect(&config).expect("connect fleet");
    let cells = coordinator
        .run_campaign(&spec, |_, _| {})
        .expect("sharded mitigation campaign");
    let fabric_bytes: Vec<Vec<u8>> = cells.iter().map(CellStats::to_bytes).collect();
    assert_eq!(
        fabric_bytes, reference,
        "sharded mitigation cells must be bit-identical to the direct path"
    );
    coordinator.fleet.stop();
    for (addr, handle) in fleet {
        stop_worker(&addr, handle);
    }
}

#[test]
fn killed_worker_cells_are_redispatched_without_duplicates() {
    let exe = env!("CARGO_BIN_EXE_adas-serve");

    // Two worker *processes*, so one can be SIGKILLed mid-campaign.
    let spawn = |name: &str| {
        let mut child = std::process::Command::new(exe)
            .args(["worker", "--addr", "127.0.0.1:0", "--queue", "8"])
            .env("ADAS_CACHE", "off")
            .env("ADAS_TRACE_DIR", tmp_dir(name))
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn worker process");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = std::io::BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("worker exited before listening")
                .expect("read stderr");
            if let Some(rest) = line.strip_prefix("[serve] listening on ") {
                break rest.split_whitespace().next().expect("addr token").to_string();
            }
        };
        // Keep draining stderr so the child never blocks on a full pipe.
        thread::spawn(move || for _ in lines {});
        (child, addr)
    };
    let (mut victim, victim_addr) = spawn("victim");
    let (mut survivor, survivor_addr) = spawn("survivor");

    let spec = sharded_spec();
    let reference = direct_cell_bytes(&spec);

    let mut config = fabric_config(vec![victim_addr.clone(), survivor_addr.clone()]);
    config.heartbeat = Duration::from_millis(150);
    let coordinator = Coordinator::connect(&config).expect("connect fleet");
    assert_eq!(coordinator.fleet.live_slots().len(), 2);

    // SIGKILL the victim as soon as the first merged cell arrives: its
    // remaining cells must re-dispatch to the survivor.
    let merged = AtomicUsize::new(0);
    let emitted = std::sync::Mutex::new(Vec::new());
    let cells = coordinator
        .run_campaign(&spec, |index, _| {
            if merged.fetch_add(1, Ordering::Relaxed) == 0 {
                victim.kill().expect("kill victim worker");
            }
            emitted.lock().unwrap().push(index);
        })
        .expect("campaign must survive the kill");

    let fabric_bytes: Vec<Vec<u8>> = cells.iter().map(CellStats::to_bytes).collect();
    assert_eq!(
        fabric_bytes, reference,
        "re-dispatched cells must stay bit-identical to the direct path"
    );
    let order: Vec<u32> = (0..spec.cells.len() as u32).collect();
    assert_eq!(
        *emitted.lock().unwrap(),
        order,
        "merge order is grid order — no duplicates, no reordering"
    );
    // The monitor sweeps on its own thread: when the victim's buffered
    // results covered its whole shard, death is only noticed by the next
    // failed heartbeat, which can land just after the campaign returns.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while coordinator.fleet.workers[0].is_alive() && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(25));
    }
    assert!(
        !coordinator.fleet.workers[0].is_alive(),
        "the killed worker must be marked dead"
    );
    coordinator.fleet.stop();

    let _ = victim.wait();
    if let Ok(mut c) = Client::connect(&survivor_addr) {
        let _ = c.shutdown();
    }
    let _ = survivor.wait();
}

#[test]
fn garbage_frames_never_wedge_worker_or_coordinator() {
    use std::io::Write;

    let (worker_addr, worker) = start_worker("garbage-worker");
    let coordinator =
        Coordinator::connect(&fabric_config(vec![worker_addr.clone()])).expect("connect");
    let front = CoordinatorServer::bind("127.0.0.1:0", coordinator, 2).expect("bind front");
    let front_addr = front.local_addr().expect("front addr").to_string();
    let front_thread = thread::spawn(move || front.run());

    // Hostile byte streams against both tiers: bad magic, truncated
    // header, a declared-but-absent payload, and random trash.
    for target in [&worker_addr, &front_addr] {
        for garbage in [
            b"XXXXGARBAGE-GARBAGE-GARBAGE".as_slice(),
            b"AS".as_slice(),
            &[b'A', b'S', 2, 0x0A, 0xFF, 0xFF, 0xFF, 0x7F],
            &[0u8; 64],
        ] {
            let mut stream = std::net::TcpStream::connect(target).expect("connect raw");
            stream.write_all(garbage).expect("write garbage");
            drop(stream);
        }
    }

    // Both survive: a real campaign still shards and completes.
    let spec = CampaignSpec {
        campaign_seed: 42,
        repetitions: 1,
        max_steps: 600,
        scenario_mask: 0b1,
        attack: adas_attack::AttackScheduler::Immediate,
        cells: vec![CellSpec {
            fault: Some(FaultType::RelativeDistance),
            interventions: InterventionConfig::driver_and_check(),
        }],
    };
    let mut client = Client::connect(&front_addr).expect("connect front");
    let result = client
        .run_campaign(&spec, |_, _| {})
        .expect("protocol ok")
        .expect("accepted");
    assert_eq!(result.state, JobState::Done);
    assert_eq!(result.cells.len(), 1);

    client.shutdown().expect("front shutdown");
    front_thread.join().expect("join").expect("front exits");
    stop_worker(&worker_addr, worker);
}
