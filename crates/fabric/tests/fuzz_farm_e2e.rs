//! End-to-end fuzz-farm tests: the fleet-wide deduped finding set (and
//! every shrunk repro's bytes) is invariant under worker count, shard
//! routing, and a worker SIGKILLed mid-job — a 4-worker farm folds to
//! exactly what one in-process fold of the same seeds produces.

use adas_core::ArtifactCache;
use adas_fuzz::farm::{self, FuzzJobSpec, SessionOutcome};
use adas_fabric::{Coordinator, CoordinatorServer, FabricConfig};
use adas_serve::{Client, JobState, Server, ServerConfig, Submission};
use std::io::BufRead;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adas-farm-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start_worker(name: &str) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 8,
        cache: ArtifactCache::disabled(),
        trace_dir: tmp_dir(name),
        model_spec: adas_ml::ModelSpec::default(),
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn stop_worker(addr: &str, handle: thread::JoinHandle<std::io::Result<()>>) {
    Client::connect(addr).expect("connect").shutdown().expect("shutdown ack");
    handle.join().expect("join").expect("clean exit");
}

fn fabric_config(workers: Vec<String>) -> FabricConfig {
    FabricConfig {
        workers,
        heartbeat: Duration::from_millis(250),
        deadline: Duration::from_secs(60),
        vnodes: 64,
        admit: 4,
        epoch: 1,
    }
}

/// Six quick sessions, no time box (the determinism suite never
/// time-boxes: a wall-clock cutoff would make the *set of seeds that
/// finish their budget* machine-dependent).
fn farm_spec() -> FuzzJobSpec {
    FuzzJobSpec::quick(8_082_025, 6)
}

#[test]
fn deduped_findings_are_worker_count_invariant() {
    let spec = farm_spec();

    // Reference: every session in-process, folded in global seed order.
    let direct: Vec<SessionOutcome> =
        spec.seeds.iter().map(|&s| farm::run_session(&spec, s)).collect();
    let reference = farm::fold(&spec, &direct);
    assert!(
        !reference.findings.is_empty(),
        "the quick budget must surface at least one finding for this test to mean anything"
    );
    assert!(
        reference.dedup_hits > 0,
        "sessions must rediscover each other's findings so dedup is exercised"
    );

    // Single daemon over the wire.
    let (solo_addr, solo) = start_worker("fuzz-solo");
    let mut client = Client::connect(&solo_addr).expect("connect solo");
    let accepted = client.submit_fuzz(&spec).expect("protocol ok");
    let Submission::Accepted { cells, .. } = accepted else {
        panic!("daemon rejected the fuzz job: {accepted:?}");
    };
    assert_eq!(cells as usize, spec.seeds.len());
    let (solo_outcomes, state) = client.stream_fuzz(|_| {}).expect("stream");
    assert_eq!(state, JobState::Done);
    stop_worker(&solo_addr, solo);
    let solo_summary = farm::fold(&spec, &solo_outcomes);
    assert_eq!(
        solo_summary.findings, reference.findings,
        "single-daemon findings must be bit-identical to the in-process fold"
    );

    // Four-worker fabric through the Coordinator API.
    let fleet: Vec<(String, _)> = (0..4).map(|i| start_worker(&format!("fuzz-w{i}"))).collect();
    let addrs: Vec<String> = fleet.iter().map(|(a, _)| a.clone()).collect();
    let coordinator = Coordinator::connect(&fabric_config(addrs.clone())).expect("connect fleet");
    let emitted = std::sync::Mutex::new(Vec::new());
    let summary = coordinator
        .run_fuzz_farm(&spec, |o| emitted.lock().unwrap().push(o.seed))
        .expect("sharded fuzz farm");
    assert_eq!(
        summary.findings, reference.findings,
        "sharded findings (incl. shrunk cases and trace bytes) must not drift"
    );
    assert_eq!(summary.sessions, spec.seeds.len() as u64);
    assert_eq!(summary.dedup_hits, reference.dedup_hits);
    assert_eq!(
        *emitted.lock().unwrap(),
        spec.seeds,
        "sessions must stream in global seed order, never arrival order"
    );
    coordinator.fleet.stop();

    // The TCP front-end: a stock client sees the usual Accepted →
    // FuzzResult* → JobDone stream and can reproduce the fold itself.
    let front_coordinator =
        Coordinator::connect(&fabric_config(addrs)).expect("connect fleet for front");
    let front = CoordinatorServer::bind("127.0.0.1:0", front_coordinator, 4).expect("bind front");
    let front_addr = front.local_addr().expect("front addr").to_string();
    let front_thread = thread::spawn(move || front.run());
    let mut client = Client::connect(&front_addr).expect("connect front");
    let accepted = client.submit_fuzz(&spec).expect("protocol ok");
    assert!(matches!(accepted, Submission::Accepted { .. }), "{accepted:?}");
    let (front_outcomes, state) = client.stream_fuzz(|_| {}).expect("stream front");
    assert_eq!(state, JobState::Done);
    let front_summary = farm::fold(&spec, &front_outcomes);
    assert_eq!(front_summary.findings, reference.findings, "front-end run must not drift");

    let metrics = client.metrics().expect("front metrics");
    assert!(metrics.contains("\"fuzz\""), "{metrics}");
    client.shutdown().expect("front shutdown");
    front_thread.join().expect("join").expect("front exits");

    for (addr, handle) in fleet {
        stop_worker(&addr, handle);
    }
}

#[test]
fn killed_worker_sessions_are_redispatched_deterministically() {
    let exe = env!("CARGO_BIN_EXE_adas-serve");
    let spawn = |name: &str| {
        let mut child = std::process::Command::new(exe)
            .args(["worker", "--addr", "127.0.0.1:0", "--queue", "8"])
            .env("ADAS_CACHE", "off")
            .env("ADAS_TRACE_DIR", tmp_dir(name))
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn worker process");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = std::io::BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("worker exited before listening")
                .expect("read stderr");
            if let Some(rest) = line.strip_prefix("[serve] listening on ") {
                break rest.split_whitespace().next().expect("addr token").to_string();
            }
        };
        thread::spawn(move || for _ in lines {});
        (child, addr)
    };
    let (mut victim, victim_addr) = spawn("fuzz-victim");
    let (mut survivor, survivor_addr) = spawn("fuzz-survivor");

    let spec = farm_spec();
    let direct: Vec<SessionOutcome> =
        spec.seeds.iter().map(|&s| farm::run_session(&spec, s)).collect();
    let reference = farm::fold(&spec, &direct);

    let mut config = fabric_config(vec![victim_addr, survivor_addr.clone()]);
    config.heartbeat = Duration::from_millis(150);
    let coordinator = Coordinator::connect(&config).expect("connect fleet");
    assert_eq!(coordinator.fleet.live_slots().len(), 2);

    // SIGKILL the victim when the first session lands: its remaining
    // seeds must re-dispatch to the survivor and fold identically.
    let first = std::sync::atomic::AtomicBool::new(true);
    let summary = coordinator
        .run_fuzz_farm(&spec, |_| {
            if first.swap(false, std::sync::atomic::Ordering::Relaxed) {
                victim.kill().expect("kill victim worker");
            }
        })
        .expect("farm must survive the kill");
    assert_eq!(
        summary.findings, reference.findings,
        "re-dispatched sessions must fold to the same deduped finding set"
    );
    assert_eq!(summary.sessions, spec.seeds.len() as u64);
    coordinator.fleet.stop();

    let _ = victim.wait();
    if let Ok(mut c) = Client::connect(&survivor_addr) {
        let _ = c.shutdown();
    }
    let _ = survivor.wait();
}
