//! Characterises the PANDA −3.5 m/s² accel-clamp defect.
//!
//! Two passes, both deterministic:
//!
//! 1. **Farm sweep** — a multi-session fuzz job (the exact code path a
//!    `SubmitFuzz` submission runs on a worker: [`farm::run_session`] per
//!    seed, [`farm::fold`] for fleet-wide dedup) over a bigger budget than
//!    the quick default, reporting every deduped finding whose differential
//!    rerun blames the `safety-check` channel — i.e. runs where the clamp
//!    *caused* the accident it guards against. `--repros DIR` persists the
//!    shrunk clamp repros exactly as the farm coordinator would.
//!
//! 2. **Envelope grid** — the same differential the intervention-regression
//!    oracle runs (severity with the check vs. with it ablated), swept over
//!    ego-speed offset × road friction on the canonical defect cell
//!    (S4/Near, Driver+Check, no attack). The printed map is the defect
//!    envelope quoted in EXPERIMENTS.md.
//!
//! ```bash
//! cargo run --release -p adas-fuzz --example clamp_envelope
//! cargo run --release -p adas-fuzz --example clamp_envelope -- --repros /tmp/clamp
//! ```

use adas_fuzz::case::{run_case_with, FuzzCase};
use adas_fuzz::farm::{self, FuzzJobSpec};
use adas_fuzz::{severity, OracleKind};
use adas_scenarios::{InitialPosition, ScenarioId};

/// First session seed of the sweep; chosen once, then pinned so the
/// committed repros (file stems include the seed) stay reproducible.
const SWEEP_SEED: u64 = 8_082_100;
/// Sessions in the sweep (seeds `SWEEP_SEED..SWEEP_SEED + SESSIONS`).
const SESSIONS: usize = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let repro_dir = args
        .iter()
        .position(|a| a == "--repros")
        .map(|i| args.get(i + 1).expect("--repros needs a directory").clone());

    // Pass 1: the SubmitFuzz-shaped sweep. No time box — the envelope
    // must not depend on the machine's clock.
    let spec = FuzzJobSpec {
        seeds: (0..SESSIONS as u64).map(|i| SWEEP_SEED + i).collect(),
        max_runs: 900,
        batch: 24,
        shrink_steps: 8,
        max_secs_ms: 0,
    };
    println!(
        "farm sweep: {} sessions x {} runs (seeds {}..{})",
        spec.seeds.len(),
        spec.max_runs,
        SWEEP_SEED,
        SWEEP_SEED + SESSIONS as u64
    );
    let outcomes: Vec<_> = spec
        .seeds
        .iter()
        .map(|&seed| {
            let o = farm::run_session(&spec, seed);
            println!(
                "  session {seed}: {} runs · corpus {} · {} findings",
                o.runs,
                o.corpus,
                o.findings.len()
            );
            o
        })
        .collect();
    let summary = farm::fold(&spec, &outcomes);
    println!(
        "\nfolded: {} runs · {} deduped findings ({} dedup hits)",
        summary.runs,
        summary.findings.len(),
        summary.dedup_hits
    );
    for (oracle, n) in OracleKind::ALL.iter().zip(summary.by_oracle()) {
        if n > 0 {
            println!("  {:<24} {n}", oracle.name());
        }
    }

    // The clamp defect shows up as the differential oracle blaming the
    // safety-check channel: severity is *lower* with the check ablated.
    let clamp: Vec<_> = summary
        .findings
        .iter()
        .filter(|f| {
            f.oracle == OracleKind::InterventionRegression && f.detail.contains("safety-check")
        })
        .collect();
    println!("\nclamp-blamed findings ({}):", clamp.len());
    for f in &clamp {
        println!(
            "  seed {} sig {} {} — d_v={:+.2} m/s mu={:.2} rep {}\n    {}",
            f.session_seed,
            f.signature,
            f.shrunk.label(),
            f.shrunk.ego_speed_delta,
            f.shrunk.friction,
            f.shrunk.repetition,
            f.detail
        );
    }
    if let Some(dir) = repro_dir {
        let owned: Vec<_> = clamp.iter().map(|f| (*f).clone()).collect();
        let paths = farm::save_repros(&owned, dir.as_ref()).expect("persist repros");
        println!("\nwrote {} repros under {dir}", paths.len());
    }

    // Pass 2: the envelope grid. Same differential as the oracle, on the
    // canonical cell: S4/Near (lead brakes to a stop), Driver+Check
    // (iv_row 1), no attack — the defect needs no adversary at all.
    println!("\nenvelope: S4/Near Driver+Check, benign, severity(with check) > severity(without)");
    println!("rows: ego_speed_delta -8..+8 m/s · cols: friction 0.20..1.00 ('#' = defect fires)\n");
    let mut fired = Vec::new();
    print!("        ");
    for c in 0..=16 {
        print!("{}", if c % 4 == 0 { 'v' } else { ' ' });
    }
    println!("  (mu 0.20, 0.40, 0.60, 0.80, 1.00)");
    for r in (-16..=16).rev() {
        let dv = f64::from(r) * 0.5;
        print!("  {dv:+5.1}  ");
        for c in 0..=16 {
            let mu = 0.2 + f64::from(c) * 0.05;
            let mut case =
                FuzzCase::baseline(ScenarioId::S4, InitialPosition::Near, 1, None);
            case.ego_speed_delta = dv;
            case.friction = mu;
            let with_check = case.config();
            let mut without = with_check;
            without.interventions.safety_check = false;
            let (base, _) = run_case_with(&case, SWEEP_SEED, &with_check);
            let (ablated, _) = run_case_with(&case, SWEEP_SEED, &without);
            if severity(&base) > severity(&ablated) {
                fired.push((dv, mu));
                print!("#");
            } else {
                print!(".");
            }
        }
        println!();
    }
    if fired.is_empty() {
        println!("\nthe defect never fired on the grid");
        return;
    }
    let (dv_min, dv_max) = fired
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(dv, _)| (lo.min(dv), hi.max(dv)));
    let (mu_min, mu_max) = fired
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, mu)| (lo.min(mu), hi.max(mu)));
    println!(
        "\ndefect envelope: {} / {} grid points · ego_speed_delta in [{dv_min:+.1}, {dv_max:+.1}] m/s \
         · friction in [{mu_min:.2}, {mu_max:.2}]",
        fired.len(),
        33 * 17,
    );
}
