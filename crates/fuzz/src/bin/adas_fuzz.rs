//! `adas-fuzz` — coverage-guided scenario fuzzer for the intervention stack.
//!
//! ```text
//! adas-fuzz run [--seed N] [--max-runs N] [--batch N] [--max-secs S]
//!               [--shrink-steps N] [--repro-dir DIR]
//! adas-fuzz replay <repro.toml>...
//! ```
//!
//! `run` fuzzes the campaign parameter space until the run (or wall-clock)
//! budget is spent, prints the coverage-growth curve and every shrunk
//! finding, and persists each finding as `DIR/<oracle>-<fingerprint>.toml`
//! plus its flight-recorder trace. Exit 0 on a completed session, 2 on
//! usage errors. Flags default from `ADAS_FUZZ_SEED`, `ADAS_FUZZ_MAX_RUNS`,
//! `ADAS_FUZZ_BATCH`, `ADAS_FUZZ_MAX_SECS`, `ADAS_FUZZ_SHRINK_STEPS` and
//! `ADAS_FUZZ_DIR`.
//!
//! `replay` re-checks stored repros: the violation must still fire, the
//! behavioural signature must match, and the fresh run must be
//! bit-identical to the recorded trace. Exit 0 = all pass, 1 = any repro
//! failed, 2 = error.

use adas_fuzz::{fuzz, run_case, FuzzConfig, Repro};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;

const USAGE: &str = "adas-fuzz — coverage-guided scenario fuzzer

USAGE:
  adas-fuzz run [--seed N] [--max-runs N] [--batch N] [--max-secs S]
                [--shrink-steps N] [--repro-dir DIR]
      Fuzz the campaign parameter space. Findings are shrunk and written
      to DIR (default repros) as replayable .toml + trace files.
      Flag defaults come from ADAS_FUZZ_SEED, ADAS_FUZZ_MAX_RUNS,
      ADAS_FUZZ_BATCH, ADAS_FUZZ_MAX_SECS, ADAS_FUZZ_SHRINK_STEPS,
      ADAS_FUZZ_DIR.

  adas-fuzz replay <repro.toml>...
      Re-check stored repros (oracle fires, signature matches, trace
      bit-identical). Exit 0 = all pass, 1 = failures, 2 = error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "replay" => cmd_replay(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Flag-value extractor: returns the value following `flag` and removes
/// both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Resolves a setting: explicit flag beats environment beats default.
/// Flag values are hard errors when malformed; environment values go
/// through the shared hardened parser (`adas_core::env`), which warns and
/// falls back to the default on empty or garbage input.
fn resolve<T: FromStr>(
    flag_value: Option<String>,
    env: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value {
        Some(s) => s.parse().map_err(|e| format!("{env}: {e}")),
        None => Ok(adas_core::env::parse(env, "a number").unwrap_or(default)),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let result = (|| -> Result<(), String> {
        let defaults = FuzzConfig::default();
        let config = FuzzConfig {
            seed: resolve(take_flag(&mut args, "--seed")?, "ADAS_FUZZ_SEED", defaults.seed)?,
            max_runs: resolve(
                take_flag(&mut args, "--max-runs")?,
                "ADAS_FUZZ_MAX_RUNS",
                defaults.max_runs,
            )?,
            batch: resolve(take_flag(&mut args, "--batch")?, "ADAS_FUZZ_BATCH", defaults.batch)?,
            max_secs: match take_flag(&mut args, "--max-secs")? {
                Some(s) => Some(s.parse::<f64>().map_err(|e| format!("--max-secs: {e}"))?),
                None => adas_core::env::parse("ADAS_FUZZ_MAX_SECS", "seconds"),
            },
            shrink_steps: resolve(
                take_flag(&mut args, "--shrink-steps")?,
                "ADAS_FUZZ_SHRINK_STEPS",
                defaults.shrink_steps,
            )?,
        };
        let dir = take_flag(&mut args, "--repro-dir")?.map_or_else(
            || adas_core::env::path_or("ADAS_FUZZ_DIR", "repros"),
            PathBuf::from,
        );
        if !args.is_empty() {
            return Err(format!("unexpected arguments: {args:?}"));
        }

        println!(
            "fuzzing: seed {} · {} run budget · batch {} · {} threads{}",
            config.seed,
            config.max_runs,
            config.batch,
            adas_core::parallel::thread_count(config.batch),
            config
                .max_secs
                .map_or_else(String::new, |s| format!(" · {s} s wall budget")),
        );
        let report = fuzz(&config);
        println!(
            "\n{} runs in {} batches · corpus {} signatures{}",
            report.runs,
            report.batches,
            report.corpus.len(),
            if report.hit_time_budget {
                " · stopped on wall-clock budget"
            } else {
                ""
            }
        );
        println!("coverage growth (runs → signatures):");
        for (runs, size) in &report.coverage_growth {
            println!("  {runs:>6} → {size}");
        }

        if report.findings.is_empty() {
            println!("\nno oracle violations found");
            return Ok(());
        }
        println!("\n{} finding(s):", report.findings.len());
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        for finding in &report.findings {
            let (_, trace) = run_case(&finding.shrunk, config.seed);
            let mut repro = Repro {
                case: finding.shrunk,
                seed: config.seed,
                oracle: finding.oracle,
                detail: finding.violation.to_string(),
                signature: finding.signature.0,
                trace_file: None,
            };
            let path = repro.save(&dir, &trace)?;
            println!(
                "  {} · found {} · shrunk {} · {}",
                finding.oracle.name(),
                finding.found.label(),
                finding.shrunk.label(),
                finding.signature.describe()
            );
            println!("    {}", finding.violation);
            println!("    repro: {}", path.display());
        }
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("error: replay needs at least one repro file\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let (mut passed, mut failed, mut errors) = (0u32, 0u32, 0u32);
    for path in args {
        let path = Path::new(path);
        let repro = match Repro::load(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ERROR  {e}");
                errors += 1;
                continue;
            }
        };
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        match repro.verify(base) {
            Ok(()) => {
                println!(
                    "PASS   {} · {} · {}",
                    path.display(),
                    repro.oracle.name(),
                    repro.case.label()
                );
                passed += 1;
            }
            Err(e) => {
                eprintln!("FAIL   {} · {e}", path.display());
                failed += 1;
            }
        }
    }
    println!("\n{passed} passed, {failed} failed, {errors} errors");
    if errors > 0 {
        ExitCode::from(2)
    } else if failed > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
