//! One point in the fuzzer's search space, and its deterministic execution.

use adas_attack::{AttackScheduler, ContextTrigger, FaultInjector, FaultSpec, FaultType};
use adas_core::replay::trace_header;
use adas_core::{Platform, PlatformConfig, RunEnd, RunEnd2, RunId};
use adas_core::{Fingerprint, InterventionConfig};
use adas_recorder::{
    EndReason, RecordMode, Trace, TraceOutcome, TraceWriter,
};
use adas_scenarios::{InitialPosition, RunRecord, ScenarioId, ScenarioSetup};
use adas_simulator::units::mph;
use adas_simulator::{DeterministicRng, FrictionCondition, NpcTrigger};

/// Steps per fuzz run (50 s): long enough for every scenario's event plus
/// the attack window, short enough to keep thousands of runs cheap.
pub const FUZZ_MAX_STEPS: usize = 5_000;

/// Inclusive clamp range for [`FuzzCase::ego_speed_delta`], m/s.
pub const EGO_SPEED_DELTA_RANGE: (f64, f64) = (-8.0, 8.0);
/// Inclusive clamp range for [`FuzzCase::friction`] (surface scale).
pub const FRICTION_RANGE: (f64, f64) = (0.2, 1.0);
/// Inclusive clamp range for [`FuzzCase::attack_start_offset`], metres.
pub const ATTACK_START_RANGE: (f64, f64) = (-150.0, 300.0);
/// Inclusive clamp range for [`FuzzCase::attack_duration`], seconds.
pub const ATTACK_DURATION_RANGE: (f64, f64) = (2.0, 40.0);
/// Inclusive clamp range for [`FuzzCase::attack_intensity`] (scale).
pub const ATTACK_INTENSITY_RANGE: (f64, f64) = (0.25, 3.0);
/// Inclusive clamp range for [`FuzzCase::trigger_offset`], metres.
pub const TRIGGER_OFFSET_RANGE: (f64, f64) = (-10.0, 10.0);
/// Inclusive clamp range for [`FuzzCase::sched_ttc`], seconds. 0 keeps the
/// paper's immediate (always-armed) attack; positive values hold the patch
/// back until ground-truth TTC first drops to the threshold.
pub const SCHED_TTC_RANGE: (f64, f64) = (0.0, 8.0);

/// Intervention rows the fuzzer explores: Table VI rows 0–6 (everything
/// except the ML row, which needs trained weights).
pub const IV_ROWS: usize = 7;

fn clamp(v: f64, range: (f64, f64)) -> f64 {
    if v.is_nan() {
        return range.0;
    }
    v.clamp(range.0, range.1)
}

/// One fuzz case: discrete grid coordinates plus continuous overrides on
/// top of the scenario's own per-repetition jitter.
#[derive(Clone, Copy, PartialEq)]
pub struct FuzzCase {
    /// NHTSA scenario.
    pub scenario: ScenarioId,
    /// Spawn position / road pairing.
    pub position: InitialPosition,
    /// Index into [`InterventionConfig::table_vi_rows`] (0–6; ML excluded).
    pub iv_row: usize,
    /// Injected fault, if any.
    pub fault: Option<FaultType>,
    /// Repetition index: selects the scenario's jitter stream.
    pub repetition: u32,
    /// Added to the scenario's jittered ego/cruise speed, m/s.
    pub ego_speed_delta: f64,
    /// Road-surface friction scale (1.0 = dry default).
    pub friction: f64,
    /// Added to the scenario's suggested road-patch arc length, metres.
    pub attack_start_offset: f64,
    /// Road-patch poisoning duration once triggered, seconds.
    pub attack_duration: f64,
    /// Scale on the fault magnitudes (RD offset tiers, curvature
    /// deviation); 1.0 = the paper's values.
    pub attack_intensity: f64,
    /// Sign of the induced lateral drift (+1 left, −1 right).
    pub attack_direction: f64,
    /// Added to every NPC trigger threshold (gap metres / event seconds),
    /// shifting when leads brake, cut in, or change lanes.
    pub trigger_offset: f64,
    /// Context-aware attack scheduling (Zhou et al.): 0 = the paper's
    /// always-armed patch, > 0 = hold the patch back until ground-truth
    /// TTC first drops to this many seconds.
    pub sched_ttc: f64,
}

// Manual Debug: the legacy fields render exactly as the old derive did and
// `sched_ttc` is appended only when the scheduler is active, so the
// `fingerprint()` of every pre-scheduler case — and therefore the file
// stems of committed repros — stay byte-identical.
impl std::fmt::Debug for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("FuzzCase");
        s.field("scenario", &self.scenario)
            .field("position", &self.position)
            .field("iv_row", &self.iv_row)
            .field("fault", &self.fault)
            .field("repetition", &self.repetition)
            .field("ego_speed_delta", &self.ego_speed_delta)
            .field("friction", &self.friction)
            .field("attack_start_offset", &self.attack_start_offset)
            .field("attack_duration", &self.attack_duration)
            .field("attack_intensity", &self.attack_intensity)
            .field("attack_direction", &self.attack_direction)
            .field("trigger_offset", &self.trigger_offset);
        if self.sched_ttc != 0.0 {
            s.field("sched_ttc", &self.sched_ttc);
        }
        s.finish()
    }
}

impl FuzzCase {
    /// The baseline case for a grid cell: paper-default continuous
    /// parameters (no overrides).
    #[must_use]
    pub fn baseline(
        scenario: ScenarioId,
        position: InitialPosition,
        iv_row: usize,
        fault: Option<FaultType>,
    ) -> Self {
        Self {
            scenario,
            position,
            iv_row: iv_row % IV_ROWS,
            fault,
            repetition: 0,
            ego_speed_delta: 0.0,
            friction: 1.0,
            attack_start_offset: 0.0,
            attack_duration: 12.0,
            attack_intensity: 1.0,
            attack_direction: 1.0,
            trigger_offset: 0.0,
            sched_ttc: 0.0,
        }
    }

    /// Returns the case with every continuous parameter clamped into its
    /// search range and the direction normalised to ±1.
    #[must_use]
    pub fn clamped(mut self) -> Self {
        self.iv_row %= IV_ROWS;
        self.ego_speed_delta = clamp(self.ego_speed_delta, EGO_SPEED_DELTA_RANGE);
        self.friction = clamp(self.friction, FRICTION_RANGE);
        self.attack_start_offset = clamp(self.attack_start_offset, ATTACK_START_RANGE);
        self.attack_duration = clamp(self.attack_duration, ATTACK_DURATION_RANGE);
        self.attack_intensity = clamp(self.attack_intensity, ATTACK_INTENSITY_RANGE);
        self.attack_direction = if self.attack_direction < 0.0 { -1.0 } else { 1.0 };
        self.trigger_offset = clamp(self.trigger_offset, TRIGGER_OFFSET_RANGE);
        self.sched_ttc = clamp(self.sched_ttc, SCHED_TTC_RANGE);
        self
    }

    /// Linear interpolation of the continuous parameters: `t = 0` is
    /// `from`, `t = 1` is `self`. Discrete coordinates (and the drift
    /// direction) stay at `self`'s values — shrinking moves through the
    /// continuous space only.
    #[must_use]
    pub fn lerp_from(&self, from: &FuzzCase, t: f64) -> Self {
        let mix = |a: f64, b: f64| a + (b - a) * t;
        Self {
            ego_speed_delta: mix(from.ego_speed_delta, self.ego_speed_delta),
            friction: mix(from.friction, self.friction),
            attack_start_offset: mix(from.attack_start_offset, self.attack_start_offset),
            attack_duration: mix(from.attack_duration, self.attack_duration),
            attack_intensity: mix(from.attack_intensity, self.attack_intensity),
            sched_ttc: mix(from.sched_ttc, self.sched_ttc),
            ..*self
        }
        .clamped()
    }

    /// The intervention row this case runs under.
    #[must_use]
    pub fn interventions(&self) -> InterventionConfig {
        InterventionConfig::table_vi_rows()[self.iv_row % IV_ROWS]
    }

    /// The platform configuration this case runs under.
    #[must_use]
    pub fn config(&self) -> PlatformConfig {
        PlatformConfig {
            interventions: self.interventions(),
            friction: FrictionCondition::Custom(self.friction),
            max_steps: FUZZ_MAX_STEPS,
            attack: if self.sched_ttc > 0.0 {
                AttackScheduler::Context(ContextTrigger::ttc(self.sched_ttc))
            } else {
                AttackScheduler::Immediate
            },
            ..PlatformConfig::default()
        }
    }

    /// Packed discrete coordinates (scenario, position, intervention row,
    /// fault): the cell key used for finding dedup and benign-neighbour
    /// lookup.
    #[must_use]
    pub fn cell_key(&self) -> u64 {
        let fault = match self.fault {
            None => 0u64,
            Some(FaultType::RelativeDistance) => 1,
            Some(FaultType::DesiredCurvature) => 2,
            Some(FaultType::Mixed) => 3,
        };
        (self.scenario.index() as u64) << 8
            | (self.position.index() as u64) << 7
            | ((self.iv_row % IV_ROWS) as u64) << 4
            | fault << 2
            | u64::from(self.sched_ttc > 0.0)
    }

    /// Stable fingerprint of the full case (discrete + continuous), used
    /// for repro file names.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .write_str("fuzz-case-v1")
            .write_debug(self)
            .value()
    }

    /// Compact human label: `S4/Near/Driver+Check/RelativeDistance`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{:?}/{}/{}",
            self.scenario.label(),
            self.position,
            self.interventions().label(),
            self.fault.map_or("Benign".to_owned(), |f| format!("{f:?}")),
        )
    }
}

/// Executes one fuzz case under its own configuration.
#[must_use]
pub fn run_case(case: &FuzzCase, seed: u64) -> (RunRecord, Trace) {
    run_case_with(case, seed, &case.config())
}

/// Executes one fuzz case under an explicit configuration (the
/// differential oracle reruns the same case with one intervention
/// disabled).
///
/// RNG derivation, scenario construction, and stepping mirror
/// `adas_core::run_single`, so a fuzz case with all-default continuous
/// parameters is bit-identical to the corresponding campaign run.
#[must_use]
pub fn run_case_with(case: &FuzzCase, seed: u64, config: &PlatformConfig) -> (RunRecord, Trace) {
    let mut platform = case_platform(case, seed, config);
    let end = loop {
        let _ = platform.step();
        if let RunEnd2::Yes(end) = platform.finished() {
            break end;
        }
    };
    finish_case(case, seed, config, end, platform)
}

/// Builds the fully-wired platform for one fuzz case (full-mode trace
/// writer attached) without stepping it — the seam the lockstep batch
/// executor drives. Construction is shared with [`run_case_with`], so a
/// batched case is bit-identical to a scalar one.
#[must_use]
pub(crate) fn case_platform(case: &FuzzCase, seed: u64, config: &PlatformConfig) -> Platform {
    let id = RunId {
        scenario: case.scenario,
        position: case.position,
        repetition: case.repetition,
    };
    let mut rng = DeterministicRng::for_run(
        seed,
        id.scenario.index() as u64,
        id.position.index() as u64,
        u64::from(id.repetition),
    );
    let mut setup = ScenarioSetup::build(case.scenario, case.position, &mut rng);

    // Continuous overrides on top of the per-repetition jitter.
    setup.ego_speed = (setup.ego_speed + case.ego_speed_delta).clamp(mph(30.0), mph(85.0));
    setup.patch_start_s =
        (setup.patch_start_s + case.attack_start_offset).max(setup.ego_start_s + 30.0);
    if case.trigger_offset != 0.0 {
        for npc in &mut setup.npcs {
            for phase in &mut npc.plan_mut().phases {
                match &mut phase.trigger {
                    NpcTrigger::Immediately => {}
                    // Same knob shifts both trigger families: metres of gap
                    // or (scaled) seconds of event time.
                    NpcTrigger::AtTime(t) => *t = (*t + case.trigger_offset).max(0.0),
                    NpcTrigger::GapToEgoBelow(g) => *g = (*g + case.trigger_offset).max(2.0),
                }
            }
        }
    }

    let injector = match case.fault {
        Some(ft) => {
            let mut spec = FaultSpec::new(ft, setup.patch_start_s).scheduled(config.attack);
            spec.rd.offset_scale = case.attack_intensity;
            spec.curvature.deviation *= case.attack_intensity;
            spec.curvature.direction = case.attack_direction;
            spec.curvature.duration = Some(case.attack_duration);
            FaultInjector::new(spec)
        }
        None => FaultInjector::disabled(),
    };

    let mut platform = Platform::new(&setup, *config, injector, None, &mut rng);
    let mut writer = TraceWriter::new(RecordMode::Full);
    writer.reserve(config.max_steps);
    platform.attach_writer(writer);
    platform
}

/// Seals a finished case platform: extracts the run record and wraps the
/// captured samples into a [`Trace`]. Counterpart of [`case_platform`].
#[must_use]
pub(crate) fn finish_case(
    case: &FuzzCase,
    seed: u64,
    config: &PlatformConfig,
    end: RunEnd,
    mut platform: Platform,
) -> (RunRecord, Trace) {
    let id = RunId {
        scenario: case.scenario,
        position: case.position,
        repetition: case.repetition,
    };
    let header = trace_header(id, case.fault, config, 0, seed);
    let record = platform.record();
    let writer = platform.take_writer().expect("writer was attached");
    let outcome = TraceOutcome {
        end: match end {
            RunEnd::TimeLimit => EndReason::TimeLimit,
            RunEnd::Accident => EndReason::Accident,
            RunEnd::Quiescent => EndReason::Quiescent,
        },
        accident: record.accident,
        accident_time: record.accident_time,
        fault_start: record.fault_start,
        min_ttc: record.min_ttc,
        min_lane_line_distance: record.min_lane_line_distance,
        steps: record.steps,
    };
    (record, writer.finish(header, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> FuzzCase {
        FuzzCase::baseline(
            ScenarioId::S1,
            InitialPosition::Near,
            1,
            Some(FaultType::RelativeDistance),
        )
    }

    #[test]
    fn clamping_bounds_every_parameter() {
        let mut c = case();
        c.ego_speed_delta = 1e9;
        c.friction = -3.0;
        c.attack_duration = f64::NAN;
        c.attack_direction = -0.2;
        c.iv_row = 23;
        let c = c.clamped();
        assert_eq!(c.ego_speed_delta, EGO_SPEED_DELTA_RANGE.1);
        assert_eq!(c.friction, FRICTION_RANGE.0);
        assert_eq!(c.attack_duration, ATTACK_DURATION_RANGE.0);
        assert_eq!(c.attack_direction, -1.0);
        assert!(c.iv_row < IV_ROWS);
    }

    #[test]
    fn lerp_endpoints_recover_inputs() {
        let a = case();
        let mut b = case();
        b.ego_speed_delta = 4.0;
        b.friction = 0.5;
        assert_eq!(b.lerp_from(&a, 0.0).friction, 1.0);
        assert_eq!(b.lerp_from(&a, 1.0).friction, 0.5);
        // Discrete coordinates always come from the violating side.
        assert_eq!(b.lerp_from(&a, 0.0).iv_row, b.iv_row);
    }

    #[test]
    fn same_case_same_seed_is_bit_identical() {
        let c = case();
        let (r1, t1) = run_case(&c, 99);
        let (r2, t2) = run_case(&c, 99);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
        assert!(adas_recorder::diff_traces(&t1, &t2).is_identical());
    }

    #[test]
    fn legacy_fingerprints_survive_the_scheduler_field() {
        // The Debug rendering (and therefore `fingerprint()`, and therefore
        // committed repro file stems) of an unscheduled case must not
        // mention the new field; a scheduled case must.
        let c = case();
        assert_eq!(c.sched_ttc, 0.0);
        assert!(!format!("{c:?}").contains("sched_ttc"));
        let mut s = case();
        s.sched_ttc = 2.5;
        assert!(format!("{s:?}").contains("sched_ttc"));
        assert_ne!(c.fingerprint(), s.fingerprint());
    }

    #[test]
    fn scheduler_reaches_the_config_and_the_cell_key() {
        let mut s = case();
        s.sched_ttc = 3.0;
        assert!(case().config().attack.is_immediate());
        match s.config().attack {
            AttackScheduler::Context(t) => assert_eq!(t.ttc_below, Some(3.0)),
            AttackScheduler::Immediate => panic!("scheduled case lost its trigger"),
        }
        // Scheduling moves the case to a different grid cell (bit 0), so
        // findings and benign neighbours never mix the two attack modes.
        assert_ne!(case().cell_key(), s.cell_key());
        assert_eq!(case().cell_key() | 1, s.cell_key());
    }

    #[test]
    fn cell_keys_distinguish_grid_cells() {
        let a = case();
        let mut b = case();
        b.fault = Some(FaultType::Mixed);
        let mut c = case();
        c.iv_row = 3;
        assert_ne!(a.cell_key(), b.cell_key());
        assert_ne!(a.cell_key(), c.cell_key());
        // Continuous parameters do not move the cell.
        let mut d = case();
        d.friction = 0.4;
        assert_eq!(a.cell_key(), d.cell_key());
    }
}
