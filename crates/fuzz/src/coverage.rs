//! Behavioural coverage signatures.
//!
//! AFL-style edge coverage does not exist in a physics simulation, so the
//! corpus is keyed by *behaviour*: which hazards and accident class the run
//! produced, which interventions fired, how the run ended, and coarse
//! buckets of the severity-relevant continuous observables (minimum TTC,
//! minimum lane-line distance). A mutant joins the corpus only when its
//! signature is new — i.e. it made the stack do something no retained case
//! had made it do — which is what drives the search toward the interesting
//! regions between grid cells.

use crate::case::FuzzCase;
use adas_recorder::EndReason;
use adas_scenarios::{AccidentKind, RunRecord};

/// Packed behavioural signature of one run (includes the grid cell, so
/// behaviourally-identical outcomes in different cells both survive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature(pub u64);

/// Bucket index for a minimum TTC, seconds. Monotone: tighter TTC → lower
/// bucket. Infinity (no closing lead) lands in the top bucket.
#[must_use]
pub fn ttc_bucket(min_ttc: f64) -> u64 {
    if min_ttc < 0.5 {
        0
    } else if min_ttc < 1.0 {
        1
    } else if min_ttc < 2.0 {
        2
    } else if min_ttc < 4.0 {
        3
    } else if min_ttc < 8.0 {
        4
    } else {
        5
    }
}

/// Bucket index for a minimum edge-to-lane-line distance, metres. NaN
/// (never measured) lands in the top bucket.
#[must_use]
pub fn lane_bucket(min_lane: f64) -> u64 {
    if min_lane.is_nan() {
        5
    } else if min_lane < 0.0 {
        0
    } else if min_lane < 0.1 {
        1
    } else if min_lane < 0.3 {
        2
    } else if min_lane < 0.8 {
        3
    } else {
        4
    }
}

/// Bucket index for the context-trigger TTC threshold, seconds. 0 is the
/// paper's immediate (always-armed) attack; positive thresholds grade into
/// four bands so a patch armed deep inside the hazard horizon and one armed
/// at cruise distance stop colliding into a single corpus bucket (the PR 9
/// scheduler gene previously only contributed its on/off bit via the cell
/// key).
#[must_use]
pub fn sched_bucket(sched_ttc: f64) -> u64 {
    if !(sched_ttc > 0.0) {
        0
    } else if sched_ttc < 1.5 {
        1
    } else if sched_ttc < 3.0 {
        2
    } else if sched_ttc < 5.0 {
        3
    } else {
        4
    }
}

fn accident_code(a: Option<AccidentKind>) -> u64 {
    match a {
        None => 0,
        Some(AccidentKind::LaneViolation) => 1,
        Some(AccidentKind::ForwardCollision) => 2,
    }
}

fn end_code(end: EndReason) -> u64 {
    match end {
        EndReason::TimeLimit => 0,
        EndReason::Accident => 1,
        EndReason::Quiescent => 2,
    }
}

impl Signature {
    /// Computes the signature of one finished run.
    #[must_use]
    pub fn of(case: &FuzzCase, record: &RunRecord, end: EndReason) -> Self {
        // The scheduler bucket sits above the cell key (which tops out at
        // bit 26 after the shift), so every immediate-attack signature —
        // including the ones pinned inside committed repro files — is
        // bit-identical to the pre-bucket encoding.
        let mut bits = sched_bucket(case.sched_ttc) << 27;
        bits |= case.cell_key() << 16;
        bits |= u64::from(record.h1_time.is_some()) << 15;
        bits |= u64::from(record.h2_time.is_some()) << 14;
        bits |= accident_code(record.accident) << 12;
        bits |= end_code(end) << 10;
        bits |= u64::from(record.aeb_trigger.is_some()) << 9;
        bits |= u64::from(record.driver_brake_trigger.is_some()) << 8;
        bits |= u64::from(record.driver_steer_trigger.is_some()) << 7;
        bits |= u64::from(record.ml_activated) << 6;
        bits |= ttc_bucket(record.min_ttc) << 3;
        bits |= lane_bucket(record.min_lane_line_distance);
        Signature(bits)
    }

    /// Renders the behavioural half of the signature for CLI output, e.g.
    /// `H1 A1 end=Accident aeb,driver-brake ttc<0.5 lane<0.1`.
    #[must_use]
    pub fn describe(self) -> String {
        let b = self.0;
        let mut parts = Vec::new();
        if b >> 15 & 1 == 1 {
            parts.push("H1".to_owned());
        }
        if b >> 14 & 1 == 1 {
            parts.push("H2".to_owned());
        }
        match b >> 12 & 3 {
            1 => parts.push("A2".to_owned()),
            2 => parts.push("A1".to_owned()),
            _ => {}
        }
        parts.push(format!(
            "end={}",
            match b >> 10 & 3 {
                1 => "Accident",
                2 => "Quiescent",
                _ => "TimeLimit",
            }
        ));
        let mut fired = Vec::new();
        if b >> 9 & 1 == 1 {
            fired.push("aeb");
        }
        if b >> 8 & 1 == 1 {
            fired.push("driver-brake");
        }
        if b >> 7 & 1 == 1 {
            fired.push("driver-steer");
        }
        if b >> 6 & 1 == 1 {
            fired.push("ml");
        }
        if !fired.is_empty() {
            parts.push(fired.join(","));
        }
        const TTC: [&str; 6] = ["<0.5", "<1", "<2", "<4", "<8", "≥8"];
        const LANE: [&str; 6] = ["<0", "<0.1", "<0.3", "<0.8", "≥0.8", "n/a"];
        parts.push(format!("ttc{}", TTC[(b >> 3 & 7).min(5) as usize]));
        parts.push(format!("lane{}", LANE[(b & 7).min(5) as usize]));
        const SCHED: [&str; 5] = ["", "<1.5", "<3", "<5", "≥5"];
        let sched = (b >> 27 & 7).min(4) as usize;
        if sched > 0 {
            parts.push(format!("sched{}", SCHED[sched]));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_attack::FaultType;
    use adas_scenarios::{InitialPosition, ScenarioId};

    fn case() -> FuzzCase {
        FuzzCase::baseline(
            ScenarioId::S4,
            InitialPosition::Near,
            2,
            Some(FaultType::RelativeDistance),
        )
    }

    #[test]
    fn buckets_are_monotone() {
        assert!(ttc_bucket(0.2) < ttc_bucket(1.5));
        assert!(ttc_bucket(3.0) < ttc_bucket(f64::INFINITY));
        assert!(lane_bucket(-0.5) < lane_bucket(0.05));
        assert!(lane_bucket(0.2) < lane_bucket(2.0));
        assert_eq!(lane_bucket(f64::NAN), 5);
    }

    #[test]
    fn behaviour_changes_move_the_signature() {
        let c = case();
        let quiet = RunRecord {
            min_lane_line_distance: 1.0,
            ..RunRecord::default()
        };
        let base = Signature::of(&c, &quiet, EndReason::TimeLimit);
        let mut crash = quiet.clone();
        crash.accident = Some(AccidentKind::ForwardCollision);
        crash.h1_time = Some(10.0);
        assert_ne!(base, Signature::of(&c, &crash, EndReason::Accident));
        let mut braked = quiet.clone();
        braked.aeb_trigger = Some(12.0);
        assert_ne!(base, Signature::of(&c, &braked, EndReason::TimeLimit));
    }

    #[test]
    fn same_behaviour_same_signature() {
        let c = case();
        let r = RunRecord::default();
        assert_eq!(
            Signature::of(&c, &r, EndReason::TimeLimit),
            Signature::of(&c, &r, EndReason::TimeLimit)
        );
    }

    #[test]
    fn sched_buckets_separate_trigger_bands() {
        assert_eq!(sched_bucket(0.0), 0);
        assert_eq!(sched_bucket(-1.0), 0);
        assert_eq!(sched_bucket(f64::NAN), 0);
        assert!(sched_bucket(0.5) < sched_bucket(2.0));
        assert!(sched_bucket(2.0) < sched_bucket(4.0));
        assert!(sched_bucket(4.0) < sched_bucket(6.0));
        assert_eq!(sched_bucket(8.0), 4);
    }

    #[test]
    fn scheduled_cases_at_different_ttc_get_distinct_signatures() {
        let r = RunRecord::default();
        let mut tight = case();
        tight.sched_ttc = 1.0;
        let mut loose = case();
        loose.sched_ttc = 6.0;
        let a = Signature::of(&tight, &r, EndReason::TimeLimit);
        let b = Signature::of(&loose, &r, EndReason::TimeLimit);
        // Same cell key (both scheduled), same behaviour — only the
        // trigger band separates them.
        assert_eq!(tight.cell_key(), loose.cell_key());
        assert_ne!(a, b);
        assert!(b.describe().contains("sched≥5"), "{}", b.describe());
    }

    #[test]
    fn immediate_signatures_keep_the_pre_bucket_encoding() {
        // Committed repro files pin exact signature values; an immediate
        // case must hash to the legacy layout (no bits above 26 set).
        let c = case();
        let r = RunRecord::default();
        let sig = Signature::of(&c, &r, EndReason::TimeLimit);
        assert_eq!(sig.0 >> 27, 0);
        let legacy = {
            let mut bits = c.cell_key() << 16;
            bits |= ttc_bucket(r.min_ttc) << 3;
            bits |= lane_bucket(r.min_lane_line_distance);
            Signature(bits)
        };
        assert_eq!(sig, legacy);
    }

    #[test]
    fn describe_mentions_fired_interventions() {
        let c = case();
        let r = RunRecord {
            aeb_trigger: Some(3.0),
            h1_time: Some(2.0),
            ..RunRecord::default()
        };
        let text = Signature::of(&c, &r, EndReason::Quiescent).describe();
        assert!(text.contains("H1"), "{text}");
        assert!(text.contains("aeb"), "{text}");
        assert!(text.contains("end=Quiescent"), "{text}");
    }
}
