//! The deterministic fuzzing loop: seed → mutate → evaluate (in parallel)
//! → collect coverage and findings → shrink.
//!
//! Determinism is load-bearing (it is what makes findings replayable):
//! candidate batches are generated serially from one RNG, evaluated in
//! submission order at any worker count — scalar via
//! [`adas_parallel::map`], or with primaries stepped in SoA lockstep when
//! `ADAS_BATCH` > 1 (bit-identical either way) — and folded into the
//! corpus serially. The only
//! non-deterministic knob is the optional wall-clock budget, which is
//! checked at batch boundaries — use the run budget when reproducibility
//! matters and the time budget only as a CI backstop.

use crate::case::{
    case_platform, finish_case, run_case, run_case_with, FuzzCase, ATTACK_START_RANGE, IV_ROWS,
};
use crate::coverage::Signature;
use crate::oracle::{
    check_metamorphic, check_regression, check_schedule_dominance, check_trace, severity,
    OracleKind, Violation,
};
use crate::shrink::shrink;
use adas_attack::FaultType;
use adas_core::{MitigationKind, PlatformConfig};
use adas_recorder::Trace;
use adas_safety::AebsMode;
use adas_scenarios::{InitialPosition, RunRecord, ScenarioId};
use adas_simulator::DeterministicRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// Patch-shift distance for the metamorphic oracle, metres.
pub const METAMORPHIC_SHIFT_M: f64 = 25.0;

/// Fuzzing session parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Campaign seed: drives scenario jitter, mutation, everything.
    pub seed: u64,
    /// Total run budget (primary runs plus oracle reruns).
    pub max_runs: u64,
    /// Candidates evaluated per parallel batch.
    pub batch: usize,
    /// Optional wall-clock budget, seconds (checked at batch boundaries;
    /// makes the *cutoff* time-dependent, so prefer `max_runs` when the
    /// session must be reproducible).
    pub max_secs: Option<f64>,
    /// Bisection iterations per finding during shrinking.
    pub shrink_steps: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 2025,
            max_runs: 400,
            batch: 24,
            max_secs: None,
            shrink_steps: 10,
        }
    }
}

/// Everything learned from evaluating one candidate.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The candidate.
    pub case: FuzzCase,
    /// Primary-run record.
    pub record: RunRecord,
    /// Behavioural signature of the primary run.
    pub signature: Signature,
    /// Oracle violations (trace-level, differential, metamorphic).
    pub violations: Vec<Violation>,
    /// Simulation runs consumed (1 + oracle reruns).
    pub runs_used: u64,
}

/// Intervention ablations for the differential oracle: the same platform
/// with one enabled channel turned off, labelled.
fn ablations(config: &PlatformConfig) -> Vec<(&'static str, PlatformConfig)> {
    let iv = config.interventions;
    let mut out = Vec::new();
    if iv.driver {
        let mut c = *config;
        c.interventions.driver = false;
        out.push(("driver", c));
    }
    if iv.safety_check {
        let mut c = *config;
        c.interventions.safety_check = false;
        out.push(("safety-check", c));
    }
    if iv.aebs != AebsMode::Disabled {
        let mut c = *config;
        c.interventions.aebs = AebsMode::Disabled;
        out.push(("aebs", c));
    }
    if iv.ml {
        let mut c = *config;
        c.interventions.ml = false;
        // Channel named by the active strategy: a regression caused by the
        // uncertainty ensemble must not be filed against the CUSUM
        // baseline.
        out.push((
            match iv.mitigation {
                MitigationKind::Cusum => "ml-cusum",
                MitigationKind::Ensemble => "ml-ensemble",
                MitigationKind::MaskCheck => "ml-maskcheck",
            },
            c,
        ));
    }
    out
}

/// Evaluates one candidate against every oracle. The differential oracle
/// reruns accident cases once per enabled intervention; the metamorphic
/// oracle reruns benign curvature-attack cases with the patch shifted.
#[must_use]
pub fn evaluate(case: &FuzzCase, seed: u64) -> Evaluation {
    let (record, trace) = run_case(case, seed);
    evaluate_with_primary(case, seed, record, &trace)
}

/// Oracle phase of [`evaluate`], given an already-executed primary run.
/// Shared by the scalar path and the lockstep-batched path, which differ
/// only in how the primary was produced (the outputs are bit-identical).
fn evaluate_with_primary(
    case: &FuzzCase,
    seed: u64,
    record: RunRecord,
    trace: &Trace,
) -> Evaluation {
    let config = case.config();
    let mut violations = check_trace(&config, &record, trace);
    let mut runs_used = 1;

    if severity(&record) > 0 {
        for (channel, ablated) in ablations(&config) {
            let (ablated_record, _) = run_case_with(case, seed, &ablated);
            runs_used += 1;
            if let Some(v) = check_regression(&record, channel, &ablated_record) {
                violations.push(v);
                break;
            }
        }
    }

    if case.sched_ttc > 0.0 && case.fault.is_some() {
        // Compare against the identical case with the always-armed patch:
        // a strictly worse outcome means the context trigger dominates.
        let mut immediate = *case;
        immediate.sched_ttc = 0.0;
        let (immediate_record, _) = run_case(&immediate, seed);
        runs_used += 1;
        if let Some(v) = check_schedule_dominance(&record, &immediate_record) {
            violations.push(v);
        }
    }

    if case.fault == Some(FaultType::DesiredCurvature)
        && record.prevented()
        && case.attack_start_offset + METAMORPHIC_SHIFT_M <= ATTACK_START_RANGE.1
    {
        let mut shifted = *case;
        shifted.attack_start_offset += METAMORPHIC_SHIFT_M;
        let (_, shifted_trace) = run_case(&shifted, seed);
        runs_used += 1;
        if let Some(v) = check_metamorphic(trace, &shifted_trace, METAMORPHIC_SHIFT_M) {
            violations.push(v);
        }
    }

    Evaluation {
        case: *case,
        signature: Signature::of(case, &record, trace.outcome.end),
        record,
        violations,
        runs_used,
    }
}

/// Evaluates one candidate batch, honouring `ADAS_BATCH`: at width ≤ 1
/// every candidate runs scalar end-to-end; otherwise the primary traced
/// runs step in SoA lockstep (fuzz rows exclude the ML intervention, so
/// no model panel is needed) and the oracle phase — trace checks plus the
/// conditional scalar reruns — fans out over the finished primaries. Both
/// phases preserve submission order, so a session folds to the same
/// corpus and findings at any width.
fn evaluate_batch(batch: &[FuzzCase], seed: u64) -> Vec<Evaluation> {
    evaluate_batch_with_width(batch, seed, adas_core::parallel::batch_width())
}

fn evaluate_batch_with_width(batch: &[FuzzCase], seed: u64, width: usize) -> Vec<Evaluation> {
    if width <= 1 {
        return adas_core::parallel::map(batch, |_, c| evaluate(c, seed));
    }
    let primaries = adas_core::run_lockstep(
        batch,
        width,
        None,
        |_, c| case_platform(c, seed, &c.config()),
        |_, c, end, platform| finish_case(c, seed, &c.config(), end, platform),
    );
    let paired: Vec<(FuzzCase, RunRecord, Trace)> = batch
        .iter()
        .zip(primaries)
        .map(|(c, (record, trace))| (*c, record, trace))
        .collect();
    adas_core::parallel::map(&paired, |_, (c, record, trace)| {
        evaluate_with_primary(c, seed, record.clone(), trace)
    })
}

/// One confirmed, shrunk finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which property broke.
    pub oracle: OracleKind,
    /// The case as first found.
    pub found: FuzzCase,
    /// The case after bisection toward the benign neighbour.
    pub shrunk: FuzzCase,
    /// The violation as reported on the shrunk case.
    pub violation: Violation,
    /// Behavioural signature of the shrunk case's primary run.
    pub signature: Signature,
}

/// Result of one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The session configuration.
    pub config: FuzzConfig,
    /// Simulation runs executed (including oracle reruns and shrinking).
    pub runs: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Final corpus: one representative case per behavioural signature.
    pub corpus: Vec<(Signature, FuzzCase)>,
    /// Corpus size after each batch, as `(runs so far, corpus size)` —
    /// the coverage-growth curve.
    pub coverage_growth: Vec<(u64, usize)>,
    /// Shrunk findings, one per (oracle, grid cell).
    pub findings: Vec<Finding>,
    /// True when the wall-clock budget cut the session short.
    pub hit_time_budget: bool,
}

#[derive(Debug, Clone, Copy)]
struct CorpusEntry {
    case: FuzzCase,
    clean: bool,
}

/// The deterministic seed corpus: every scenario × the no-fault baseline
/// plus all three fault types × the first four Table VI rows, Near spawn.
fn seed_cases() -> Vec<FuzzCase> {
    let mut out = Vec::new();
    for scenario in ScenarioId::ALL {
        for fault in [
            None,
            Some(FaultType::RelativeDistance),
            Some(FaultType::DesiredCurvature),
            Some(FaultType::Mixed),
        ] {
            for iv_row in 0..4 {
                out.push(FuzzCase::baseline(
                    scenario,
                    InitialPosition::Near,
                    iv_row,
                    fault,
                ));
            }
        }
    }
    out
}

/// Derives one mutant from the corpus.
fn mutate(rng: &mut DeterministicRng, corpus: &BTreeMap<Signature, CorpusEntry>) -> FuzzCase {
    let idx = (rng.next_u64() % corpus.len() as u64) as usize;
    let mut case = corpus
        .values()
        .nth(idx)
        .expect("corpus index in range")
        .case;

    // Occasionally jump to a different grid cell (scenario/fault/row/…);
    // always wiggle 1–3 continuous parameters.
    if rng.chance(0.30) {
        match rng.next_u64() % 5 {
            0 => {
                case.scenario = ScenarioId::ALL[(rng.next_u64() % 6) as usize];
            }
            1 => {
                case.position = InitialPosition::ALL[(rng.next_u64() % 2) as usize];
            }
            2 => {
                case.iv_row = (rng.next_u64() % IV_ROWS as u64) as usize;
            }
            3 => {
                case.fault = match rng.next_u64() % 4 {
                    0 => None,
                    1 => Some(FaultType::RelativeDistance),
                    2 => Some(FaultType::DesiredCurvature),
                    _ => Some(FaultType::Mixed),
                };
            }
            _ => {
                case.repetition = (rng.next_u64() % 4) as u32;
            }
        }
    }
    let tweaks = 1 + rng.next_u64() % 3;
    for _ in 0..tweaks {
        match rng.next_u64() % 9 {
            0 => case.ego_speed_delta += rng.gaussian(2.0),
            1 => case.friction += rng.gaussian(0.15),
            2 => case.attack_start_offset += rng.gaussian(40.0),
            3 => case.attack_duration += rng.gaussian(5.0),
            4 => case.attack_intensity += rng.gaussian(0.4),
            5 => case.attack_direction = -case.attack_direction,
            6 => case.trigger_offset += rng.gaussian(3.0),
            7 => {
                // Toggle/retune the context trigger: off → a mid-range TTC
                // threshold, on → wander (the clamp floor at 0 disarms it).
                case.sched_ttc = if case.sched_ttc > 0.0 {
                    case.sched_ttc + rng.gaussian(1.0)
                } else {
                    2.5 + rng.gaussian(1.0)
                };
            }
            _ => case.ego_speed_delta += rng.gaussian(0.5),
        }
    }
    case.clamped()
}

/// The benign neighbour used as the shrink target: the first clean corpus
/// case in the same grid cell, falling back to the cell's paper-default
/// baseline.
fn benign_neighbour(corpus: &BTreeMap<Signature, CorpusEntry>, case: &FuzzCase) -> FuzzCase {
    corpus
        .values()
        .find(|e| e.clean && e.case.cell_key() == case.cell_key())
        .map_or_else(
            || {
                let mut b =
                    FuzzCase::baseline(case.scenario, case.position, case.iv_row, case.fault);
                b.repetition = case.repetition;
                b
            },
            |e| e.case,
        )
}

/// Runs one fuzzing session to its budget and returns corpus + findings.
#[must_use]
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let mut rng = DeterministicRng::from_seed(config.seed ^ 0xF0_22_AD_A5);
    let mut corpus: BTreeMap<Signature, CorpusEntry> = BTreeMap::new();
    // First violation per (oracle, grid cell): dedup so one systematic
    // defect does not flood the report.
    let mut pending: BTreeMap<(u64, u64), (FuzzCase, Violation)> = BTreeMap::new();
    let mut coverage_growth = Vec::new();
    let seeds = seed_cases();
    let mut next_seed = 0usize;
    let mut runs = 0u64;
    let mut batches = 0u64;
    let mut hit_time_budget = false;

    while runs < config.max_runs {
        if let Some(budget) = config.max_secs {
            if start.elapsed().as_secs_f64() >= budget {
                hit_time_budget = true;
                break;
            }
        }
        let size = config
            .batch
            .max(1)
            .min(usize::try_from(config.max_runs - runs).unwrap_or(usize::MAX));
        let batch: Vec<FuzzCase> = (0..size)
            .map(|_| {
                if next_seed < seeds.len() {
                    next_seed += 1;
                    seeds[next_seed - 1]
                } else {
                    mutate(&mut rng, &corpus)
                }
            })
            .collect();
        let evals = evaluate_batch(&batch, config.seed);
        batches += 1;
        for eval in evals {
            runs += eval.runs_used;
            let clean = eval.violations.is_empty();
            corpus.entry(eval.signature).or_insert(CorpusEntry {
                case: eval.case,
                clean,
            });
            for v in eval.violations {
                pending
                    .entry((v.oracle.code(), eval.case.cell_key()))
                    .or_insert((eval.case, v));
            }
        }
        coverage_growth.push((runs, corpus.len()));
    }

    // Shrink every retained finding (serial: bisection is inherently
    // sequential and the finding count is small).
    let mut findings = Vec::new();
    for (case, violation) in pending.into_values() {
        let benign = benign_neighbour(&corpus, &case);
        let outcome = shrink(&case, violation.oracle, &benign, config.seed, config.shrink_steps);
        runs += outcome.runs_used;
        findings.push(Finding {
            oracle: violation.oracle,
            found: case,
            shrunk: outcome.case,
            violation: outcome.violation,
            signature: outcome.signature,
        });
    }

    FuzzReport {
        config: *config,
        runs,
        batches,
        corpus: corpus.into_iter().map(|(k, e)| (k, e.case)).collect(),
        coverage_growth,
        findings,
        hit_time_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_corpus_covers_every_scenario_and_fault() {
        let seeds = seed_cases();
        assert_eq!(seeds.len(), 6 * 4 * 4);
        for s in ScenarioId::ALL {
            assert!(seeds.iter().any(|c| c.scenario == s));
        }
        assert!(seeds.iter().any(|c| c.fault.is_none()));
        assert!(seeds.iter().any(|c| c.fault == Some(FaultType::Mixed)));
    }

    #[test]
    fn mutants_stay_in_bounds() {
        let mut rng = DeterministicRng::from_seed(7);
        let mut corpus = BTreeMap::new();
        corpus.insert(
            Signature(0),
            CorpusEntry {
                case: FuzzCase::baseline(ScenarioId::S1, InitialPosition::Near, 0, None),
                clean: true,
            },
        );
        for _ in 0..500 {
            let m = mutate(&mut rng, &corpus);
            assert_eq!(m, m.clamped(), "mutant escaped the clamp: {m:?}");
        }
    }

    #[test]
    fn small_session_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 11,
            max_runs: 12,
            batch: 4,
            max_secs: None,
            shrink_steps: 3,
        };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(format!("{:?}", a.corpus), format!("{:?}", b.corpus));
        assert_eq!(format!("{:?}", a.findings), format!("{:?}", b.findings));
        assert_eq!(a.runs, b.runs);
        assert!(!a.corpus.is_empty());
    }

    #[test]
    fn batched_evaluation_matches_scalar() {
        // Mixed batch: benign, curvature (metamorphic-eligible), mixed
        // fault across intervention rows — exercises every oracle branch.
        let batch: Vec<FuzzCase> = [
            (ScenarioId::S1, 0, None),
            (ScenarioId::S2, 1, Some(FaultType::DesiredCurvature)),
            (ScenarioId::S4, 3, Some(FaultType::Mixed)),
            (ScenarioId::S5, 2, Some(FaultType::RelativeDistance)),
            (ScenarioId::S6, 4, Some(FaultType::DesiredCurvature)),
        ]
        .into_iter()
        .map(|(s, row, fault)| FuzzCase::baseline(s, InitialPosition::Near, row, fault))
        .collect();
        let scalar = evaluate_batch_with_width(&batch, 11, 1);
        for width in [3, 32] {
            let batched = evaluate_batch_with_width(&batch, 11, width);
            assert_eq!(
                format!("{scalar:?}"),
                format!("{batched:?}"),
                "width {width} diverged from scalar"
            );
        }
    }

    #[test]
    fn ablations_follow_the_enabled_set() {
        let full = FuzzCase::baseline(ScenarioId::S1, InitialPosition::Near, 3, None).config();
        let names: Vec<_> = ablations(&full).iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["driver", "safety-check", "aebs"]);
        let none = FuzzCase::baseline(ScenarioId::S1, InitialPosition::Near, 0, None).config();
        assert!(ablations(&none).is_empty());
    }

    #[test]
    fn ml_ablation_channel_is_named_by_strategy() {
        use adas_core::InterventionConfig;
        for (iv, expect) in [
            (InterventionConfig::ml_only(), "ml-cusum"),
            (InterventionConfig::ensemble_only(), "ml-ensemble"),
            (InterventionConfig::maskcheck_only(), "ml-maskcheck"),
        ] {
            let cfg = PlatformConfig::with_interventions(iv);
            let chans = ablations(&cfg);
            let names: Vec<_> = chans.iter().map(|(n, _)| *n).collect();
            assert_eq!(names, vec![expect], "{iv:?}");
            // The ablated config actually disables the channel (and keeps
            // the strategy selection, so reruns stay comparable).
            let (_, ablated) = chans[0];
            assert!(!ablated.interventions.ml);
            assert_eq!(ablated.interventions.mitigation, iv.mitigation);
        }
    }
}
