//! Fleet fuzzing: the shared job/finding model for the continuous farm.
//!
//! A farm job is a set of session seeds plus one [`FuzzConfig`]-shaped
//! budget; each seed runs an independent coverage-guided session (on one
//! worker, or fanned out across a fleet), and the results fold into a
//! single deduplicated finding set. Everything here is deterministic and
//! *shared* between the serve daemon and the fabric coordinator — the
//! fold is the same code in both, keyed by `(oracle, behavioural
//! signature)` with first-write-wins in global seed order, which is what
//! makes a 4-worker farm produce byte-identical findings to a single
//! worker running the same seeds.
//!
//! Wire codecs use the same [`ByteWriter`]/[`ByteReader`] discipline as
//! the campaign job codec in `adas_core::job`, so the serve protocol can
//! carry specs and outcomes as opaque payloads.

use crate::case::{run_case, FuzzCase, IV_ROWS};
use crate::engine::{fuzz, FuzzConfig, FuzzReport};
use crate::oracle::OracleKind;
use crate::repro::Repro;
use adas_attack::FaultType;
use adas_core::job::{ByteReader, ByteWriter};
use adas_recorder::Trace;
use adas_scenarios::{InitialPosition, ScenarioId};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Ceiling on seeds per job: a farm dispatches sessions, not runs, so
/// this bounds a submission the same way `MAX_CELLS` bounds a campaign.
pub const MAX_SEEDS: usize = 4_096;

/// One fuzz-farm job: the session seeds to run and the per-session
/// budget. Every session uses the same budget; the seed is the only
/// thing that varies, so any partition of `seeds` across workers folds
/// back to the same result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzJobSpec {
    /// Session seeds, in global fold order (first-write-wins dedup
    /// resolves ties toward earlier seeds in this list).
    pub seeds: Vec<u64>,
    /// Run budget per session (primary runs plus oracle reruns).
    pub max_runs: u64,
    /// Candidates per batch.
    pub batch: u32,
    /// Shrink bisection iterations per finding.
    pub shrink_steps: u32,
    /// Optional wall-clock budget per session, milliseconds; 0 = none.
    /// Non-zero makes the *cutoff* time-dependent (the findings that are
    /// found remain deterministic per seed) — CI smoke uses it, the
    /// determinism suite does not.
    pub max_secs_ms: u32,
}

impl FuzzJobSpec {
    /// A small default job over `n` consecutive seeds.
    #[must_use]
    pub fn quick(first_seed: u64, n: usize) -> Self {
        Self {
            seeds: (0..n as u64).map(|i| first_seed.wrapping_add(i)).collect(),
            max_runs: 120,
            batch: 24,
            shrink_steps: 6,
            max_secs_ms: 0,
        }
    }

    /// Structural sanity: bounded, non-empty, duplicate-free seed list
    /// and a non-zero budget.
    #[must_use]
    pub fn validate(&self) -> bool {
        !self.seeds.is_empty()
            && self.seeds.len() <= MAX_SEEDS
            && self.seeds.iter().collect::<BTreeSet<_>>().len() == self.seeds.len()
            && self.max_runs > 0
            && self.batch > 0
    }

    /// The engine configuration for one of this job's sessions.
    #[must_use]
    pub fn config_for(&self, seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            max_runs: self.max_runs,
            batch: self.batch.max(1) as usize,
            max_secs: (self.max_secs_ms > 0).then(|| f64::from(self.max_secs_ms) / 1000.0),
            shrink_steps: self.shrink_steps,
        }
    }

    /// Serialises for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(u32::try_from(self.seeds.len()).unwrap_or(u32::MAX));
        for s in &self.seeds {
            w.u64(*s);
        }
        w.u64(self.max_runs);
        w.u32(self.batch);
        w.u32(self.shrink_steps);
        w.u32(self.max_secs_ms);
        w.into_bytes()
    }

    /// Parses [`Self::to_bytes`] output; `None` on any malformation.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let n = r.u32()? as usize;
        if n > MAX_SEEDS {
            return None;
        }
        let mut seeds = Vec::with_capacity(n);
        for _ in 0..n {
            seeds.push(r.u64()?);
        }
        let spec = Self {
            seeds,
            max_runs: r.u64()?,
            batch: r.u32()?,
            shrink_steps: r.u32()?,
            max_secs_ms: r.u32()?,
        };
        r.exhausted().then_some(spec)
    }
}

fn fault_code(fault: Option<FaultType>) -> u8 {
    match fault {
        None => 0,
        Some(FaultType::RelativeDistance) => 1,
        Some(FaultType::DesiredCurvature) => 2,
        Some(FaultType::Mixed) => 3,
    }
}

fn fault_from_code(code: u8) -> Option<Option<FaultType>> {
    match code {
        0 => Some(None),
        1 => Some(Some(FaultType::RelativeDistance)),
        2 => Some(Some(FaultType::DesiredCurvature)),
        3 => Some(Some(FaultType::Mixed)),
        _ => None,
    }
}

/// Encodes a [`FuzzCase`] onto the wire (discrete coordinates as bytes,
/// the eight continuous parameters bit-exactly as `f64`).
pub fn encode_case(case: &FuzzCase, w: &mut ByteWriter) {
    w.u8(case.scenario.index() as u8);
    w.u8(case.position.index() as u8);
    w.u8((case.iv_row % IV_ROWS) as u8);
    w.u8(fault_code(case.fault));
    w.u32(case.repetition);
    w.f64(case.ego_speed_delta);
    w.f64(case.friction);
    w.f64(case.attack_start_offset);
    w.f64(case.attack_duration);
    w.f64(case.attack_intensity);
    w.f64(case.attack_direction);
    w.f64(case.trigger_offset);
    w.f64(case.sched_ttc);
}

/// Decodes [`encode_case`] output.
#[must_use]
pub fn decode_case(r: &mut ByteReader<'_>) -> Option<FuzzCase> {
    let scenario = *ScenarioId::ALL.get(r.u8()? as usize)?;
    let position = *InitialPosition::ALL.get(r.u8()? as usize)?;
    let iv_row = r.u8()? as usize;
    if iv_row >= IV_ROWS {
        return None;
    }
    let fault = fault_from_code(r.u8()?)?;
    Some(FuzzCase {
        scenario,
        position,
        iv_row,
        fault,
        repetition: r.u32()?,
        ego_speed_delta: r.f64()?,
        friction: r.f64()?,
        attack_start_offset: r.f64()?,
        attack_duration: r.f64()?,
        attack_intensity: r.f64()?,
        attack_direction: r.f64()?,
        trigger_offset: r.f64()?,
        sched_ttc: r.f64()?,
    })
}

/// One shrunk finding as shipped across the fleet: the violating case,
/// which oracle fired, the behavioural signature that keys fleet-wide
/// dedup, and the full flight-recorder trace of the shrunk run so the
/// coordinator can persist a replayable repro without re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmFinding {
    /// Seed of the session that found it (becomes the repro's seed).
    pub session_seed: u64,
    /// Which property broke.
    pub oracle: OracleKind,
    /// The shrunk violating case.
    pub shrunk: FuzzCase,
    /// Violation text as reported on the shrunk case.
    pub detail: String,
    /// Behavioural signature of the shrunk case's primary run — the
    /// fleet-wide dedup key (together with the oracle).
    pub signature: u64,
    /// Serialised [`Trace`] of the shrunk run ([`Trace::to_bytes`]).
    pub trace: Vec<u8>,
}

impl FarmFinding {
    /// The fleet-wide dedup key: two findings with the same oracle and
    /// the same behavioural signature are the same defect.
    #[must_use]
    pub fn dedup_key(&self) -> (u64, u64) {
        (self.oracle.code(), self.signature)
    }

    /// Serialises onto an existing writer.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.session_seed);
        w.u8(self.oracle.code() as u8);
        encode_case(&self.shrunk, w);
        w.blob(self.detail.as_bytes());
        w.u64(self.signature);
        w.blob(&self.trace);
    }

    /// Parses [`Self::encode`] output.
    #[must_use]
    pub fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let session_seed = r.u64()?;
        let oracle = *OracleKind::ALL.get(r.u8()? as usize)?;
        let shrunk = decode_case(r)?;
        let detail = String::from_utf8(r.blob()?.to_vec()).ok()?;
        let signature = r.u64()?;
        let trace = r.blob()?.to_vec();
        Some(Self {
            session_seed,
            oracle,
            shrunk,
            detail,
            signature,
            trace,
        })
    }

    /// Builds the replayable [`Repro`] + [`Trace`] pair for persistence.
    /// Fails only if the shipped trace bytes are damaged.
    pub fn to_repro(&self) -> Result<(Repro, Trace), String> {
        let trace = Trace::from_bytes(&self.trace).map_err(|e| format!("{e:?}"))?;
        Ok((
            Repro {
                case: self.shrunk,
                seed: self.session_seed,
                oracle: self.oracle,
                detail: self.detail.clone(),
                signature: self.signature,
                trace_file: None,
            },
            trace,
        ))
    }
}

/// Everything one completed session reports back to its caller.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The session's seed.
    pub seed: u64,
    /// Simulation runs executed.
    pub runs: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Final corpus size (distinct behavioural signatures).
    pub corpus: u64,
    /// True when the wall-clock budget cut the session short.
    pub hit_time_budget: bool,
    /// Shrunk findings, in the engine's deterministic order.
    pub findings: Vec<FarmFinding>,
}

impl SessionOutcome {
    /// Serialises for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.seed);
        w.u64(self.runs);
        w.u64(self.batches);
        w.u64(self.corpus);
        w.bool(self.hit_time_budget);
        w.u32(u32::try_from(self.findings.len()).unwrap_or(u32::MAX));
        for f in &self.findings {
            f.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Parses [`Self::to_bytes`] output; `None` on any malformation.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let seed = r.u64()?;
        let runs = r.u64()?;
        let batches = r.u64()?;
        let corpus = r.u64()?;
        let hit_time_budget = r.bool()?;
        let n = r.u32()? as usize;
        if n > 65_536 {
            return None;
        }
        let mut findings = Vec::with_capacity(n.min(1_024));
        for _ in 0..n {
            findings.push(FarmFinding::decode(&mut r)?);
        }
        let out = Self {
            seed,
            runs,
            batches,
            corpus,
            hit_time_budget,
            findings,
        };
        r.exhausted().then_some(out)
    }
}

/// Runs one time-boxed coverage-guided session and packages the result
/// for the fleet: every shrunk finding is re-executed once to capture
/// its flight-recorder trace (the engine discards traces after oracle
/// checks), so the outcome is self-contained.
#[must_use]
pub fn run_session(spec: &FuzzJobSpec, seed: u64) -> SessionOutcome {
    let report = fuzz(&spec.config_for(seed));
    outcome_of(seed, &report)
}

/// Packages an already-run [`FuzzReport`] as a [`SessionOutcome`].
#[must_use]
pub fn outcome_of(seed: u64, report: &FuzzReport) -> SessionOutcome {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            let (_, trace) = run_case(&f.shrunk, seed);
            FarmFinding {
                session_seed: seed,
                oracle: f.oracle,
                shrunk: f.shrunk,
                detail: f.violation.detail.clone(),
                signature: f.signature.0,
                trace: trace.to_bytes(),
            }
        })
        .collect();
    SessionOutcome {
        seed,
        runs: report.runs,
        batches: report.batches,
        corpus: report.corpus.len() as u64,
        hit_time_budget: report.hit_time_budget,
        findings,
    }
}

/// The fleet-level fold of a farm job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FarmSummary {
    /// Sessions folded.
    pub sessions: u64,
    /// Total simulation runs across sessions.
    pub runs: u64,
    /// Sum of per-session corpus sizes (sessions do not share corpora).
    pub corpus: u64,
    /// Sessions cut short by their wall-clock budget.
    pub time_boxed: u64,
    /// Findings discarded as duplicates of an earlier session's finding.
    pub dedup_hits: u64,
    /// The deduplicated finding set, in global seed order.
    pub findings: Vec<FarmFinding>,
}

impl FarmSummary {
    /// Finding counts per oracle, in [`OracleKind::ALL`] order.
    #[must_use]
    pub fn by_oracle(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for f in &self.findings {
            out[f.oracle.code() as usize] += 1;
        }
        out
    }
}

/// Folds session outcomes into the fleet-wide deduplicated finding set.
///
/// Outcomes are visited in `spec.seeds` order — *not* arrival order — and
/// within a session in the engine's deterministic finding order; the
/// first finding to claim an `(oracle, signature)` key wins. This is the
/// same first-write-wins discipline the grid merge uses for cells, and it
/// is what makes the fold independent of worker count, scheduling, and
/// which worker ran which seed. Sessions missing from `outcomes` (a dead
/// worker whose seeds were re-run elsewhere would never leave one
/// missing; a truly lost session would) are skipped.
#[must_use]
pub fn fold(spec: &FuzzJobSpec, outcomes: &[SessionOutcome]) -> FarmSummary {
    let mut summary = FarmSummary::default();
    let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
    for seed in &spec.seeds {
        let Some(outcome) = outcomes.iter().find(|o| o.seed == *seed) else {
            continue;
        };
        summary.sessions += 1;
        summary.runs += outcome.runs;
        summary.corpus += outcome.corpus;
        summary.time_boxed += u64::from(outcome.hit_time_budget);
        for finding in &outcome.findings {
            if seen.insert(finding.dedup_key()) {
                summary.findings.push(finding.clone());
            } else {
                summary.dedup_hits += 1;
            }
        }
    }
    summary
}

/// Persists every deduplicated finding as a replayable repro under
/// `dir`, returning the written TOML paths. Existing files are
/// overwritten (same finding → same stem → same bytes).
pub fn save_repros(findings: &[FarmFinding], dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut paths = Vec::with_capacity(findings.len());
    for finding in findings {
        let (mut repro, trace) = finding.to_repro()?;
        paths.push(repro.save(dir, &trace)?);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FuzzJobSpec {
        FuzzJobSpec {
            seeds: vec![11, 12, 13, 14],
            max_runs: 40,
            batch: 8,
            shrink_steps: 3,
            max_secs_ms: 0,
        }
    }

    #[test]
    fn spec_round_trips_and_validates() {
        let s = spec();
        assert!(s.validate());
        assert_eq!(FuzzJobSpec::from_bytes(&s.to_bytes()), Some(s.clone()));
        let mut dup = s.clone();
        dup.seeds.push(11);
        assert!(!dup.validate());
        assert!(!FuzzJobSpec {
            seeds: vec![],
            ..s
        }
        .validate());
        assert_eq!(FuzzJobSpec::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn case_codec_is_bit_exact() {
        let mut case = FuzzCase::baseline(
            ScenarioId::S4,
            InitialPosition::Far,
            5,
            Some(FaultType::Mixed),
        );
        case.friction = 0.300_000_000_000_000_04;
        case.ego_speed_delta = -std::f64::consts::PI;
        case.sched_ttc = 2.5;
        let mut w = ByteWriter::new();
        encode_case(&case, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_case(&mut r).unwrap();
        assert!(r.exhausted());
        assert_eq!(back, case);
        assert_eq!(back.friction.to_bits(), case.friction.to_bits());
    }

    #[test]
    fn outcome_round_trips_with_findings() {
        let case = FuzzCase::baseline(ScenarioId::S1, InitialPosition::Near, 2, None);
        let outcome = SessionOutcome {
            seed: 77,
            runs: 123,
            batches: 9,
            corpus: 31,
            hit_time_budget: true,
            findings: vec![FarmFinding {
                session_seed: 77,
                oracle: OracleKind::HazardOrdering,
                shrunk: case,
                detail: "accident with no prior hazard\nflag".into(),
                signature: 0xDEAD_BEEF,
                trace: vec![1, 2, 3, 4],
            }],
        };
        assert_eq!(
            SessionOutcome::from_bytes(&outcome.to_bytes()),
            Some(outcome)
        );
        assert_eq!(SessionOutcome::from_bytes(&[]), None);
    }

    #[test]
    fn fold_is_first_write_wins_in_seed_order() {
        let s = spec();
        let case = FuzzCase::baseline(ScenarioId::S2, InitialPosition::Near, 1, None);
        let finding = |seed: u64, sig: u64| FarmFinding {
            session_seed: seed,
            oracle: OracleKind::AebNoAccel,
            shrunk: case,
            detail: format!("from seed {seed}"),
            signature: sig,
            trace: vec![],
        };
        let outcome = |seed: u64, sigs: &[u64]| SessionOutcome {
            seed,
            runs: 10,
            batches: 1,
            corpus: 5,
            hit_time_budget: false,
            findings: sigs.iter().map(|s| finding(seed, *s)).collect(),
        };
        // Arrival order deliberately scrambled: seed 13 arrives first but
        // seed 11 must win the shared signature 0xAA.
        let outcomes = vec![
            outcome(13, &[0xAA, 0xCC]),
            outcome(11, &[0xAA, 0xBB]),
            outcome(12, &[0xBB]),
        ];
        let summary = fold(&s, &outcomes);
        assert_eq!(summary.sessions, 3);
        assert_eq!(summary.dedup_hits, 2);
        let owners: Vec<(u64, u64)> = summary
            .findings
            .iter()
            .map(|f| (f.session_seed, f.signature))
            .collect();
        assert_eq!(owners, vec![(11, 0xAA), (11, 0xBB), (13, 0xCC)]);
        // Same outcomes in any arrival order fold identically.
        let mut reversed = outcomes.clone();
        reversed.reverse();
        assert_eq!(fold(&s, &reversed), summary);
    }

    #[test]
    fn dedup_distinguishes_oracles_with_equal_signatures() {
        let s = FuzzJobSpec {
            seeds: vec![1],
            ..spec()
        };
        let case = FuzzCase::baseline(ScenarioId::S1, InitialPosition::Near, 0, None);
        let mk = |oracle| FarmFinding {
            session_seed: 1,
            oracle,
            shrunk: case,
            detail: String::new(),
            signature: 42,
            trace: vec![],
        };
        let outcomes = vec![SessionOutcome {
            seed: 1,
            runs: 1,
            batches: 1,
            corpus: 1,
            hit_time_budget: false,
            findings: vec![mk(OracleKind::AebNoAccel), mk(OracleKind::HazardOrdering)],
        }];
        let summary = fold(&s, &outcomes);
        assert_eq!(summary.findings.len(), 2);
        assert_eq!(summary.dedup_hits, 0);
        assert_eq!(summary.by_oracle()[0], 1);
        assert_eq!(summary.by_oracle()[2], 1);
    }

    #[test]
    fn partitioned_sessions_fold_like_a_single_worker() {
        // The determinism claim in miniature: run the job's sessions
        // "on one worker" (all seeds, in order) and "on two workers"
        // (split, interleaved arrival) — identical summaries.
        let s = FuzzJobSpec {
            seeds: vec![5, 6],
            max_runs: 30,
            batch: 8,
            shrink_steps: 2,
            max_secs_ms: 0,
        };
        let single: Vec<SessionOutcome> =
            s.seeds.iter().map(|&seed| run_session(&s, seed)).collect();
        let scrambled = vec![single[1].clone(), single[0].clone()];
        assert_eq!(fold(&s, &single), fold(&s, &scrambled));
        // Re-running a session is bit-identical, traces included.
        assert_eq!(run_session(&s, 5), single[0]);
    }
}
