//! Coverage-guided fuzzing of the scenario/attack parameter space.
//!
//! The paper evaluates interventions on a fixed grid (six NHTSA scenarios ×
//! three fault types × two spawn positions), but the worst hazards live
//! *between* grid cells: a cut-in triggered a few metres earlier, a patch a
//! little further down the road, slightly lower friction. This crate
//! searches that continuous space:
//!
//! * [`case::FuzzCase`] — one point in the search space: the discrete grid
//!   coordinates plus continuous overrides (ego speed, friction, attack
//!   start/duration/intensity, NPC trigger offsets);
//! * [`coverage`] — a behavioural signature (hazards seen, interventions
//!   fired, TTC/lateral buckets) that keys the corpus: a mutant earns a
//!   corpus slot only by exhibiting behaviour no earlier case did;
//! * [`oracle`] — safety properties that must hold *regardless* of
//!   parameters, checked on every run's flight-recorder trace;
//! * [`engine`] — the deterministic mutate → evaluate (in parallel) →
//!   collect loop;
//! * [`shrink`] — parameter bisection toward a benign neighbour, so a
//!   finding is reported at the mildest parameters that still violate;
//! * [`repro`] — findings persisted as `repros/*.toml` + a flight-recorder
//!   trace, replayable bit-exactly under `cargo test`.
//!
//! Everything is deterministic: same seed → same corpus, same coverage
//! signatures, same findings, at any `ADAS_THREADS` worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod coverage;
pub mod engine;
pub mod farm;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use case::{run_case, run_case_with, FuzzCase};
pub use coverage::Signature;
pub use engine::{fuzz, Evaluation, Finding, FuzzConfig, FuzzReport};
pub use farm::{fold, run_session, FarmFinding, FarmSummary, FuzzJobSpec, SessionOutcome};
pub use oracle::{severity, OracleKind, Violation};
pub use repro::Repro;
