//! Safety-property oracles: invariants that must hold at *every* point of
//! the parameter space, so any violation is a finding regardless of how
//! contrived the parameters look.
//!
//! Trace-level oracles check each step of the flight-recorder capture;
//! the differential oracle compares a run against reruns with one
//! intervention disabled (paper Observation 4: AEB suppressing the
//! driver's steering can make outcomes *worse*); the metamorphic oracle
//! checks that moving the road patch further away cannot change the
//! physics before the original patch position was reached.

use adas_core::PlatformConfig;
use adas_recorder::diff::compare_streams;
use adas_recorder::{Trace, Verdict};
use adas_safety::AebsMode;
use adas_scenarios::{AccidentKind, RunRecord};

/// The oracle families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OracleKind {
    /// While AEB owns the longitudinal channel it must brake, never
    /// accelerate; an independent-sensor AEBS must be braking whenever the
    /// true TTC is inside the H1 horizon at speed.
    AebNoAccel,
    /// Arbiter priority is monotone: a braking driver (with no AEB above
    /// it) implies zero throttle, and an intervention that is disabled in
    /// the configuration never fires.
    ArbiterPriority,
    /// No accident without a preceding hazard flag (H1/H2 at or before the
    /// accident time).
    HazardOrdering,
    /// Disabling an intervention never *reduces* accident severity on the
    /// same seed (if it does, the intervention caused harm).
    InterventionRegression,
    /// Shifting the road patch further away keeps the physics prefix
    /// bit-identical up to the original patch position.
    MetamorphicShift,
    /// A context-scheduled patch (armed only once the ego is already in a
    /// vulnerable state) must never produce a *strictly worse* outcome than
    /// the same patch always-on: if it does, strategic timing defeats an
    /// intervention stack that handled the naive attack (Zhou et al.).
    ScheduleDominance,
}

impl OracleKind {
    /// All oracle families.
    pub const ALL: [OracleKind; 6] = [
        OracleKind::AebNoAccel,
        OracleKind::ArbiterPriority,
        OracleKind::HazardOrdering,
        OracleKind::InterventionRegression,
        OracleKind::MetamorphicShift,
        OracleKind::ScheduleDominance,
    ];

    /// Stable kebab-case name (used in repro files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::AebNoAccel => "aeb-no-accel",
            OracleKind::ArbiterPriority => "arbiter-priority",
            OracleKind::HazardOrdering => "hazard-ordering",
            OracleKind::InterventionRegression => "intervention-regression",
            OracleKind::MetamorphicShift => "metamorphic-shift",
            OracleKind::ScheduleDominance => "schedule-dominance",
        }
    }

    /// Parses [`OracleKind::name`] output.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Stable code for dedup keys.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            OracleKind::AebNoAccel => 0,
            OracleKind::ArbiterPriority => 1,
            OracleKind::HazardOrdering => 2,
            OracleKind::InterventionRegression => 3,
            OracleKind::MetamorphicShift => 4,
            OracleKind::ScheduleDominance => 5,
        }
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which property broke.
    pub oracle: OracleKind,
    /// Step index of the first offending sample (trace-level oracles).
    pub step: Option<u64>,
    /// Human-readable description of what was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(s) => write!(f, "[{}] step {}: {}", self.oracle, s, self.detail),
            None => write!(f, "[{}] {}", self.oracle, self.detail),
        }
    }
}

/// Accident severity scale for the differential oracle: no accident <
/// lane violation (A2) < forward collision (A1).
#[must_use]
pub fn severity(record: &RunRecord) -> u8 {
    match record.accident {
        None => 0,
        Some(AccidentKind::LaneViolation) => 1,
        Some(AccidentKind::ForwardCollision) => 2,
    }
}

/// Minimum ego speed for the "independent AEBS must brake inside the H1
/// TTC horizon" obligation, m/s. Below this the partial-braking horizon
/// `v / pb1_divisor` can sit under the H1 TTC threshold, so a quiet AEBS
/// is legitimate.
pub const AEB_OBLIGATION_MIN_SPEED: f64 = 4.0;

/// Checks every trace-level oracle on one finished run. Returns at most
/// one violation per oracle family (the first offending step).
#[must_use]
pub fn check_trace(config: &PlatformConfig, record: &RunRecord, trace: &Trace) -> Vec<Violation> {
    let mut out = Vec::new();
    let iv = config.interventions;
    let h1_ttc = config.hazards.h1_ttc;
    let first = trace.header.first_step;

    let mut aeb_violation: Option<Violation> = None;
    let mut arb_violation: Option<Violation> = None;
    for (i, s) in trace.samples.iter().enumerate() {
        let step = first + i as u64;
        if aeb_violation.is_none() {
            if s.aeb_active && (s.gas > 0.0 || s.brake <= 0.0) {
                aeb_violation = Some(Violation {
                    oracle: OracleKind::AebNoAccel,
                    step: Some(step),
                    detail: format!(
                        "AEB owns the longitudinal channel but commands gas={} brake={}",
                        s.gas, s.brake
                    ),
                });
            } else if iv.aebs == AebsMode::Independent
                && s.ttc < h1_ttc
                && s.ego_v > AEB_OBLIGATION_MIN_SPEED
                && s.brake <= 0.0
            {
                aeb_violation = Some(Violation {
                    oracle: OracleKind::AebNoAccel,
                    step: Some(step),
                    detail: format!(
                        "independent AEBS silent inside the H1 horizon: true ttc={:.3} s \
                         at {:.1} m/s with zero brake",
                        s.ttc, s.ego_v
                    ),
                });
            }
        }
        if arb_violation.is_none() {
            let fired_while_disabled = (s.aeb_active && iv.aebs == AebsMode::Disabled)
                || ((s.driver_braking || s.driver_steering) && !iv.driver)
                || (s.ml_active && !iv.ml);
            if fired_while_disabled {
                arb_violation = Some(Violation {
                    oracle: OracleKind::ArbiterPriority,
                    step: Some(step),
                    detail: format!(
                        "disabled intervention fired: aeb={} driver_brake={} \
                         driver_steer={} ml={} under {}",
                        s.aeb_active,
                        s.driver_braking,
                        s.driver_steering,
                        s.ml_active,
                        iv.label()
                    ),
                });
            } else if s.driver_braking && !s.aeb_active && (s.gas > 0.0 || s.brake <= 0.0) {
                arb_violation = Some(Violation {
                    oracle: OracleKind::ArbiterPriority,
                    step: Some(step),
                    detail: format!(
                        "driver braking but actuators carry gas={} brake={}",
                        s.gas, s.brake
                    ),
                });
            }
        }
    }
    out.extend(aeb_violation);
    out.extend(arb_violation);

    if let (Some(kind), Some(t_acc)) = (record.accident, record.accident_time) {
        let first_hazard = match (record.h1_time, record.h2_time) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        // The monitor evaluates hazards and accidents in the same
        // post-step pass, so "preceding" means at or before the accident.
        let ordered = first_hazard.is_some_and(|t| t <= t_acc + 1e-9);
        if !ordered {
            out.push(Violation {
                oracle: OracleKind::HazardOrdering,
                step: None,
                detail: format!(
                    "{kind} accident at t={t_acc:.2} s without a preceding hazard \
                     (h1={:?}, h2={:?})",
                    record.h1_time, record.h2_time
                ),
            });
        }
    }
    out
}

/// Differential oracle: `base` ran with the case's full intervention set,
/// `ablated` is the same case with `channel` disabled. Reporting a *lower*
/// severity without the intervention means the intervention made the
/// outcome worse.
#[must_use]
pub fn check_regression(
    base: &RunRecord,
    channel: &str,
    ablated: &RunRecord,
) -> Option<Violation> {
    let with = severity(base);
    let without = severity(ablated);
    (without < with).then(|| Violation {
        oracle: OracleKind::InterventionRegression,
        step: None,
        detail: format!(
            "disabling {channel} improves the outcome: severity {} ({:?}) with it, \
             {} ({:?}) without",
            with, base.accident, without, ablated.accident
        ),
    })
}

/// Schedule-dominance oracle: `scheduled` ran with the patch held back by
/// a context trigger, `immediate` is the same case with the always-armed
/// attack. A strictly higher severity under scheduling means the
/// strategically-timed patch dominates the fixed one — the intervention
/// stack survives the naive attack but not the context-aware variant.
#[must_use]
pub fn check_schedule_dominance(
    scheduled: &RunRecord,
    immediate: &RunRecord,
) -> Option<Violation> {
    let s = severity(scheduled);
    let i = severity(immediate);
    (s > i).then(|| Violation {
        oracle: OracleKind::ScheduleDominance,
        step: None,
        detail: format!(
            "context-scheduled patch dominates the immediate one: severity {s} \
             ({:?}) scheduled vs {i} ({:?}) immediate",
            scheduled.accident, immediate.accident
        ),
    })
}

/// Metamorphic oracle: `shifted` reran `base`'s case with the road patch
/// moved `shift_m` metres further away. Physics before `base`'s first
/// fault activation must be bit-identical, and the shifted fault must not
/// activate inside that prefix.
#[must_use]
pub fn check_metamorphic(base: &Trace, shifted: &Trace, shift_m: f64) -> Option<Violation> {
    let prefix = base
        .samples
        .iter()
        .position(|s| s.fault_active)
        .unwrap_or(base.samples.len());
    if let Some(early) = shifted.samples[..prefix.min(shifted.samples.len())]
        .iter()
        .position(|s| s.fault_active)
    {
        return Some(Violation {
            oracle: OracleKind::MetamorphicShift,
            step: Some(early as u64),
            detail: format!(
                "patch shifted +{shift_m} m yet the fault activates {} steps \
                 before the baseline activation",
                prefix - early
            ),
        });
    }
    if shifted.samples.len() < prefix {
        return Some(Violation {
            oracle: OracleKind::MetamorphicShift,
            step: Some(shifted.samples.len() as u64),
            detail: format!(
                "shifted run ended after {} steps, before the baseline's fault \
                 activation at step {prefix}",
                shifted.samples.len()
            ),
        });
    }
    match compare_streams(&base.samples[..prefix], &shifted.samples[..prefix], 0) {
        Verdict::Identical => None,
        Verdict::Diverged(d) => Some(Violation {
            oracle: OracleKind::MetamorphicShift,
            step: Some(d.step),
            detail: format!(
                "pre-fault physics diverged under a +{shift_m} m patch shift: {d}"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    //! Mutation-style non-vacuousness checks: each test injects exactly the
    //! defect its oracle exists to catch, and asserts the oracle fires —
    //! plus a clean run on which every oracle must stay silent.

    use super::*;
    use crate::case::{run_case, FuzzCase};
    use adas_attack::FaultType;
    use adas_core::replay::trace_header;
    use adas_core::{InterventionConfig, RunId};
    use adas_recorder::{EndReason, RecordMode, TraceOutcome, TraceWriter};
    use adas_scenarios::{InitialPosition, ScenarioId};
    use adas_simulator::TraceSample;

    fn sample(t: f64) -> TraceSample {
        TraceSample {
            time: t,
            ego_v: 22.0,
            ttc: f64::INFINITY,
            true_rd: f64::INFINITY,
            perceived_rd: f64::INFINITY,
            lead_v: f64::NAN,
            lane_line_distance: 0.9,
            ..TraceSample::default()
        }
    }

    fn trace_of(samples: Vec<TraceSample>, config: &PlatformConfig) -> Trace {
        let header = trace_header(
            RunId {
                scenario: ScenarioId::S1,
                position: InitialPosition::Near,
                repetition: 0,
            },
            None,
            config,
            0,
            1,
        );
        let mut w = TraceWriter::new(RecordMode::Full);
        let steps = samples.len() as u64;
        for s in samples {
            w.record(s);
        }
        w.finish(
            header,
            TraceOutcome {
                end: EndReason::TimeLimit,
                accident: None,
                accident_time: None,
                fault_start: None,
                min_ttc: f64::INFINITY,
                min_lane_line_distance: 0.9,
                steps,
            },
        )
    }

    fn full_config() -> PlatformConfig {
        PlatformConfig::with_interventions(InterventionConfig::driver_check_aeb_independent())
    }

    #[test]
    fn patched_aebs_accelerating_during_braking_is_caught() {
        let mut s = sample(1.0);
        s.aeb_active = true;
        s.gas = 0.4; // the injected defect: throttle while AEB owns the channel
        s.brake = 0.0;
        let trace = trace_of(vec![sample(0.0), s], &full_config());
        let v = check_trace(&full_config(), &RunRecord::default(), &trace);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, OracleKind::AebNoAccel);
        assert_eq!(v[0].step, Some(1));
    }

    #[test]
    fn silent_independent_aebs_inside_h1_horizon_is_caught() {
        let mut s = sample(2.0);
        s.ttc = 0.5; // deep inside the H1 horizon at 22 m/s
        s.brake = 0.0;
        let trace = trace_of(vec![sample(0.0), sample(1.0), s], &full_config());
        let v = check_trace(&full_config(), &RunRecord::default(), &trace);
        assert!(
            v.iter().any(|v| v.oracle == OracleKind::AebNoAccel),
            "{v:?}"
        );
    }

    #[test]
    fn throttle_during_driver_braking_is_caught() {
        let mut s = sample(1.0);
        s.driver_braking = true;
        s.gas = 0.2;
        let trace = trace_of(vec![s], &full_config());
        let v = check_trace(&full_config(), &RunRecord::default(), &trace);
        assert_eq!(v[0].oracle, OracleKind::ArbiterPriority, "{v:?}");
    }

    #[test]
    fn disabled_intervention_firing_is_caught() {
        let mut s = sample(1.0);
        s.driver_steering = true; // fires although the config has no driver
        let cfg = PlatformConfig::with_interventions(InterventionConfig::none());
        let trace = trace_of(vec![s], &cfg);
        let v = check_trace(&cfg, &RunRecord::default(), &trace);
        assert_eq!(v[0].oracle, OracleKind::ArbiterPriority, "{v:?}");
    }

    #[test]
    fn accident_without_hazard_is_caught() {
        let cfg = full_config();
        let trace = trace_of(vec![sample(0.0)], &cfg);
        let record = RunRecord {
            accident: Some(AccidentKind::ForwardCollision),
            accident_time: Some(5.0),
            ..RunRecord::default()
        };
        let v = check_trace(&cfg, &record, &trace);
        assert_eq!(v[0].oracle, OracleKind::HazardOrdering, "{v:?}");
        // A hazard flagged after the accident is equally a violation.
        let late = RunRecord {
            h1_time: Some(9.0),
            ..record
        };
        let v = check_trace(&cfg, &late, &trace);
        assert_eq!(v[0].oracle, OracleKind::HazardOrdering, "{v:?}");
    }

    #[test]
    fn severity_regression_is_caught_and_improvement_is_not() {
        let crash = RunRecord {
            accident: Some(AccidentKind::ForwardCollision),
            ..RunRecord::default()
        };
        let lane = RunRecord {
            accident: Some(AccidentKind::LaneViolation),
            ..RunRecord::default()
        };
        let clean = RunRecord::default();
        // With the intervention: A1. Without: clean. The intervention harmed.
        let v = check_regression(&crash, "aebs", &clean).expect("must fire");
        assert_eq!(v.oracle, OracleKind::InterventionRegression);
        assert!(check_regression(&crash, "aebs", &lane).is_some());
        // The intervention helping (or being neutral) must not fire.
        assert!(check_regression(&clean, "aebs", &crash).is_none());
        assert!(check_regression(&lane, "aebs", &lane).is_none());
    }

    #[test]
    fn regression_oracle_fires_on_seeded_ml_channel_regressions() {
        // Self-test for the mitigation channels: seed a regression (the
        // run with the strategy enabled crashes, the ablated run is
        // clean) through each ML channel name and require the oracle to
        // fire with the channel attributed in the detail text.
        let crash = RunRecord {
            accident: Some(AccidentKind::ForwardCollision),
            ..RunRecord::default()
        };
        let clean = RunRecord::default();
        for channel in ["ml-cusum", "ml-ensemble", "ml-maskcheck"] {
            let v = check_regression(&crash, channel, &clean)
                .unwrap_or_else(|| panic!("{channel}: seeded regression must fire"));
            assert_eq!(v.oracle, OracleKind::InterventionRegression);
            assert!(v.detail.contains(channel), "{channel}: {}", v.detail);
            // And the strategy helping must stay silent.
            assert!(check_regression(&clean, channel, &crash).is_none());
        }
    }

    #[test]
    fn schedule_dominance_fires_only_on_strict_escalation() {
        let crash = RunRecord {
            accident: Some(AccidentKind::ForwardCollision),
            ..RunRecord::default()
        };
        let lane = RunRecord {
            accident: Some(AccidentKind::LaneViolation),
            ..RunRecord::default()
        };
        let clean = RunRecord::default();
        let v = check_schedule_dominance(&crash, &clean).expect("must fire");
        assert_eq!(v.oracle, OracleKind::ScheduleDominance);
        assert!(check_schedule_dominance(&crash, &lane).is_some());
        // Equal or lower severity under scheduling must stay silent.
        assert!(check_schedule_dominance(&crash, &crash).is_none());
        assert!(check_schedule_dominance(&clean, &crash).is_none());
        assert!(check_schedule_dominance(&lane, &crash).is_none());
    }

    #[test]
    fn diverging_prefix_under_patch_shift_is_caught() {
        let cfg = full_config();
        let mut base_samples: Vec<TraceSample> = (0..10).map(|i| sample(i as f64)).collect();
        base_samples[6].fault_active = true;
        let base = trace_of(base_samples.clone(), &cfg);
        // The injected defect: physics differ at step 3, inside the prefix.
        let mut shifted_samples = base_samples.clone();
        shifted_samples[6].fault_active = false;
        shifted_samples[3].ego_v += 1e-9;
        let shifted = trace_of(shifted_samples, &cfg);
        let v = check_metamorphic(&base, &shifted, 25.0).expect("must fire");
        assert_eq!(v.oracle, OracleKind::MetamorphicShift);
        assert_eq!(v.step, Some(3));
        // An identical prefix (divergence only from the activation on) passes.
        let mut ok_samples = base_samples.clone();
        ok_samples[6].fault_active = false;
        ok_samples[8].ego_v += 1.0;
        let ok = trace_of(ok_samples, &cfg);
        assert!(check_metamorphic(&base, &ok, 25.0).is_none());
    }

    #[test]
    fn early_fault_activation_under_shift_is_caught() {
        let cfg = full_config();
        let mut base_samples: Vec<TraceSample> = (0..10).map(|i| sample(i as f64)).collect();
        base_samples[6].fault_active = true;
        let base = trace_of(base_samples.clone(), &cfg);
        let mut shifted_samples = base_samples;
        shifted_samples[6].fault_active = false;
        shifted_samples[2].fault_active = true; // moved patch fires *earlier*
        let shifted = trace_of(shifted_samples, &cfg);
        let v = check_metamorphic(&base, &shifted, 25.0).expect("must fire");
        assert_eq!(v.step, Some(2));
    }

    #[test]
    fn clean_real_run_passes_every_oracle() {
        // A benign S1 run under the full stack: no oracle may fire.
        let case = FuzzCase::baseline(ScenarioId::S1, InitialPosition::Near, 3, None);
        let (record, trace) = run_case(&case, 42);
        let v = check_trace(&case.config(), &record, &trace);
        assert!(v.is_empty(), "false positives on a clean run: {v:?}");
        // And an attacked run under AEB-Indep (prevented per the paper).
        let case = FuzzCase::baseline(
            ScenarioId::S1,
            InitialPosition::Near,
            5,
            Some(FaultType::RelativeDistance),
        );
        let (record, trace) = run_case(&case, 42);
        assert!(record.prevented(), "{record:?}");
        let v = check_trace(&case.config(), &record, &trace);
        assert!(v.is_empty(), "false positives on a mitigated run: {v:?}");
    }
}
