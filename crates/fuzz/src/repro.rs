//! Replayable repro files.
//!
//! A finding the fuzzer shrinks is persisted as a flat `key = value` file
//! (a strict TOML subset, hand-rolled because the build is offline and the
//! workspace vendors no TOML crate) plus the flight-recorder trace of the
//! shrunk run. Floats are written with `{:?}` so the round-trip is
//! bit-exact; [`Repro::verify`] re-runs the case and demands the same
//! oracle family fires, the behavioural signature matches, and — when the
//! trace is present — the fresh run is bit-identical to the recording.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use adas_recorder::{diff_traces, Trace};

use crate::case::FuzzCase;
use crate::engine::evaluate;
use crate::oracle::OracleKind;
use adas_attack::FaultType;
use adas_scenarios::{InitialPosition, ScenarioId};

/// One persisted, replayable finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The (shrunk) violating case.
    pub case: FuzzCase,
    /// Campaign seed the violation reproduces under.
    pub seed: u64,
    /// Which oracle family fired.
    pub oracle: OracleKind,
    /// Human-readable violation text at save time.
    pub detail: String,
    /// Expected behavioural signature of the primary run.
    pub signature: u64,
    /// Trace file path relative to the repro's directory, if recorded.
    pub trace_file: Option<String>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

fn fault_name(fault: Option<FaultType>) -> &'static str {
    match fault {
        None => "none",
        Some(FaultType::RelativeDistance) => "RelativeDistance",
        Some(FaultType::DesiredCurvature) => "DesiredCurvature",
        Some(FaultType::Mixed) => "Mixed",
    }
}

fn parse_fault(name: &str) -> Result<Option<FaultType>, String> {
    match name {
        "none" => Ok(None),
        "RelativeDistance" => Ok(Some(FaultType::RelativeDistance)),
        "DesiredCurvature" => Ok(Some(FaultType::DesiredCurvature)),
        "Mixed" => Ok(Some(FaultType::Mixed)),
        other => Err(format!("unknown fault {other:?}")),
    }
}

fn parse_scenario(name: &str) -> Result<ScenarioId, String> {
    ScenarioId::ALL
        .into_iter()
        .find(|s| s.label() == name)
        .ok_or_else(|| format!("unknown scenario {name:?}"))
}

fn parse_position(name: &str) -> Result<InitialPosition, String> {
    match name {
        "Near" => Ok(InitialPosition::Near),
        "Far" => Ok(InitialPosition::Far),
        other => Err(format!("unknown position {other:?}")),
    }
}

impl Repro {
    /// Stable file stem: oracle family plus the case fingerprint, so two
    /// findings of the same family in different cells never collide.
    #[must_use]
    pub fn file_stem(&self) -> String {
        format!("{}-{:016x}", self.oracle.name(), self.case.fingerprint())
    }

    /// Serialises to the flat TOML subset.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# adas-fuzz repro v1 — replay with `adas-fuzz replay <this file>`");
        let _ = writeln!(s, "oracle = \"{}\"", self.oracle.name());
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "signature = {}", self.signature);
        let _ = writeln!(s, "detail = \"{}\"", escape(&self.detail));
        if let Some(tf) = &self.trace_file {
            let _ = writeln!(s, "trace_file = \"{}\"", escape(tf));
        }
        let c = &self.case;
        let _ = writeln!(s, "scenario = \"{}\"", c.scenario.label());
        let _ = writeln!(s, "position = \"{}\"", position_name(c.position));
        let _ = writeln!(s, "iv_row = {}", c.iv_row);
        let _ = writeln!(s, "fault = \"{}\"", fault_name(c.fault));
        let _ = writeln!(s, "repetition = {}", c.repetition);
        let _ = writeln!(s, "ego_speed_delta = {:?}", c.ego_speed_delta);
        let _ = writeln!(s, "friction = {:?}", c.friction);
        let _ = writeln!(s, "attack_start_offset = {:?}", c.attack_start_offset);
        let _ = writeln!(s, "attack_duration = {:?}", c.attack_duration);
        let _ = writeln!(s, "attack_intensity = {:?}", c.attack_intensity);
        let _ = writeln!(s, "attack_direction = {:?}", c.attack_direction);
        let _ = writeln!(s, "trigger_offset = {:?}", c.trigger_offset);
        let _ = writeln!(s, "sched_ttc = {:?}", c.sched_ttc);
        s
    }

    /// Parses the flat TOML subset produced by [`Repro::to_toml`].
    pub fn from_toml(text: &str) -> Result<Self, String> {
        let mut get = std::collections::BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            get.insert(key.trim().to_owned(), value.trim().to_owned());
        }
        let text_of = |key: &str| -> Result<String, String> {
            let raw = get
                .get(key)
                .ok_or_else(|| format!("missing key {key:?}"))?;
            let inner = raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| format!("{key}: expected a quoted string, got {raw}"))?;
            unescape(inner)
        };
        let f64_of = |key: &str| -> Result<f64, String> {
            get.get(key)
                .ok_or_else(|| format!("missing key {key:?}"))?
                .parse::<f64>()
                .map_err(|e| format!("{key}: {e}"))
        };
        let int_of = |key: &str| -> Result<u64, String> {
            get.get(key)
                .ok_or_else(|| format!("missing key {key:?}"))?
                .parse::<u64>()
                .map_err(|e| format!("{key}: {e}"))
        };

        let oracle_name = text_of("oracle")?;
        let oracle = OracleKind::from_name(&oracle_name)
            .ok_or_else(|| format!("unknown oracle {oracle_name:?}"))?;
        let case = FuzzCase {
            scenario: parse_scenario(&text_of("scenario")?)?,
            position: parse_position(&text_of("position")?)?,
            iv_row: usize::try_from(int_of("iv_row")?).map_err(|e| e.to_string())?,
            fault: parse_fault(&text_of("fault")?)?,
            repetition: u32::try_from(int_of("repetition")?).map_err(|e| e.to_string())?,
            ego_speed_delta: f64_of("ego_speed_delta")?,
            friction: f64_of("friction")?,
            attack_start_offset: f64_of("attack_start_offset")?,
            attack_duration: f64_of("attack_duration")?,
            attack_intensity: f64_of("attack_intensity")?,
            attack_direction: f64_of("attack_direction")?,
            trigger_offset: f64_of("trigger_offset")?,
            // Absent in pre-scheduler repro files: default to the paper's
            // immediate attack so committed findings keep replaying.
            sched_ttc: match get.get("sched_ttc") {
                Some(_) => f64_of("sched_ttc")?,
                None => 0.0,
            },
        };
        Ok(Repro {
            case,
            seed: int_of("seed")?,
            oracle,
            detail: text_of("detail")?,
            signature: int_of("signature")?,
            trace_file: match get.get("trace_file") {
                Some(_) => Some(text_of("trace_file")?),
                None => None,
            },
        })
    }

    /// Writes `<dir>/<stem>.toml` plus `<dir>/traces/<stem>.bin`, returning
    /// the path of the TOML file. Sets `trace_file` accordingly.
    pub fn save(&mut self, dir: &Path, trace: &Trace) -> Result<PathBuf, String> {
        let stem = self.file_stem();
        let trace_dir = dir.join("traces");
        std::fs::create_dir_all(&trace_dir).map_err(|e| e.to_string())?;
        let trace_rel = format!("traces/{stem}.bin");
        trace
            .save_as(&dir.join(&trace_rel))
            .map_err(|e| format!("{e:?}"))?;
        self.trace_file = Some(trace_rel);
        let toml_path = dir.join(format!("{stem}.toml"));
        std::fs::write(&toml_path, self.to_toml()).map_err(|e| e.to_string())?;
        Ok(toml_path)
    }

    /// Loads a repro from a `.toml` path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Re-runs the case and checks the finding still holds: same oracle
    /// family fires, same behavioural signature, and (when a trace was
    /// saved) the fresh run is bit-identical to the recording.
    /// `base_dir` is the directory the repro file lives in, used to
    /// resolve `trace_file`.
    pub fn verify(&self, base_dir: &Path) -> Result<(), String> {
        let eval = evaluate(&self.case, self.seed);
        if !eval.violations.iter().any(|v| v.oracle == self.oracle) {
            return Err(format!(
                "oracle {} no longer fires; observed: {:?}",
                self.oracle.name(),
                eval.violations
                    .iter()
                    .map(|v| v.oracle.name())
                    .collect::<Vec<_>>()
            ));
        }
        if eval.signature.0 != self.signature {
            return Err(format!(
                "signature drifted: stored {:#x}, fresh {:#x} ({})",
                self.signature,
                eval.signature.0,
                eval.signature.describe()
            ));
        }
        if let Some(tf) = &self.trace_file {
            let stored =
                Trace::load(&base_dir.join(tf)).map_err(|e| format!("{tf}: {e:?}"))?;
            let (_, fresh) = crate::case::run_case(&self.case, self.seed);
            let report = diff_traces(&stored, &fresh);
            if !report.is_identical() {
                return Err(format!("trace diverged from recording: {report:?}"));
            }
        }
        Ok(())
    }
}

fn position_name(p: InitialPosition) -> &'static str {
    match p {
        InitialPosition::Near => "Near",
        InitialPosition::Far => "Far",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        let mut case = FuzzCase::baseline(
            ScenarioId::S5,
            InitialPosition::Far,
            4,
            Some(FaultType::Mixed),
        );
        case.ego_speed_delta = -std::f64::consts::PI;
        case.friction = 0.300_000_000_000_000_04;
        case.attack_start_offset = 17.25;
        case.attack_direction = -1.0;
        Repro {
            case,
            seed: 2025,
            oracle: OracleKind::HazardOrdering,
            detail: "accident \"A1\" at t=3.2\nwith no prior hazard \\ flag".to_owned(),
            signature: 0xDEAD_BEEF,
            trace_file: Some("traces/demo.bin".to_owned()),
        }
    }

    #[test]
    fn toml_round_trip_is_lossless() {
        let r = sample();
        let parsed = Repro::from_toml(&r.to_toml()).unwrap();
        assert_eq!(parsed, r);
        // Floats must round-trip bit-exactly, not just approximately.
        assert_eq!(
            parsed.case.friction.to_bits(),
            r.case.friction.to_bits()
        );
    }

    #[test]
    fn round_trip_without_trace_file() {
        let mut r = sample();
        r.trace_file = None;
        assert_eq!(Repro::from_toml(&r.to_toml()).unwrap(), r);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Repro::from_toml("").is_err());
        assert!(Repro::from_toml("oracle = \"no-such-oracle\"\n").is_err());
        let mut r = sample();
        r.detail.clear();
        let good = r.to_toml();
        let broken = good.replace("scenario = \"S5\"", "scenario = \"S9\"");
        assert!(Repro::from_toml(&broken).is_err());
        let missing = good.replace("friction", "fricshun");
        assert!(Repro::from_toml(&missing).is_err());
    }

    #[test]
    fn pre_scheduler_repro_files_still_parse() {
        // A file written before the `sched_ttc` key existed must load with
        // the immediate-attack default, not error.
        let r = sample();
        let legacy: String = r
            .to_toml()
            .lines()
            .filter(|l| !l.starts_with("sched_ttc"))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = Repro::from_toml(&legacy).unwrap();
        assert_eq!(parsed.case.sched_ttc, 0.0);
        assert_eq!(parsed, r);
    }

    #[test]
    fn file_stem_is_oracle_plus_fingerprint() {
        let r = sample();
        let stem = r.file_stem();
        assert!(stem.starts_with("hazard-ordering-"), "{stem}");
        assert_eq!(stem.len(), "hazard-ordering-".len() + 16);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let r = sample();
        let text = format!("# header\n\n{}\n# trailer\n", r.to_toml());
        assert_eq!(Repro::from_toml(&text).unwrap(), r);
    }
}
