//! Finding minimisation: bisect the continuous parameters between a benign
//! neighbour and the violating case, keeping the mildest parameters that
//! still violate.
//!
//! The search space is continuous, so delta-debugging's subset removal
//! does not apply; instead the violator `V` and a benign neighbour `B`
//! (same grid cell, no violations) span a line `B + t·(V − B)`, and the
//! smallest violating `t` is bisected. The oracle side is assumed
//! monotone-ish along the line; where it is not, bisection still returns
//! *a* violating point no further from `B` than `V`, which is all the
//! repro needs.

use crate::case::FuzzCase;
use crate::coverage::Signature;
use crate::engine::evaluate;
use crate::oracle::{OracleKind, Violation};

/// Result of shrinking one finding.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimised case (still violating).
    pub case: FuzzCase,
    /// The violation as observed on the minimised case.
    pub violation: Violation,
    /// Behavioural signature of the minimised case's primary run.
    pub signature: Signature,
    /// Simulation runs spent probing.
    pub runs_used: u64,
}

/// Pure bisection skeleton: returns the violating case closest to `benign`
/// that `violates` confirms, probing at most `steps + 1` points.
pub fn shrink_with<F>(case: &FuzzCase, benign: &FuzzCase, steps: u32, mut violates: F) -> FuzzCase
where
    F: FnMut(&FuzzCase) -> bool,
{
    let at_benign = case.lerp_from(benign, 0.0);
    if at_benign == *case {
        // No continuous distance to travel.
        return *case;
    }
    if violates(&at_benign) {
        // The benign neighbour's continuous parameters already violate in
        // this cell: that is the minimal repro.
        return at_benign;
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    let mut best = *case;
    for _ in 0..steps {
        let mid = 0.5 * (lo + hi);
        let candidate = case.lerp_from(benign, mid);
        if violates(&candidate) {
            hi = mid;
            best = candidate;
        } else {
            lo = mid;
        }
    }
    best
}

/// Shrinks one finding with the real oracle stack: a probe is a full
/// [`evaluate`] (including differential/metamorphic reruns), and the
/// violation counts only if the same oracle family fires.
#[must_use]
pub fn shrink(
    case: &FuzzCase,
    kind: OracleKind,
    benign: &FuzzCase,
    seed: u64,
    steps: u32,
) -> ShrinkOutcome {
    let mut runs = 0u64;
    let minimal = shrink_with(case, benign, steps, |c| {
        let eval = evaluate(c, seed);
        runs += eval.runs_used;
        eval.violations.iter().any(|v| v.oracle == kind)
    });
    // Authoritative re-evaluation of the chosen point (also regenerates
    // the violation text and signature for the repro file).
    let eval = evaluate(&minimal, seed);
    runs += eval.runs_used;
    let violation = eval
        .violations
        .into_iter()
        .find(|v| v.oracle == kind)
        .unwrap_or_else(|| Violation {
            oracle: kind,
            step: None,
            detail: "violation did not reproduce at the shrunk point".to_owned(),
        });
    ShrinkOutcome {
        case: minimal,
        violation,
        signature: eval.signature,
        runs_used: runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_attack::FaultType;
    use adas_scenarios::{InitialPosition, ScenarioId};

    fn cell(delta: f64) -> FuzzCase {
        let mut c = FuzzCase::baseline(
            ScenarioId::S2,
            InitialPosition::Near,
            1,
            Some(FaultType::RelativeDistance),
        );
        c.ego_speed_delta = delta;
        c
    }

    #[test]
    fn bisection_converges_to_the_violation_boundary() {
        // Synthetic oracle: violates iff ego_speed_delta > 3.0.
        let found = cell(8.0);
        let benign = cell(0.0);
        let shrunk = shrink_with(&found, &benign, 12, |c| c.ego_speed_delta > 3.0);
        assert!(shrunk.ego_speed_delta > 3.0, "{shrunk:?}");
        assert!(
            shrunk.ego_speed_delta < 3.0 + 8.0 / 1024.0,
            "not minimal: {}",
            shrunk.ego_speed_delta
        );
    }

    #[test]
    fn benign_neighbour_violating_is_returned_directly() {
        let found = cell(8.0);
        let benign = cell(0.0);
        // Everything violates: the benign end is the minimum.
        let shrunk = shrink_with(&found, &benign, 12, |_| true);
        assert_eq!(shrunk.ego_speed_delta, 0.0);
    }

    #[test]
    fn zero_distance_returns_the_case_without_probing() {
        let found = cell(2.0);
        let mut probes = 0;
        let shrunk = shrink_with(&found, &found.clone(), 12, |_| {
            probes += 1;
            true
        });
        assert_eq!(shrunk, found);
        assert_eq!(probes, 0);
    }

    #[test]
    fn discrete_coordinates_never_move_during_shrinking() {
        let found = cell(8.0);
        let mut benign = cell(0.0);
        benign.repetition = 3; // differs in a discrete dimension too
        let shrunk = shrink_with(&found, &benign, 8, |c| c.ego_speed_delta > 5.0);
        assert_eq!(shrunk.scenario, found.scenario);
        assert_eq!(shrunk.repetition, found.repetition);
        assert_eq!(shrunk.fault, found.fault);
    }
}
