//! Adam optimiser over flat parameter/gradient slices.

use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Gradient-norm clip applied before the update (0 disables).
    pub grad_clip: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: 5.0,
        }
    }
}

/// Optimiser state for one parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// State for a tensor of `len` parameters.
    #[must_use]
    pub fn new(len: usize, config: AdamConfig) -> Self {
        Self {
            config,
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// Applies one update step: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths mismatch the optimiser state.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        let c = self.config;
        self.t += 1;

        let clip = if c.grad_clip > 0.0 {
            let norm = grads.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm > c.grad_clip {
                c.grad_clip / norm
            } else {
                1.0
            }
        } else {
            1.0
        };

        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] * clip;
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * g;
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= c.lr * mhat / (vhat.sqrt() + c.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut adam = Adam::new(1, AdamConfig::default());
        let mut x = [0.0_f64];
        for _ in 0..2000 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn gradient_clipping_bounds_step() {
        let cfg = AdamConfig {
            grad_clip: 1.0,
            ..AdamConfig::default()
        };
        let mut adam = Adam::new(2, cfg);
        let mut x = [0.0, 0.0];
        adam.step(&mut x, &[1e9, 1e9]);
        // With clipping the first step is bounded by ~lr.
        assert!(x[0].abs() < 0.1);
    }

    #[test]
    fn zero_gradient_is_stationary() {
        let mut adam = Adam::new(3, AdamConfig::default());
        let mut x = [1.0, -2.0, 0.5];
        adam.step(&mut x, &[0.0, 0.0, 0.0]);
        assert_eq!(x, [1.0, -2.0, 0.5]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut x = [0.0];
        adam.step(&mut x, &[1.0]);
    }
}
