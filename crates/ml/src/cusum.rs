//! CUSUM change detector (Algorithm 1's accumulated-error gate).
//!
//! `S(t+1) = max(0, S(t) + δ − b(t))` with a positive bias `b(t)` so no
//! error accumulates under normal conditions; the recovery mode triggers
//! when `S` exceeds the threshold `τ`.

use serde::{Deserialize, Serialize};

/// The CUSUM statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cusum {
    s: f64,
    tau: f64,
    bias: f64,
}

impl Cusum {
    /// Creates a detector with threshold `tau` and per-step bias `bias`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `bias` is not positive — Algorithm 1 requires
    /// `b(t) > 0` so that `S` stays at zero in normal conditions.
    #[must_use]
    pub fn new(tau: f64, bias: f64) -> Self {
        assert!(tau > 0.0, "threshold must be positive");
        assert!(bias > 0.0, "bias must be positive");
        Self { s: 0.0, tau, bias }
    }

    /// Current statistic value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.s
    }

    /// The per-step bias `b(t)`.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Feeds one discrepancy sample; returns `true` when `S` exceeds `τ`.
    pub fn update(&mut self, delta: f64) -> bool {
        self.s = (self.s + delta - self.bias).max(0.0);
        self.s > self.tau
    }

    /// Resets the statistic to zero (Algorithm 1 does this when leaving
    /// recovery mode).
    pub fn reset(&mut self) {
        self.s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stays_zero_below_bias() {
        let mut c = Cusum::new(1.0, 0.1);
        for _ in 0..1000 {
            assert!(!c.update(0.05));
        }
        assert_eq!(c.value(), 0.0);
    }

    #[test]
    fn accumulates_above_bias() {
        let mut c = Cusum::new(1.0, 0.1);
        let mut fired = false;
        for _ in 0..15 {
            fired = c.update(0.2); // net +0.1 per step
        }
        assert!(fired);
        assert!(c.value() > 1.0);
    }

    #[test]
    fn trigger_time_scales_with_threshold() {
        let mut fast = Cusum::new(0.5, 0.1);
        let mut slow = Cusum::new(2.0, 0.1);
        let mut t_fast = None;
        let mut t_slow = None;
        for t in 0..100 {
            if fast.update(0.2) && t_fast.is_none() {
                t_fast = Some(t);
            }
            if slow.update(0.2) && t_slow.is_none() {
                t_slow = Some(t);
            }
        }
        assert!(t_fast.unwrap() < t_slow.unwrap());
    }

    #[test]
    fn reset_zeroes() {
        let mut c = Cusum::new(1.0, 0.1);
        for _ in 0..20 {
            let _ = c.update(0.5);
        }
        c.reset();
        assert_eq!(c.value(), 0.0);
        assert!(!c.update(0.05));
    }

    #[test]
    #[should_panic(expected = "bias must be positive")]
    fn zero_bias_rejected() {
        let _ = Cusum::new(1.0, 0.0);
    }

    proptest! {
        #[test]
        fn statistic_never_negative(deltas in prop::collection::vec(-1.0f64..1.0, 1..200)) {
            let mut c = Cusum::new(1.0, 0.05);
            for d in deltas {
                let _ = c.update(d);
                prop_assert!(c.value() >= 0.0);
            }
        }
    }
}
