//! Uncertainty-ensemble mitigation (after Jiao et al., "End-to-end
//! Uncertainty-based Mitigation of Adversarial Attacks to Automated Lane
//! Centering").
//!
//! Instead of gating on a CUSUM discrepancy statistic (Algorithm 1), the
//! ensemble runs M perturbed perception reads per control cycle and
//! measures how much they *disagree*. A patch attack perturbs the
//! perception outputs away from the redundant-sensor values, and the
//! perturbation is unstable under input jitter — so the M jittered views
//! fan out. Fault-free perception is self-consistent: the jitter is
//! applied multiplicatively to the *fault delta* (attacked − clean), so a
//! benign cycle produces M bitwise-identical views and exactly zero
//! disagreement. Above a calibrated disagreement threshold the mitigator
//! smoothly de-rates control authority, blending the ADAS command toward a
//! gentle fallback deceleration.
//!
//! Determinism: the view jitter comes from a [`DeterministicRng`] stream
//! split off the run's setup stream, and every view draws its gaussians on
//! every cycle (warm-up included, lead present or not), so stream
//! consumption never depends on data values. The M views ride one SoA
//! panel through [`LstmPredictor::step_batch`] — the same weights-
//! stationary kernel the lockstep campaign executor uses — which makes the
//! M-views cost one batched forward instead of M scalar ones.

use crate::features::{ControlTarget, StateFeatures, FEATURE_DIM, WINDOW};
use crate::model::{BatchInferScratch, BatchPredictorState, LstmPredictor};
use adas_simulator::DeterministicRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One control cycle's perception evidence for the view-based mitigations
/// (ensemble + masked-view check): the redundant-sensor feature template,
/// the perceived lead distance and desired curvature both *before* and
/// *after* fault injection, and the ADAS output under judgement.
///
/// The clean/attacked pairs let a mitigator synthesise perturbed reads
/// around the actual fault delta without re-running the perception
/// emulator M times (which would consume its noise stream M times and
/// break bit-identity with the unmitigated platform).
#[derive(Debug, Clone, Copy)]
pub struct PerceptionViews {
    /// Fault-free redundant-sensor state of this cycle (same source the
    /// CUSUM baseline encodes).
    pub features: StateFeatures,
    /// Perceived lead distance before fault injection, metres.
    pub clean_rd: Option<f64>,
    /// Perceived lead distance after fault injection, metres.
    pub attacked_rd: Option<f64>,
    /// Perceived desired curvature before fault injection, 1/m.
    pub clean_kappa: f64,
    /// Perceived desired curvature after fault injection, 1/m.
    pub attacked_kappa: f64,
    /// The (safety-checked) ADAS output this cycle.
    pub op_out: ControlTarget,
}

impl PerceptionViews {
    /// True when fault injection created or removed the lead detection —
    /// maximal evidence of tampering, scored as full disagreement.
    #[must_use]
    pub fn presence_mismatch(&self) -> bool {
        self.clean_rd.is_some() != self.attacked_rd.is_some()
    }
}

/// Ensemble mitigation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnsembleConfig {
    /// Number of jittered perception views per cycle (M).
    pub views: usize,
    /// Standard deviation of the multiplicative jitter gain applied to the
    /// fault delta per view.
    pub gain_std: f64,
    /// Normaliser for the relative-distance view spread, metres.
    pub rd_scale: f64,
    /// Normaliser for the curvature view spread, 1/m.
    pub kappa_scale: f64,
    /// Disagreement below which authority stays at 1 (no intervention).
    pub derate_start: f64,
    /// Disagreement at (and beyond) which authority reaches its floor.
    pub derate_full: f64,
    /// Authority floor — the ADAS never loses the wheel entirely, it is
    /// blended toward the fallback command.
    pub min_authority: f64,
    /// Fallback longitudinal command blended in as authority drops, m/s²
    /// (a gentle brake toward a safe stop).
    pub fallback_decel: f64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            views: 8,
            gain_std: 0.35,
            rd_scale: 8.0,
            kappa_scale: 0.004,
            derate_start: 0.25,
            derate_full: 2.0,
            min_authority: 0.2,
            fallback_decel: -2.0,
        }
    }
}

impl EnsembleConfig {
    /// Default parameters at an explicit view count (clamped to ≥ 1).
    #[must_use]
    pub fn with_views(views: usize) -> Self {
        Self {
            views: views.max(1),
            ..Self::default()
        }
    }

    /// Control authority α ∈ [`min_authority`, 1] as a function of the
    /// disagreement statistic: 1 below [`derate_start`], the floor at and
    /// beyond [`derate_full`], smoothstep-interpolated between. Monotone
    /// non-increasing in `d` (the property suite checks this).
    ///
    /// [`min_authority`]: Self::min_authority
    /// [`derate_start`]: Self::derate_start
    /// [`derate_full`]: Self::derate_full
    #[must_use]
    pub fn authority(&self, d: f64) -> f64 {
        if d <= self.derate_start || d.is_nan() {
            return 1.0;
        }
        if d >= self.derate_full {
            return self.min_authority;
        }
        let t = (d - self.derate_start) / (self.derate_full - self.derate_start);
        let s = t * t * (3.0 - 2.0 * t);
        1.0 - (1.0 - self.min_authority) * s
    }
}

/// The uncertainty-ensemble runtime.
#[derive(Debug, Clone)]
pub struct EnsembleMitigator {
    model: Arc<LstmPredictor>,
    config: EnsembleConfig,
    rng: DeterministicRng,
    state: BatchPredictorState,
    scratch: BatchInferScratch,
    x: Vec<f64>,
    rd_view: Vec<Option<f64>>,
    kappa_view: Vec<f64>,
    warmup: usize,
    derating: bool,
    last_disagreement: f64,
    first_activation: Option<f64>,
    activations: u64,
}

impl EnsembleMitigator {
    /// Wraps a (trained) model in the ensemble runtime. `rng` must be a
    /// dedicated split of the run's deterministic stream.
    #[must_use]
    pub fn new(
        model: impl Into<Arc<LstmPredictor>>,
        config: EnsembleConfig,
        rng: DeterministicRng,
    ) -> Self {
        let model = model.into();
        let m = config.views.max(1);
        let config = EnsembleConfig { views: m, ..config };
        let state = model.batch_state(m);
        let scratch = model.batch_scratch(m);
        Self {
            model,
            config,
            rng,
            state,
            scratch,
            x: vec![0.0; FEATURE_DIM * m],
            rd_view: vec![None; m],
            kappa_view: vec![0.0; m],
            warmup: 0,
            derating: false,
            last_disagreement: 0.0,
            first_activation: None,
            activations: 0,
        }
    }

    /// The active parameters.
    #[must_use]
    pub fn config(&self) -> &EnsembleConfig {
        &self.config
    }

    /// Whether authority is currently de-rated (α < 1).
    #[must_use]
    pub fn in_derate(&self) -> bool {
        self.derating
    }

    /// The most recent disagreement statistic.
    #[must_use]
    pub fn disagreement(&self) -> f64 {
        self.last_disagreement
    }

    /// Time the first de-rate episode engaged, if ever.
    #[must_use]
    pub fn first_activation_time(&self) -> Option<f64> {
        self.first_activation
    }

    /// How many de-rate episodes have engaged.
    #[must_use]
    pub fn activation_count(&self) -> u64 {
        self.activations
    }

    /// Runs one control cycle: synthesises M jittered views, advances the
    /// M-lane LSTM panel, scores disagreement, and returns `Some(blended)`
    /// while authority is de-rated.
    pub fn update_views(&mut self, views: &PerceptionViews, time: f64) -> Option<ControlTarget> {
        let m = self.config.views;
        let mismatch = views.presence_mismatch();
        // Synthesise the M perturbed reads. The jitter gain multiplies the
        // fault delta, so `clean + 0 × (1 + g) == clean` bitwise on benign
        // cycles; both gaussians are drawn for every view unconditionally
        // so RNG consumption is independent of the data.
        for v in 0..m {
            let g_rd = self.rng.gaussian(self.config.gain_std);
            let g_kappa = self.rng.gaussian(self.config.gain_std);
            self.rd_view[v] = match (views.clean_rd, views.attacked_rd) {
                (Some(clean), Some(attacked)) => Some(clean + (attacked - clean) * (1.0 + g_rd)),
                (_, attacked) => attacked,
            };
            self.kappa_view[v] =
                views.clean_kappa + (views.attacked_kappa - views.clean_kappa) * (1.0 + g_kappa);
            let feat = StateFeatures {
                lead_distance: self.rd_view[v].unwrap_or(f64::INFINITY),
                curvature: self.kappa_view[v],
                ..views.features
            };
            for (c, value) in feat.encode().into_iter().enumerate() {
                self.x[c * m + v] = value;
            }
        }
        // One weights-stationary batched forward serves every view.
        self.model.step_batch(&self.x, &mut self.state, &mut self.scratch);

        // Disagreement: per-channel view spread (max deviation from view
        // 0) plus the spread of the decoded per-view predictions — all
        // exactly 0.0 when the views are bitwise identical.
        let mut spread_rd = 0.0f64;
        let mut spread_kappa = 0.0f64;
        let mut spread_pred = 0.0f64;
        let p0 = ControlTarget::decode(&self.scratch.output(0));
        for v in 1..m {
            if let (Some(a), Some(b)) = (self.rd_view[0], self.rd_view[v]) {
                spread_rd = spread_rd.max((b - a).abs());
            }
            spread_kappa = spread_kappa.max((self.kappa_view[v] - self.kappa_view[0]).abs());
            let pv = ControlTarget::decode(&self.scratch.output(v));
            spread_pred = spread_pred.max(pv.discrepancy(&p0));
        }
        let mut d =
            spread_rd / self.config.rd_scale + spread_kappa / self.config.kappa_scale + spread_pred;
        if mismatch {
            d = d.max(self.config.derate_full);
        }
        self.last_disagreement = d;

        // Warm-up mirrors the CUSUM baseline: the recurrent panel needs
        // WINDOW continuous frames before its outputs mean anything.
        if self.warmup < WINDOW {
            self.warmup += 1;
            self.derating = false;
            return None;
        }

        let alpha = self.config.authority(d);
        if alpha < 1.0 {
            if !self.derating {
                self.activations += 1;
                if self.first_activation.is_none() {
                    self.first_activation = Some(time);
                }
            }
            self.derating = true;
            Some(ControlTarget {
                accel: alpha * views.op_out.accel + (1.0 - alpha) * self.config.fallback_decel,
                steer: alpha * views.op_out.steer,
            })
        } else {
            self.derating = false;
            None
        }
    }

    /// Resets the runtime (new run) while keeping the trained weights and
    /// the jitter stream position — give a fresh run a fresh RNG split
    /// instead of reusing a reset mitigator when bit-identity matters.
    pub fn reset(&mut self) {
        self.state = self.model.batch_state(self.config.views);
        self.warmup = 0;
        self.derating = false;
        self.last_disagreement = 0.0;
        self.first_activation = None;
        self.activations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    fn small_model() -> LstmPredictor {
        LstmPredictor::new(ModelSpec {
            hidden1: 8,
            hidden2: 4,
            seed: 2,
        })
    }

    fn benign_views() -> PerceptionViews {
        PerceptionViews {
            features: StateFeatures {
                ego_speed: 20.0,
                lead_distance: 40.0,
                closing_speed: 0.0,
                left_line: 1.75,
                right_line: 1.75,
                curvature: 0.0,
                heading: 0.0,
                prev_accel: 0.0,
                prev_steer: 0.0,
            },
            clean_rd: Some(40.0),
            attacked_rd: Some(40.0),
            clean_kappa: 0.001,
            attacked_kappa: 0.001,
            op_out: ControlTarget {
                accel: 0.3,
                steer: 0.0,
            },
        }
    }

    #[test]
    fn benign_views_have_exactly_zero_disagreement() {
        let mut e = EnsembleMitigator::new(
            small_model(),
            EnsembleConfig::default(),
            DeterministicRng::from_seed(7),
        );
        for t in 0..200 {
            let out = e.update_views(&benign_views(), t as f64 * 0.01);
            assert!(out.is_none(), "benign de-rate at step {t}");
            assert_eq!(e.disagreement(), 0.0, "non-zero disagreement at {t}");
        }
        assert_eq!(e.activation_count(), 0);
        assert!(e.first_activation_time().is_none());
    }

    #[test]
    fn large_fault_delta_derates_authority() {
        let mut e = EnsembleMitigator::new(
            small_model(),
            EnsembleConfig::default(),
            DeterministicRng::from_seed(7),
        );
        let mut attacked = benign_views();
        attacked.attacked_rd = Some(120.0); // RD patch: 3× over-ranged lead
        let mut engaged_at = None;
        for t in 0..300 {
            if e.update_views(&attacked, t as f64 * 0.01).is_some() && engaged_at.is_none() {
                engaged_at = Some(t);
            }
        }
        let at = engaged_at.expect("de-rate must engage under a large delta");
        assert!(at >= WINDOW, "not before warm-up");
        assert!(e.activation_count() >= 1);
        assert!(e.disagreement() > e.config().derate_start);
    }

    #[test]
    fn presence_mismatch_is_full_disagreement() {
        let mut e = EnsembleMitigator::new(
            small_model(),
            EnsembleConfig::default(),
            DeterministicRng::from_seed(3),
        );
        let mut dropped = benign_views();
        dropped.attacked_rd = None; // patch suppressed the lead detection
        for t in 0..(WINDOW + 5) {
            let _ = e.update_views(&dropped, t as f64 * 0.01);
        }
        assert!(e.in_derate());
        assert!(e.disagreement() >= e.config().derate_full);
    }

    #[test]
    fn blended_command_interpolates_toward_fallback() {
        let cfg = EnsembleConfig::default();
        let mut e = EnsembleMitigator::new(small_model(), cfg, DeterministicRng::from_seed(11));
        let mut attacked = benign_views();
        attacked.attacked_rd = None; // force α to the floor
        let mut last = None;
        for t in 0..(WINDOW + 2) {
            last = e.update_views(&attacked, t as f64 * 0.01);
        }
        let cmd = last.expect("floor authority must override");
        let alpha = cfg.min_authority;
        let want = alpha * attacked.op_out.accel + (1.0 - alpha) * cfg.fallback_decel;
        assert!((cmd.accel - want).abs() < 1e-12, "{} vs {want}", cmd.accel);
        assert!((cmd.steer - alpha * attacked.op_out.steer).abs() < 1e-12);
    }

    #[test]
    fn authority_endpoints() {
        let cfg = EnsembleConfig::default();
        assert_eq!(cfg.authority(0.0), 1.0);
        assert_eq!(cfg.authority(cfg.derate_start), 1.0);
        assert_eq!(cfg.authority(cfg.derate_full), cfg.min_authority);
        assert_eq!(cfg.authority(cfg.derate_full * 10.0), cfg.min_authority);
        let mid = cfg.authority((cfg.derate_start + cfg.derate_full) / 2.0);
        assert!(mid < 1.0 && mid > cfg.min_authority);
    }

    #[test]
    fn update_is_deterministic_for_equal_seeds() {
        let run = || {
            let mut e = EnsembleMitigator::new(
                small_model(),
                EnsembleConfig::default(),
                DeterministicRng::from_seed(99),
            );
            let mut attacked = benign_views();
            attacked.attacked_rd = Some(15.0);
            let mut log = Vec::new();
            for t in 0..120 {
                let out = e.update_views(&attacked, t as f64 * 0.01);
                log.push((out, e.disagreement().to_bits()));
            }
            format!("{log:?}")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clears_runtime_state() {
        let mut e = EnsembleMitigator::new(
            small_model(),
            EnsembleConfig::default(),
            DeterministicRng::from_seed(5),
        );
        let mut attacked = benign_views();
        attacked.attacked_rd = None;
        for t in 0..(WINDOW + 5) {
            let _ = e.update_views(&attacked, t as f64 * 0.01);
        }
        assert!(e.in_derate());
        e.reset();
        assert!(!e.in_derate());
        assert!(e.first_activation_time().is_none());
        assert_eq!(e.activation_count(), 0);
    }
}
