//! Feature and target encoding for the mitigation model.
//!
//! The paper's model input is "the ego vehicle's speed, relative distance to
//! the leading vehicle, lane line positions, and historical gas and steering
//! values from previous control cycles"; outputs are the expected gas and
//! steering commands. We encode one control cycle as [`FEATURE_DIM`]
//! normalised values and the model target as [`TARGET_DIM`] values
//! (normalised acceleration and steering).

use serde::{Deserialize, Serialize};

/// Number of input features per control cycle.
pub const FEATURE_DIM: usize = 9;
/// Number of regression targets.
pub const TARGET_DIM: usize = 2;
/// History window length in control cycles (0.2 s at 100 Hz).
pub const WINDOW: usize = 20;

/// Normalisation constants.
const V_SCALE: f64 = 30.0;
const RD_SCALE: f64 = 100.0;
const RS_SCALE: f64 = 15.0;
const LINE_SCALE: f64 = 2.0;
const KAPPA_SCALE: f64 = 0.05;
const ACCEL_SCALE: f64 = 5.0;
const STEER_SCALE: f64 = 0.1;
const GATE_STEER_SCALE: f64 = 0.5;

/// Raw (physical-unit) state of one control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StateFeatures {
    /// Ego speed, m/s.
    pub ego_speed: f64,
    /// Relative distance to the lead, metres (`f64::INFINITY` when none).
    pub lead_distance: f64,
    /// Closing speed, m/s (0 or `f64::NAN` when no lead; [`encode`] treats
    /// any non-finite value as "no closing motion").
    ///
    /// [`encode`]: StateFeatures::encode
    pub closing_speed: f64,
    /// Distance to the left lane line, metres.
    pub left_line: f64,
    /// Distance to the right lane line, metres.
    pub right_line: f64,
    /// Road/path curvature, 1/m.
    pub curvature: f64,
    /// Heading error relative to the road tangent, radians (from the
    /// redundant IMU/localisation source).
    pub heading: f64,
    /// Previous cycle's acceleration command, m/s².
    pub prev_accel: f64,
    /// Previous cycle's steering command, radians.
    pub prev_steer: f64,
}

/// Normalises and clamps one feature; non-finite inputs (a NaN "no lead"
/// channel, an infinite distance) map to `fallback` instead of poisoning
/// the window — `f64::clamp` propagates NaN, and one NaN feature would
/// zero out every LSTM gate downstream.
fn norm(value: f64, scale: f64, fallback: f64) -> f64 {
    if value.is_finite() {
        (value / scale).clamp(-2.0, 2.0)
    } else {
        fallback
    }
}

impl StateFeatures {
    /// Encodes into the model's normalised feature vector.
    #[must_use]
    pub fn encode(&self) -> [f64; FEATURE_DIM] {
        let rd = if self.lead_distance.is_finite() {
            (self.lead_distance / RD_SCALE).min(1.5)
        } else {
            // No lead (or sensor dropout): saturate at the far horizon.
            1.5
        };
        [
            norm(self.ego_speed, V_SCALE, 0.0),
            rd,
            norm(self.closing_speed, RS_SCALE, 0.0),
            norm(self.left_line, LINE_SCALE, 2.0),
            norm(self.right_line, LINE_SCALE, 2.0),
            norm(self.curvature, KAPPA_SCALE, 0.0),
            norm(self.heading, 0.2, 0.0),
            norm(self.prev_accel, ACCEL_SCALE, 0.0),
            norm(self.prev_steer, STEER_SCALE, 0.0),
        ]
    }
}

/// A control output in physical units, with target encoding/decoding.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlTarget {
    /// Acceleration command, m/s².
    pub accel: f64,
    /// Steering command, radians.
    pub steer: f64,
}

impl ControlTarget {
    /// Encodes into the normalised target vector.
    #[must_use]
    pub fn encode(&self) -> [f64; TARGET_DIM] {
        [
            (self.accel / ACCEL_SCALE).clamp(-2.0, 2.0),
            (self.steer / STEER_SCALE).clamp(-2.0, 2.0),
        ]
    }

    /// Decodes a normalised model output back to physical units.
    #[must_use]
    pub fn decode(out: &[f64]) -> Self {
        Self {
            accel: out.first().copied().unwrap_or(0.0) * ACCEL_SCALE,
            steer: out.get(1).copied().unwrap_or(0.0) * STEER_SCALE,
        }
    }

    /// The normalised prediction discrepancy used by the CUSUM gate:
    /// `|Δaccel|/5 + |Δsteer|/0.5`. The gate's steering normaliser is
    /// deliberately coarser than the training-target scale: small steering
    /// disagreements must not hold the system in recovery mode, or control
    /// never returns to the ADAS and its (unpoisoned) lane centering.
    #[must_use]
    pub fn discrepancy(&self, other: &Self) -> f64 {
        (self.accel - other.accel).abs() / ACCEL_SCALE
            + (self.steer - other.steer).abs() / GATE_STEER_SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_normalises_into_small_range() {
        let f = StateFeatures {
            ego_speed: 22.0,
            lead_distance: 55.0,
            closing_speed: 9.0,
            left_line: 1.75,
            right_line: 1.75,
            curvature: 0.002,
            heading: 0.01,
            prev_accel: -2.0,
            prev_steer: 0.01,
        };
        let e = f.encode();
        assert_eq!(e.len(), FEATURE_DIM);
        assert!(e.iter().all(|v| v.abs() <= 2.0));
    }

    #[test]
    fn infinite_distance_saturates() {
        let f = StateFeatures {
            lead_distance: f64::INFINITY,
            ..StateFeatures::default()
        };
        assert_eq!(f.encode()[1], 1.5);
    }

    #[test]
    fn non_finite_channels_never_poison_the_vector() {
        // "No lead" reported as NaN (the trace convention) or INFINITY
        // must yield a fully finite feature vector — one NaN here would
        // propagate through every LSTM gate downstream.
        let f = StateFeatures {
            ego_speed: 25.0,
            lead_distance: f64::NAN,
            closing_speed: f64::NAN,
            left_line: f64::NEG_INFINITY,
            right_line: f64::INFINITY,
            curvature: f64::NAN,
            heading: 0.0,
            prev_accel: 0.0,
            prev_steer: f64::NAN,
        };
        let e = f.encode();
        assert!(e.iter().all(|v| v.is_finite()), "{e:?}");
        assert_eq!(e[2], 0.0, "NaN closing speed reads as no closing motion");
    }

    #[test]
    fn in_range_values_unchanged_by_sanitisation() {
        // The NaN guards must be bit-transparent for ordinary inputs —
        // cached datasets/models are fingerprinted over these encodings.
        let f = StateFeatures {
            ego_speed: 22.0,
            lead_distance: 55.0,
            closing_speed: 9.0,
            left_line: 1.75,
            right_line: 1.75,
            curvature: 0.002,
            heading: 0.01,
            prev_accel: -2.0,
            prev_steer: 0.01,
        };
        let e = f.encode();
        assert_eq!(e[0], 22.0 / 30.0);
        assert_eq!(e[2], 9.0 / 15.0);
        assert_eq!(e[3], 1.75 / 2.0);
    }

    #[test]
    fn target_round_trip() {
        let t = ControlTarget {
            accel: -3.0,
            steer: 0.1,
        };
        let d = ControlTarget::decode(&t.encode());
        assert!((d.accel - t.accel).abs() < 1e-12);
        assert!((d.steer - t.steer).abs() < 1e-12);
    }

    #[test]
    fn decode_handles_short_slices() {
        let d = ControlTarget::decode(&[]);
        assert_eq!(d.accel, 0.0);
        assert_eq!(d.steer, 0.0);
    }

    #[test]
    fn discrepancy_is_zero_for_identical() {
        let t = ControlTarget {
            accel: 1.0,
            steer: -0.2,
        };
        assert_eq!(t.discrepancy(&t), 0.0);
    }

    #[test]
    fn discrepancy_combines_both_axes() {
        let a = ControlTarget {
            accel: 0.0,
            steer: 0.0,
        };
        let b = ControlTarget {
            accel: 5.0,
            steer: 0.5,
        };
        assert!((a.discrepancy(&b) - 2.0).abs() < 1e-12);
    }
}
