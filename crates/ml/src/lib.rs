//! ML-based hazard-mitigation baseline: a from-scratch LSTM plus a
//! CUSUM-style anomaly gate (paper Section IV-D, Algorithm 1).
//!
//! The paper's baseline is a two-layer LSTM that, from 20 control cycles of
//! vehicle state and control history, predicts the *expected* gas and
//! steering outputs. At runtime a CUSUM statistic accumulates the
//! discrepancy between the LSTM's predictions and OpenPilot's outputs;
//! when it crosses a threshold the system enters recovery mode and executes
//! the LSTM's outputs (computed from fault-free, redundant-sensor inputs)
//! until the discrepancy subsides.
//!
//! Everything here — dense linear algebra, the LSTM forward pass and
//! backpropagation-through-time, the Adam optimiser — is implemented from
//! scratch on `std`, because the paper's PyTorch stack has no Rust
//! equivalent in this build environment. Hidden sizes are configurable; the
//! paper explored 256-128 … 64-32 and settled on 128-64.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod cusum;
pub mod ensemble;
pub mod features;
pub mod linear;
pub mod lstm;
pub mod maskcheck;
pub mod mitigation;
pub mod model;
pub mod train;

pub use cusum::Cusum;
pub use ensemble::{EnsembleConfig, EnsembleMitigator, PerceptionViews};
pub use features::{ControlTarget, StateFeatures, FEATURE_DIM, TARGET_DIM, WINDOW};
pub use maskcheck::{MaskCheckConfig, MaskCheckMitigator};
pub use mitigation::{MitigationConfig, MitigationKind, Mitigator, MlMitigator};
pub use model::{BatchInferScratch, BatchPredictorState, LstmPredictor, ModelSpec};
pub use train::{train, Dataset, Sample, TrainConfig, TrainReport};
