//! Minimal dense linear algebra: a fully-connected layer with gradients.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense affine map `y = W x + b` with accumulated gradients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Output dimension.
    pub rows: usize,
    /// Input dimension.
    pub cols: usize,
    /// Row-major weights, `rows × cols`.
    pub w: Vec<f64>,
    /// Bias, length `rows`.
    pub b: Vec<f64>,
    /// Weight gradient accumulator.
    pub gw: Vec<f64>,
    /// Bias gradient accumulator.
    pub gb: Vec<f64>,
}

impl Linear {
    /// Xavier-style random initialisation.
    #[must_use]
    pub fn new<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        assert!(rows > 0 && cols > 0);
        let scale = (1.0 / cols as f64).sqrt();
        let w = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self {
            rows,
            cols,
            w,
            b: vec![0.0; rows],
            gw: vec![0.0; rows * cols],
            gb: vec![0.0; rows],
        }
    }

    /// `y = W x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.forward_into(x, &mut y);
        y
    }

    /// `y = W x + b`, written into a preallocated output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn forward_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "input dimension mismatch");
        assert_eq!(y.len(), self.rows, "output dimension mismatch");
        for (r, y_r) in y.iter_mut().enumerate() {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w_rc, x_c) in row.iter().zip(x) {
                acc += w_rc * x_c;
            }
            *y_r = self.b[r] + acc;
        }
    }

    /// `y = W [xa; xb] + b` without materialising the concatenation.
    ///
    /// Bit-identical to [`Self::forward_into`] on the concatenated input:
    /// each row's accumulator consumes `xa`'s columns then `xb`'s, in the
    /// same order as a contiguous input slice.
    ///
    /// # Panics
    ///
    /// Panics if `xa.len() + xb.len() != cols` or `y.len() != rows`.
    pub fn forward_concat_into(&self, xa: &[f64], xb: &[f64], y: &mut [f64]) {
        assert_eq!(xa.len() + xb.len(), self.cols, "input dimension mismatch");
        assert_eq!(y.len(), self.rows, "output dimension mismatch");
        let na = xa.len();
        for (r, y_r) in y.iter_mut().enumerate() {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w_rc, x_c) in row[..na].iter().zip(xa) {
                acc += w_rc * x_c;
            }
            for (w_rc, x_c) in row[na..].iter().zip(xb) {
                acc += w_rc * x_c;
            }
            *y_r = self.b[r] + acc;
        }
    }

    /// Batched `Y = W X + b` over lane-contiguous panels.
    ///
    /// `x` is a `cols × width` panel (`x[c * width + lane]`), `y` a
    /// `rows × width` panel. The weights are stationary and the lane
    /// dimension is processed in register-resident blocks of
    /// [`LANE_BLOCK`]: each weight is loaded once per block and broadcast
    /// across the block's accumulators, which live in registers for the
    /// whole column sweep instead of round-tripping through the output
    /// panel on every weight.
    ///
    /// Bit-identical per lane to [`Self::forward_into`]: lane `l` sees the
    /// same multiplies in the same column order, with the bias added last
    /// (`b[r] + acc`, the exact scalar expression). Blocking only changes
    /// *which lanes* are computed together, never the per-lane operation
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics on panel dimension mismatch or `width == 0`.
    pub fn forward_batch(&self, width: usize, x: &[f64], y: &mut [f64]) {
        assert!(width > 0, "batch width must be ≥ 1");
        assert_eq!(x.len(), self.cols * width, "input panel dimension mismatch");
        assert_eq!(y.len(), self.rows * width, "output panel dimension mismatch");
        self.forward_concat_panels(width, x, &[], y);
    }

    /// Batched [`Self::forward_concat_into`]: `Y = W [Xa; Xb] + b` over
    /// lane-contiguous panels without materialising the concatenation.
    ///
    /// `xa` is an `na × width` panel, `xb` a `(cols − na) × width` panel.
    /// Bit-identical per lane to the scalar concat forward: each row's
    /// accumulator consumes `xa`'s columns then `xb`'s in order, bias last.
    /// Lane blocking as in [`Self::forward_batch`].
    ///
    /// # Panics
    ///
    /// Panics on panel dimension mismatch or `width == 0`.
    pub fn forward_concat_batch(&self, width: usize, xa: &[f64], xb: &[f64], y: &mut [f64]) {
        assert!(width > 0, "batch width must be ≥ 1");
        assert_eq!(
            xa.len() + xb.len(),
            self.cols * width,
            "input panel dimension mismatch"
        );
        assert!(xa.len().is_multiple_of(width), "xa panel not a multiple of width");
        assert_eq!(y.len(), self.rows * width, "output panel dimension mismatch");
        self.forward_concat_panels(width, xa, xb, y);
    }

    /// Shared lane-blocked kernel behind the batched forwards (dimensions
    /// already validated by the callers; `xb` may be empty).
    fn forward_concat_panels(&self, width: usize, xa: &[f64], xb: &[f64], y: &mut [f64]) {
        let na = xa.len() / width;
        for r in 0..self.rows {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            let out = &mut y[r * width..(r + 1) * width];
            let b_r = self.b[r];
            let mut start = 0;
            while start < width {
                // Const-sized blocks all the way down so even ragged
                // tails (and widths below LANE_BLOCK) keep their
                // accumulators in registers.
                let left = width - start;
                let taken = if left >= 8 {
                    block::<8>(row, na, xa, xb, width, start, b_r, out)
                } else if left >= 4 {
                    block::<4>(row, na, xa, xb, width, start, b_r, out)
                } else if left >= 2 {
                    block::<2>(row, na, xa, xb, width, start, b_r, out)
                } else {
                    block::<1>(row, na, xa, xb, width, start, b_r, out)
                };
                start += taken;
            }
        }
    }

    /// Accumulates gradients for one sample and returns `dL/dx`.
    ///
    /// `x` must be the input used in the corresponding forward pass and
    /// `dy` the gradient of the loss with respect to the output.
    #[must_use]
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.cols];
        let rows = self.rows;
        let cols = self.cols;
        backward_kernel(
            &self.w,
            rows,
            cols,
            x,
            dy,
            &mut self.gw,
            &mut self.gb,
            &mut dx,
        );
        dx
    }

    /// Gradient accumulation into caller-owned buffers (`&self` receiver so
    /// workers can share one read-only weight set).
    ///
    /// Adds this sample's parameter gradients into `gw`/`gb` and *writes*
    /// (overwrites) `dL/dx` into `dx`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn backward_into(
        &self,
        x: &[f64],
        dy: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
        dx: &mut [f64],
    ) {
        dx.fill(0.0);
        backward_kernel(&self.w, self.rows, self.cols, x, dy, gw, gb, dx);
    }

    /// [`Self::backward_into`] for a concatenated input `[xa; xb]`, writing
    /// the input gradient into two buffers without materialising the
    /// concatenation. Bit-identical to the contiguous version.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_concat_into(
        &self,
        xa: &[f64],
        xb: &[f64],
        dy: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
        dxa: &mut [f64],
        dxb: &mut [f64],
    ) {
        let na = xa.len();
        assert_eq!(na + xb.len(), self.cols, "input dimension mismatch");
        assert_eq!(dy.len(), self.rows, "gradient dimension mismatch");
        assert_eq!(gw.len(), self.w.len());
        assert_eq!(gb.len(), self.rows);
        assert_eq!(dxa.len(), na);
        assert_eq!(dxb.len(), xb.len());
        dxa.fill(0.0);
        dxb.fill(0.0);
        for (r, dy_r) in dy.iter().enumerate() {
            gb[r] += dy_r;
            let row_w = &self.w[r * self.cols..(r + 1) * self.cols];
            let row_g = &mut gw[r * self.cols..(r + 1) * self.cols];
            for c in 0..na {
                row_g[c] += dy_r * xa[c];
                dxa[c] += row_w[c] * dy_r;
            }
            for c in 0..xb.len() {
                row_g[na + c] += dy_r * xb[c];
                dxb[c] += row_w[na + c] * dy_r;
            }
        }
    }

    /// Clears the gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Total number of parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Computes one register-blocked group of `N` lanes for row `row` of the
/// batched matvec: `out[start + j] = b_r + Σ_c row[c] · x[c·width+start+j]`
/// with the `xa` columns consumed before the `xb` columns. `N` is a
/// compile-time constant so the accumulators stay in registers across the
/// whole column sweep (eight doubles fit in two 256-bit vectors). Returns
/// `N` so the caller can advance its lane cursor.
#[allow(clippy::too_many_arguments)]
#[inline]
fn block<const N: usize>(
    row: &[f64],
    na: usize,
    xa: &[f64],
    xb: &[f64],
    width: usize,
    start: usize,
    b_r: f64,
    out: &mut [f64],
) -> usize {
    let mut acc = [0.0f64; N];
    accumulate_lanes::<N>(&row[..na], xa, width, start, &mut acc);
    accumulate_lanes::<N>(&row[na..], xb, width, start, &mut acc);
    for (o, a) in out[start..start + N].iter_mut().zip(acc) {
        *o = b_r + a;
    }
    N
}

/// Accumulates `acc[j] += w[c] * x[c * width + start + j]` over all
/// columns for a block of `N` lanes.
#[inline]
fn accumulate_lanes<const N: usize>(
    row: &[f64],
    x: &[f64],
    width: usize,
    start: usize,
    acc: &mut [f64; N],
) {
    for (c, w_rc) in row.iter().enumerate() {
        let xs = &x[c * width + start..c * width + start + N];
        for j in 0..N {
            acc[j] += w_rc * xs[j];
        }
    }
}

/// Shared gradient kernel: `gb += dy`, `gw += dy ⊗ x`, `dx += Wᵀ dy`.
///
/// `dx` is accumulated into (callers zero it first when they want a pure
/// write), matching the historical accumulation order exactly.
#[allow(clippy::too_many_arguments)]
fn backward_kernel(
    w: &[f64],
    rows: usize,
    cols: usize,
    x: &[f64],
    dy: &[f64],
    gw: &mut [f64],
    gb: &mut [f64],
    dx: &mut [f64],
) {
    assert_eq!(x.len(), cols, "input dimension mismatch");
    assert_eq!(dy.len(), rows, "gradient dimension mismatch");
    assert_eq!(gw.len(), w.len());
    assert_eq!(gb.len(), rows);
    assert_eq!(dx.len(), cols);
    for (r, dy_r) in dy.iter().enumerate() {
        gb[r] += dy_r;
        let row_w = &w[r * cols..(r + 1) * cols];
        let row_g = &mut gw[r * cols..(r + 1) * cols];
        for c in 0..cols {
            row_g[c] += dy_r * x[c];
            dx[c] += row_w[c] * dy_r;
        }
    }
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn forward_matches_manual() {
        let mut l = Linear::new(2, 3, &mut rng());
        l.w = vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        l.b = vec![0.1, -0.1];
        let y = l.forward(&[2.0, 3.0, 4.0]);
        assert!((y[0] - (2.0 - 4.0 + 0.1)).abs() < 1e-12);
        assert!((y[1] - (1.0 + 1.5 + 2.0 - 0.1)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn dimension_mismatch_panics() {
        let l = Linear::new(2, 3, &mut rng());
        let _ = l.forward(&[1.0, 2.0]);
    }

    #[test]
    fn backward_gradient_check() {
        // Finite-difference check of dL/dw and dL/dx for L = sum(y).
        let mut l = Linear::new(3, 4, &mut rng());
        let x: Vec<f64> = vec![0.3, -0.2, 0.8, 0.1];
        let dy = vec![1.0; 3];
        let dx = l.backward(&x, &dy);

        let eps = 1e-6;
        // dL/dx.
        for c in 0..4 {
            let mut xp = x.clone();
            xp[c] += eps;
            let mut xm = x.clone();
            xm[c] -= eps;
            let lp: f64 = l.forward(&xp).iter().sum();
            let lm: f64 = l.forward(&xm).iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx[c]).abs() < 1e-6, "dx[{c}]: {num} vs {}", dx[c]);
        }
        // dL/dw for a couple of entries.
        for idx in [0, 5, 11] {
            let orig = l.w[idx];
            l.w[idx] = orig + eps;
            let lp: f64 = l.forward(&x).iter().sum();
            l.w[idx] = orig - eps;
            let lm: f64 = l.forward(&x).iter().sum();
            l.w[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - l.gw[idx]).abs() < 1e-6,
                "gw[{idx}]: {num} vs {}",
                l.gw[idx]
            );
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = Linear::new(2, 2, &mut rng());
        let _ = l.backward(&[1.0, 1.0], &[1.0, 1.0]);
        assert!(l.gw.iter().any(|g| *g != 0.0));
        l.zero_grad();
        assert!(l.gw.iter().all(|g| *g == 0.0));
        assert!(l.gb.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999_999);
        assert!(sigmoid(-30.0) < 1e-6);
        // Stability at extremes.
        assert!(sigmoid(-1e6).is_finite());
        assert!(sigmoid(1e6).is_finite());
    }

    #[test]
    fn param_count() {
        let l = Linear::new(4, 5, &mut rng());
        assert_eq!(l.param_count(), 24);
    }

    /// Deterministic pseudo-random lane inputs without an RNG dependency.
    fn lane_input(cols: usize, width: usize, salt: f64) -> Vec<f64> {
        (0..cols * width)
            .map(|i| ((i as f64) * 0.7310 + salt).sin())
            .collect()
    }

    #[test]
    fn forward_batch_bitwise_matches_scalar() {
        let l = Linear::new(5, 7, &mut rng());
        for width in [1usize, 3, 8, 32] {
            let panel = lane_input(7, width, 0.25);
            let mut y = vec![0.0; 5 * width];
            l.forward_batch(width, &panel, &mut y);
            for lane in 0..width {
                let x: Vec<f64> = (0..7).map(|c| panel[c * width + lane]).collect();
                let expect = l.forward(&x);
                for r in 0..5 {
                    assert_eq!(
                        y[r * width + lane].to_bits(),
                        expect[r].to_bits(),
                        "width {width} lane {lane} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_concat_batch_bitwise_matches_scalar() {
        let l = Linear::new(6, 9, &mut rng());
        for width in [1usize, 4, 32] {
            let pa = lane_input(4, width, 0.1);
            let pb = lane_input(5, width, 1.9);
            let mut y = vec![0.0; 6 * width];
            l.forward_concat_batch(width, &pa, &pb, &mut y);
            for lane in 0..width {
                let xa: Vec<f64> = (0..4).map(|c| pa[c * width + lane]).collect();
                let xb: Vec<f64> = (0..5).map(|c| pb[c * width + lane]).collect();
                let mut expect = vec![0.0; 6];
                l.forward_concat_into(&xa, &xb, &mut expect);
                for r in 0..6 {
                    assert_eq!(
                        y[r * width + lane].to_bits(),
                        expect[r].to_bits(),
                        "width {width} lane {lane} row {r}"
                    );
                }
            }
        }
    }
}
