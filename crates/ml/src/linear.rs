//! Minimal dense linear algebra: a fully-connected layer with gradients.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense affine map `y = W x + b` with accumulated gradients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Output dimension.
    pub rows: usize,
    /// Input dimension.
    pub cols: usize,
    /// Row-major weights, `rows × cols`.
    pub w: Vec<f64>,
    /// Bias, length `rows`.
    pub b: Vec<f64>,
    /// Weight gradient accumulator.
    pub gw: Vec<f64>,
    /// Bias gradient accumulator.
    pub gb: Vec<f64>,
}

impl Linear {
    /// Xavier-style random initialisation.
    #[must_use]
    pub fn new<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        assert!(rows > 0 && cols > 0);
        let scale = (1.0 / cols as f64).sqrt();
        let w = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self {
            rows,
            cols,
            w,
            b: vec![0.0; rows],
            gw: vec![0.0; rows * cols],
            gb: vec![0.0; rows],
        }
    }

    /// `y = W x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "input dimension mismatch");
        let mut y = self.b.clone();
        for (r, y_r) in y.iter_mut().enumerate() {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w_rc, x_c) in row.iter().zip(x) {
                acc += w_rc * x_c;
            }
            *y_r += acc;
        }
        y
    }

    /// Accumulates gradients for one sample and returns `dL/dx`.
    ///
    /// `x` must be the input used in the corresponding forward pass and
    /// `dy` the gradient of the loss with respect to the output.
    #[must_use]
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        assert_eq!(dy.len(), self.rows);
        let mut dx = vec![0.0; self.cols];
        for (r, dy_r) in dy.iter().enumerate() {
            self.gb[r] += dy_r;
            let row_w = &self.w[r * self.cols..(r + 1) * self.cols];
            let row_g = &mut self.gw[r * self.cols..(r + 1) * self.cols];
            for c in 0..self.cols {
                row_g[c] += dy_r * x[c];
                dx[c] += row_w[c] * dy_r;
            }
        }
        dx
    }

    /// Clears the gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Total number of parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn forward_matches_manual() {
        let mut l = Linear::new(2, 3, &mut rng());
        l.w = vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        l.b = vec![0.1, -0.1];
        let y = l.forward(&[2.0, 3.0, 4.0]);
        assert!((y[0] - (2.0 - 4.0 + 0.1)).abs() < 1e-12);
        assert!((y[1] - (1.0 + 1.5 + 2.0 - 0.1)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn dimension_mismatch_panics() {
        let l = Linear::new(2, 3, &mut rng());
        let _ = l.forward(&[1.0, 2.0]);
    }

    #[test]
    fn backward_gradient_check() {
        // Finite-difference check of dL/dw and dL/dx for L = sum(y).
        let mut l = Linear::new(3, 4, &mut rng());
        let x: Vec<f64> = vec![0.3, -0.2, 0.8, 0.1];
        let dy = vec![1.0; 3];
        let dx = l.backward(&x, &dy);

        let eps = 1e-6;
        // dL/dx.
        for c in 0..4 {
            let mut xp = x.clone();
            xp[c] += eps;
            let mut xm = x.clone();
            xm[c] -= eps;
            let lp: f64 = l.forward(&xp).iter().sum();
            let lm: f64 = l.forward(&xm).iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx[c]).abs() < 1e-6, "dx[{c}]: {num} vs {}", dx[c]);
        }
        // dL/dw for a couple of entries.
        for idx in [0, 5, 11] {
            let orig = l.w[idx];
            l.w[idx] = orig + eps;
            let lp: f64 = l.forward(&x).iter().sum();
            l.w[idx] = orig - eps;
            let lm: f64 = l.forward(&x).iter().sum();
            l.w[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - l.gw[idx]).abs() < 1e-6,
                "gw[{idx}]: {num} vs {}",
                l.gw[idx]
            );
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = Linear::new(2, 2, &mut rng());
        let _ = l.backward(&[1.0, 1.0], &[1.0, 1.0]);
        assert!(l.gw.iter().any(|g| *g != 0.0));
        l.zero_grad();
        assert!(l.gw.iter().all(|g| *g == 0.0));
        assert!(l.gb.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999_999);
        assert!(sigmoid(-30.0) < 1e-6);
        // Stability at extremes.
        assert!(sigmoid(-1e6).is_finite());
        assert!(sigmoid(1e6).is_finite());
    }

    #[test]
    fn param_count() {
        let l = Linear::new(4, 5, &mut rng());
        assert_eq!(l.param_count(), 24);
    }
}
