//! A single LSTM layer with full backpropagation through time.
//!
//! Gate layout in the packed weight matrix is `[input, forget, cell,
//! output]`, each block of size `hidden`. The layer processes one timestep
//! at a time and keeps per-step caches so a sequence can be unrolled
//! forwards and then differentiated backwards.

use crate::linear::{sigmoid, Linear};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cached activations for one timestep (needed by BPTT).
///
/// Reused across timesteps/samples: [`Lstm::step_cached`] overwrites the
/// buffers in place, so after the first use of a cache slot no allocation
/// happens on the training hot path.
#[derive(Debug, Clone, Default)]
pub struct LstmCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    tanh_c: Vec<f64>,
}

fn copy_into(dst: &mut Vec<f64>, src: &[f64]) {
    dst.clear();
    dst.extend_from_slice(src);
}

/// The scalar per-(unit, lane) gate expression shared by the masked and
/// unmasked batched loops — identical f64 sequence to [`Lstm::step_infer`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gate_lane(
    h: usize,
    width: usize,
    k: usize,
    lane: usize,
    z: &[f64],
    c_prev: &[f64],
    h_out: &mut [f64],
    c_out: &mut [f64],
) {
    let i = sigmoid(z[k * width + lane]);
    let f = sigmoid(z[(h + k) * width + lane]);
    let g = z[(2 * h + k) * width + lane].tanh();
    let o = sigmoid(z[(3 * h + k) * width + lane]);
    let c = f * c_prev[k * width + lane] + i * g;
    c_out[k * width + lane] = c;
    h_out[k * width + lane] = o * c.tanh();
}

/// One LSTM layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    /// Input dimension.
    pub input: usize,
    /// Hidden state dimension.
    pub hidden: usize,
    /// Packed gate transform: `4·hidden × (input + hidden)` plus bias.
    pub gates: Linear,
}

impl Lstm {
    /// Creates a layer with random initialisation. Forget-gate biases start
    /// at +1 (the standard trick for gradient flow).
    #[must_use]
    pub fn new<R: Rng>(input: usize, hidden: usize, rng: &mut R) -> Self {
        let mut gates = Linear::new(4 * hidden, input + hidden, rng);
        for b in gates.b[hidden..2 * hidden].iter_mut() {
            *b = 1.0;
        }
        Self {
            input,
            hidden,
            gates,
        }
    }

    /// Runs one timestep. Returns `(h, c)` and the cache for BPTT.
    ///
    /// Allocating convenience wrapper around [`Self::step_cached`]; the
    /// training/inference hot paths use the `_into`-style variants with
    /// preallocated buffers instead.
    #[must_use]
    pub fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, LstmCache) {
        let h = self.hidden;
        let mut z = vec![0.0; 4 * h];
        let mut cache = LstmCache::default();
        let mut h_out = vec![0.0; h];
        let mut c_out = vec![0.0; h];
        self.step_cached(x, h_prev, c_prev, &mut z, &mut cache, &mut h_out, &mut c_out);
        (h_out, c_out, cache)
    }

    /// Allocation-free timestep that also records the BPTT cache in place.
    ///
    /// `z` is gate pre-activation scratch of length `4·hidden`; `h_out` /
    /// `c_out` must not alias `h_prev` / `c_prev` (callers double-buffer and
    /// swap). Bit-identical to [`Self::step`]: the packed gate matvec
    /// consumes `x` then `h_prev` in the same order as the concatenated
    /// input, and the element-wise gate math is unchanged.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn step_cached(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
        z: &mut [f64],
        cache: &mut LstmCache,
        h_out: &mut [f64],
        c_out: &mut [f64],
    ) {
        let h = self.hidden;
        assert_eq!(x.len(), self.input);
        assert_eq!(h_prev.len(), h);
        assert_eq!(c_prev.len(), h);
        self.gates.forward_concat_into(x, h_prev, z);

        copy_into(&mut cache.x, x);
        copy_into(&mut cache.h_prev, h_prev);
        copy_into(&mut cache.c_prev, c_prev);
        cache.i.resize(h, 0.0);
        cache.f.resize(h, 0.0);
        cache.g.resize(h, 0.0);
        cache.o.resize(h, 0.0);
        cache.tanh_c.resize(h, 0.0);

        for k in 0..h {
            cache.i[k] = sigmoid(z[k]);
            cache.f[k] = sigmoid(z[h + k]);
            cache.g[k] = z[2 * h + k].tanh();
            cache.o[k] = sigmoid(z[3 * h + k]);
            c_out[k] = cache.f[k] * c_prev[k] + cache.i[k] * cache.g[k];
            cache.tanh_c[k] = c_out[k].tanh();
            h_out[k] = cache.o[k] * cache.tanh_c[k];
        }
    }

    /// Allocation-free inference timestep (no BPTT cache).
    ///
    /// Same numerics as [`Self::step`]; `h_out` / `c_out` must not alias
    /// `h_prev` / `c_prev`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn step_infer(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
        z: &mut [f64],
        h_out: &mut [f64],
        c_out: &mut [f64],
    ) {
        let h = self.hidden;
        assert_eq!(x.len(), self.input);
        assert_eq!(h_prev.len(), h);
        assert_eq!(c_prev.len(), h);
        self.gates.forward_concat_into(x, h_prev, z);
        for k in 0..h {
            let i = sigmoid(z[k]);
            let f = sigmoid(z[h + k]);
            let g = z[2 * h + k].tanh();
            let o = sigmoid(z[3 * h + k]);
            c_out[k] = f * c_prev[k] + i * g;
            h_out[k] = o * c_out[k].tanh();
        }
    }

    /// Batched allocation-free inference timestep over lane-contiguous
    /// panels (`panel[unit * width + lane]`).
    ///
    /// One weights-stationary gate matvec serves the whole batch; the
    /// element-wise gate math then runs per lane in the scalar order.
    /// Bit-identical per lane to [`Self::step_infer`] — each lane sees the
    /// exact same f64 operation sequence, so batching (and the batch
    /// composition) never changes a run's numerics.
    ///
    /// `mask`, when present, marks which lanes are live: the gate
    /// transcendentals (the dominant per-lane cost) are skipped for masked
    /// -out lanes and their `h_out` / `c_out` entries are left untouched.
    /// A masked-out lane's state is therefore stale and must be reset
    /// (zeroed) before the lane is reactivated — exactly what the lockstep
    /// executor's refill does. The matvec still covers all lanes; masked
    /// columns hold finite garbage that no one reads, and lanes never mix.
    ///
    /// `h_out` / `c_out` must not alias `h_prev` / `c_prev`.
    ///
    /// # Panics
    ///
    /// Panics on any panel dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn step_batch(
        &self,
        width: usize,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
        z: &mut [f64],
        h_out: &mut [f64],
        c_out: &mut [f64],
        mask: Option<&[bool]>,
    ) {
        let h = self.hidden;
        assert_eq!(x.len(), self.input * width);
        assert_eq!(h_prev.len(), h * width);
        assert_eq!(c_prev.len(), h * width);
        assert_eq!(z.len(), 4 * h * width);
        assert_eq!(h_out.len(), h * width);
        assert_eq!(c_out.len(), h * width);
        self.gates.forward_concat_batch(width, x, h_prev, z);
        match mask {
            None => {
                for k in 0..h {
                    for lane in 0..width {
                        gate_lane(h, width, k, lane, z, c_prev, h_out, c_out);
                    }
                }
            }
            Some(live) => {
                assert_eq!(live.len(), width, "mask length mismatch");
                for k in 0..h {
                    for (lane, &is_live) in live.iter().enumerate() {
                        if is_live {
                            gate_lane(h, width, k, lane, z, c_prev, h_out, c_out);
                        }
                    }
                }
            }
        }
    }

    /// Backpropagates one timestep.
    ///
    /// `dh`/`dc` are the gradients flowing into this step's `h`/`c` outputs;
    /// returns `(dx, dh_prev, dc_prev)` and accumulates parameter gradients.
    ///
    /// Allocating wrapper around [`Self::step_backward_into`] that
    /// accumulates into the layer's own `gates.gw`/`gates.gb`.
    #[must_use]
    pub fn step_backward(
        &mut self,
        cache: &LstmCache,
        dh: &[f64],
        dc_in: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h = self.hidden;
        let mut dz = vec![0.0; 4 * h];
        let mut dx = vec![0.0; self.input];
        let mut dh_prev = vec![0.0; h];
        let mut dc_prev = vec![0.0; h];
        // Temporarily detach the accumulators so the shared `&self` kernel
        // can borrow the weights read-only.
        let mut gw = std::mem::take(&mut self.gates.gw);
        let mut gb = std::mem::take(&mut self.gates.gb);
        self.step_backward_into(
            cache,
            dh,
            dc_in,
            &mut gw,
            &mut gb,
            &mut dz,
            &mut dx,
            &mut dh_prev,
            &mut dc_prev,
        );
        self.gates.gw = gw;
        self.gates.gb = gb;
        (dx, dh_prev, dc_prev)
    }

    /// Allocation-free BPTT step into caller-owned gradient buffers.
    ///
    /// Adds this step's parameter gradients into `gw`/`gb` (layout matching
    /// `gates.w`/`gates.b`), using `dz` (length `4·hidden`) as scratch, and
    /// writes the input-side gradients into `dx`/`dh_prev`/`dc_prev`. The
    /// `&self` receiver lets parallel workers share one read-only weight
    /// set while accumulating into private buffers.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn step_backward_into(
        &self,
        cache: &LstmCache,
        dh: &[f64],
        dc_in: &[f64],
        gw: &mut [f64],
        gb: &mut [f64],
        dz: &mut [f64],
        dx: &mut [f64],
        dh_prev: &mut [f64],
        dc_prev: &mut [f64],
    ) {
        let h = self.hidden;
        assert_eq!(dh.len(), h);
        assert_eq!(dc_in.len(), h);
        assert_eq!(dz.len(), 4 * h);

        for k in 0..h {
            // h = o · tanh(c)
            let do_ = dh[k] * cache.tanh_c[k];
            let dc = dc_in[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
            // c = f·c_prev + i·g
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev[k];
            let dg = dc * cache.i[k];
            dc_prev[k] = dc * cache.f[k];
            // Gate pre-activations.
            dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            dz[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            dz[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            dz[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }

        self.gates
            .backward_concat_into(&cache.x, &cache.h_prev, dz, gw, gb, dx, dh_prev);
    }

    /// Clears gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gates.zero_grad();
    }

    /// Total parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.gates.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn shapes_are_consistent() {
        let l = Lstm::new(3, 4, &mut rng());
        let (h, c, _) = l.step(&[0.1, 0.2, 0.3], &[0.0; 4], &[0.0; 4]);
        assert_eq!(h.len(), 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn outputs_bounded_by_design() {
        // |h| = |o·tanh(c)| < 1 when |c| small; in general h ∈ (−1, 1).
        let l = Lstm::new(2, 8, &mut rng());
        let mut h = vec![0.0; 8];
        let mut c = vec![0.0; 8];
        for t in 0..50 {
            let x = [(t as f64 * 0.37).sin() * 3.0, (t as f64 * 0.11).cos() * 3.0];
            let (nh, nc, _) = l.step(&x, &h, &c);
            h = nh;
            c = nc;
            assert!(h.iter().all(|v| v.abs() < 1.0));
        }
    }

    #[test]
    fn forget_bias_initialised_positive() {
        let l = Lstm::new(2, 3, &mut rng());
        for k in 3..6 {
            assert_eq!(l.gates.b[k], 1.0);
        }
    }

    /// Finite-difference gradient check through a 3-step unroll.
    #[test]
    fn bptt_gradient_check() {
        let mut l = Lstm::new(2, 3, &mut rng());
        let xs = [vec![0.5, -0.3], vec![0.1, 0.9], vec![-0.7, 0.2]];

        // Loss = sum of final h.
        let loss = |l: &Lstm| -> f64 {
            let mut h = vec![0.0; 3];
            let mut c = vec![0.0; 3];
            for x in &xs {
                let (nh, nc, _) = l.step(x, &h, &c);
                h = nh;
                c = nc;
            }
            h.iter().sum()
        };

        // Analytic gradients.
        let mut h = vec![0.0; 3];
        let mut c = vec![0.0; 3];
        let mut caches = Vec::new();
        for x in &xs {
            let (nh, nc, cache) = l.step(x, &h, &c);
            caches.push(cache);
            h = nh;
            c = nc;
        }
        l.zero_grad();
        let mut dh = vec![1.0; 3];
        let mut dc = vec![0.0; 3];
        for cache in caches.iter().rev() {
            let (_dx, dhp, dcp) = l.step_backward(cache, &dh, &dc);
            dh = dhp;
            dc = dcp;
        }

        // Compare against finite differences for a sample of weights.
        let eps = 1e-6;
        for idx in [0usize, 7, 19, 33] {
            let orig = l.gates.w[idx];
            l.gates.w[idx] = orig + eps;
            let lp = loss(&l);
            l.gates.w[idx] = orig - eps;
            let lm = loss(&l);
            l.gates.w[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = l.gates.gw[idx];
            assert!(
                (num - ana).abs() < 1e-5,
                "w[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        for idx in [0usize, 4, 11] {
            let orig = l.gates.b[idx];
            l.gates.b[idx] = orig + eps;
            let lp = loss(&l);
            l.gates.b[idx] = orig - eps;
            let lm = loss(&l);
            l.gates.b[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = l.gates.gb[idx];
            assert!(
                (num - ana).abs() < 1e-5,
                "b[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn input_gradient_check() {
        let mut l = Lstm::new(2, 3, &mut rng());
        let x = vec![0.4, -0.6];
        let h0 = vec![0.1, -0.2, 0.3];
        let c0 = vec![0.05, 0.0, -0.1];
        let (_h, _c, cache) = l.step(&x, &h0, &c0);
        let (dx, _dhp, _dcp) = l.step_backward(&cache, &[1.0, 1.0, 1.0], &[0.0; 3]);

        let eps = 1e-6;
        for k in 0..2 {
            let mut xp = x.clone();
            xp[k] += eps;
            let mut xm = x.clone();
            xm[k] -= eps;
            let lp: f64 = l.step(&xp, &h0, &c0).0.iter().sum();
            let lm: f64 = l.step(&xm, &h0, &c0).0.iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx[k]).abs() < 1e-6, "dx[{k}]: {num} vs {}", dx[k]);
        }
    }

    #[test]
    fn step_batch_bitwise_matches_step_infer() {
        let l = Lstm::new(3, 5, &mut rng());
        for width in [1usize, 4, 32] {
            // Independent scalar streams, one per lane.
            let mut hs: Vec<Vec<f64>> = vec![vec![0.0; 5]; width];
            let mut cs: Vec<Vec<f64>> = vec![vec![0.0; 5]; width];
            // Batched panels.
            let mut hp = vec![0.0; 5 * width];
            let mut cp = vec![0.0; 5 * width];
            let mut z = vec![0.0; 4 * 5 * width];
            let mut hn = vec![0.0; 5 * width];
            let mut cn = vec![0.0; 5 * width];
            let mut zs = vec![0.0; 4 * 5];
            for t in 0..30 {
                let xs: Vec<Vec<f64>> = (0..width)
                    .map(|lane| {
                        (0..3)
                            .map(|c| ((t * 3 + c) as f64 * 0.31 + lane as f64 * 1.7).sin())
                            .collect()
                    })
                    .collect();
                let mut xp = vec![0.0; 3 * width];
                for (lane, x) in xs.iter().enumerate() {
                    for (c, v) in x.iter().enumerate() {
                        xp[c * width + lane] = *v;
                    }
                }
                l.step_batch(width, &xp, &hp, &cp, &mut z, &mut hn, &mut cn, None);
                std::mem::swap(&mut hp, &mut hn);
                std::mem::swap(&mut cp, &mut cn);
                for lane in 0..width {
                    let mut h_out = vec![0.0; 5];
                    let mut c_out = vec![0.0; 5];
                    l.step_infer(&xs[lane], &hs[lane], &cs[lane], &mut zs, &mut h_out, &mut c_out);
                    hs[lane] = h_out;
                    cs[lane] = c_out;
                    for k in 0..5 {
                        assert_eq!(
                            hp[k * width + lane].to_bits(),
                            hs[lane][k].to_bits(),
                            "h diverged: width {width} lane {lane} t {t} k {k}"
                        );
                        assert_eq!(
                            cp[k * width + lane].to_bits(),
                            cs[lane][k].to_bits(),
                            "c diverged: width {width} lane {lane} t {t} k {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn param_count_formula() {
        let l = Lstm::new(8, 16, &mut rng());
        assert_eq!(l.param_count(), 4 * 16 * (8 + 16) + 4 * 16);
    }
}
