//! Masked-view agreement check (PatchGuard/PatchCleanser-inspired),
//! adapted to the perception-emulator setting.
//!
//! The image-domain defenses re-run a classifier under masks that each
//! occlude a different region; a localised patch cannot corrupt the views
//! that cover it, so an attacked input produces an *inconsistent* vote
//! across views while a clean input is unanimous. Our perception emulator
//! has no pixels, but the same structure transplants: view 0 plays the
//! patch-occluding mask and reads the perception channels exactly as they
//! were *before* fault injection, while views 1..M read the (possibly
//! attacked) post-injection channels under deterministic jitter of the
//! fault delta. On a benign cycle the delta is zero, every view reads the
//! identical clean value, and the vote is unanimous bitwise — the check
//! can never fire. Under a patch the occluding view disagrees with the
//! rest beyond a physical tolerance; enough consecutive inconsistent
//! votes latch attack evidence, and while latched the mitigator executes
//! the LSTM's redundant-state prediction (the same recovery command
//! Algorithm 1 uses), releasing after a long consistent streak.
//!
//! Determinism mirrors [`crate::ensemble`]: the view jitter comes from a
//! dedicated [`DeterministicRng`] split and is drawn for every view on
//! every cycle regardless of the data, so stream consumption is uniform.

use crate::ensemble::PerceptionViews;
use crate::features::{ControlTarget, WINDOW};
use crate::model::{InferScratch, LstmPredictor, PredictorState};
use adas_simulator::DeterministicRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Masked-view check parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskCheckConfig {
    /// Total views per cycle (M), including the patch-occluding view 0.
    pub views: usize,
    /// Standard deviation of the multiplicative jitter applied to the
    /// fault delta in the non-occluding views.
    pub jitter_std: f64,
    /// Lead-distance agreement tolerance between views, metres.
    pub rd_tolerance: f64,
    /// Curvature agreement tolerance between views, 1/m.
    pub kappa_tolerance: f64,
    /// Consecutive inconsistent votes required to latch attack evidence.
    pub latch_votes: u32,
    /// Consecutive consistent votes required to release the latch.
    pub release_steps: u32,
}

impl Default for MaskCheckConfig {
    fn default() -> Self {
        Self {
            views: 6,
            jitter_std: 0.05,
            rd_tolerance: 1.5,
            kappa_tolerance: 1.5e-3,
            latch_votes: 5,
            release_steps: 100,
        }
    }
}

impl MaskCheckConfig {
    /// Default parameters at an explicit view count (clamped to ≥ 2 — the
    /// vote needs the occluding view plus at least one exposed view).
    #[must_use]
    pub fn with_views(views: usize) -> Self {
        Self {
            views: views.max(2),
            ..Self::default()
        }
    }
}

/// The masked-view agreement runtime.
#[derive(Debug, Clone)]
pub struct MaskCheckMitigator {
    model: Arc<LstmPredictor>,
    config: MaskCheckConfig,
    rng: DeterministicRng,
    state: PredictorState,
    scratch: InferScratch,
    warmup: usize,
    inconsistent_streak: u32,
    consistent_streak: u32,
    latched: bool,
    first_activation: Option<f64>,
    activations: u64,
}

impl MaskCheckMitigator {
    /// Wraps a (trained) model in the masked-view runtime. `rng` must be a
    /// dedicated split of the run's deterministic stream.
    #[must_use]
    pub fn new(
        model: impl Into<Arc<LstmPredictor>>,
        config: MaskCheckConfig,
        rng: DeterministicRng,
    ) -> Self {
        let model = model.into();
        let config = MaskCheckConfig {
            views: config.views.max(2),
            ..config
        };
        let state = model.init_state();
        let scratch = model.infer_scratch();
        Self {
            model,
            config,
            rng,
            state,
            scratch,
            warmup: 0,
            inconsistent_streak: 0,
            consistent_streak: 0,
            latched: false,
            first_activation: None,
            activations: 0,
        }
    }

    /// The active parameters.
    #[must_use]
    pub fn config(&self) -> &MaskCheckConfig {
        &self.config
    }

    /// Whether attack evidence is currently latched.
    #[must_use]
    pub fn latched(&self) -> bool {
        self.latched
    }

    /// Time the latch first engaged, if ever.
    #[must_use]
    pub fn first_activation_time(&self) -> Option<f64> {
        self.first_activation
    }

    /// How many times the latch has engaged.
    #[must_use]
    pub fn activation_count(&self) -> u64 {
        self.activations
    }

    /// Casts this cycle's masked-view vote. Inconsistent when the lead
    /// presence differs across views or any exposed view deviates from the
    /// occluding view beyond the physical tolerances.
    fn vote_inconsistent(&mut self, views: &PerceptionViews) -> bool {
        let mut inconsistent = views.presence_mismatch();
        // Views 1..M read the post-injection channels under jitter of the
        // fault delta; view 0 (the occluding mask) reads the clean values.
        // All draws happen unconditionally to keep the stream uniform.
        for _ in 1..self.config.views {
            let g_rd = self.rng.gaussian(self.config.jitter_std);
            let g_kappa = self.rng.gaussian(self.config.jitter_std);
            if let (Some(clean), Some(attacked)) = (views.clean_rd, views.attacked_rd) {
                let rd_v = clean + (attacked - clean) * (1.0 + g_rd);
                if (rd_v - clean).abs() > self.config.rd_tolerance {
                    inconsistent = true;
                }
            }
            let kappa_v = views.clean_kappa
                + (views.attacked_kappa - views.clean_kappa) * (1.0 + g_kappa);
            if (kappa_v - views.clean_kappa).abs() > self.config.kappa_tolerance {
                inconsistent = true;
            }
        }
        inconsistent
    }

    /// Runs one control cycle: advances the recovery LSTM on the redundant
    /// state, casts the masked-view vote, updates the latch, and returns
    /// `Some(recovery)` while attack evidence is latched.
    pub fn update_views(&mut self, views: &PerceptionViews, time: f64) -> Option<ControlTarget> {
        // The recovery stream stays warm every cycle so the prediction is
        // meaningful the moment the latch engages.
        let y = self
            .model
            .step_with(&views.features.encode(), &mut self.state, &mut self.scratch);
        let prediction = ControlTarget::decode(&y);
        let inconsistent = self.vote_inconsistent(views);

        if self.warmup < WINDOW {
            self.warmup += 1;
            return None;
        }

        if self.latched {
            if inconsistent {
                self.consistent_streak = 0;
            } else {
                self.consistent_streak += 1;
                if self.consistent_streak >= self.config.release_steps {
                    self.latched = false;
                    self.inconsistent_streak = 0;
                    self.consistent_streak = 0;
                    return None;
                }
            }
            Some(prediction)
        } else {
            if inconsistent {
                self.inconsistent_streak += 1;
                if self.inconsistent_streak >= self.config.latch_votes {
                    self.latched = true;
                    self.consistent_streak = 0;
                    self.activations += 1;
                    if self.first_activation.is_none() {
                        self.first_activation = Some(time);
                    }
                    return Some(prediction);
                }
            } else {
                self.inconsistent_streak = 0;
            }
            None
        }
    }

    /// Resets the runtime (new run) while keeping the trained weights and
    /// the jitter stream position — give a fresh run a fresh RNG split
    /// instead of reusing a reset mitigator when bit-identity matters.
    pub fn reset(&mut self) {
        self.state = self.model.init_state();
        self.warmup = 0;
        self.inconsistent_streak = 0;
        self.consistent_streak = 0;
        self.latched = false;
        self.first_activation = None;
        self.activations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::StateFeatures;
    use crate::model::ModelSpec;

    fn small_model() -> LstmPredictor {
        LstmPredictor::new(ModelSpec {
            hidden1: 8,
            hidden2: 4,
            seed: 2,
        })
    }

    fn benign_views() -> PerceptionViews {
        PerceptionViews {
            features: StateFeatures {
                ego_speed: 20.0,
                lead_distance: 40.0,
                closing_speed: 0.0,
                left_line: 1.75,
                right_line: 1.75,
                curvature: 0.0,
                heading: 0.0,
                prev_accel: 0.0,
                prev_steer: 0.0,
            },
            clean_rd: Some(40.0),
            attacked_rd: Some(40.0),
            clean_kappa: 0.001,
            attacked_kappa: 0.001,
            op_out: ControlTarget {
                accel: 0.3,
                steer: 0.0,
            },
        }
    }

    #[test]
    fn unanimous_views_never_latch() {
        let mut m = MaskCheckMitigator::new(
            small_model(),
            MaskCheckConfig::default(),
            DeterministicRng::from_seed(7),
        );
        for t in 0..500 {
            assert!(m.update_views(&benign_views(), t as f64 * 0.01).is_none());
        }
        assert!(!m.latched());
        assert_eq!(m.activation_count(), 0);
    }

    #[test]
    fn large_fault_delta_latches_after_vote_quorum() {
        let cfg = MaskCheckConfig::default();
        let mut m =
            MaskCheckMitigator::new(small_model(), cfg, DeterministicRng::from_seed(7));
        let mut attacked = benign_views();
        attacked.attacked_rd = Some(120.0);
        let mut engaged_at = None;
        for t in 0..200 {
            if m.update_views(&attacked, t as f64 * 0.01).is_some() && engaged_at.is_none() {
                engaged_at = Some(t);
            }
        }
        let at = engaged_at.expect("latch must engage");
        assert!(at >= WINDOW + cfg.latch_votes as usize - 1, "latched at {at}");
        assert!(m.latched());
        assert_eq!(m.activation_count(), 1);
    }

    #[test]
    fn presence_mismatch_latches() {
        let mut m = MaskCheckMitigator::new(
            small_model(),
            MaskCheckConfig::default(),
            DeterministicRng::from_seed(9),
        );
        let mut dropped = benign_views();
        dropped.attacked_rd = None;
        for t in 0..(WINDOW + 10) {
            let _ = m.update_views(&dropped, t as f64 * 0.01);
        }
        assert!(m.latched());
        assert!(m.first_activation_time().is_some());
    }

    #[test]
    fn latch_releases_after_consistent_streak() {
        let cfg = MaskCheckConfig {
            release_steps: 20,
            ..MaskCheckConfig::default()
        };
        let mut m =
            MaskCheckMitigator::new(small_model(), cfg, DeterministicRng::from_seed(5));
        let mut attacked = benign_views();
        attacked.attacked_rd = Some(120.0);
        for t in 0..100 {
            let _ = m.update_views(&attacked, t as f64 * 0.01);
        }
        assert!(m.latched());
        // The patch passes; views agree again.
        for t in 100..200 {
            let _ = m.update_views(&benign_views(), t as f64 * 0.01);
        }
        assert!(!m.latched(), "latch must release after the benign streak");
    }

    #[test]
    fn brief_glitch_below_quorum_does_not_latch() {
        let cfg = MaskCheckConfig::default();
        let mut m =
            MaskCheckMitigator::new(small_model(), cfg, DeterministicRng::from_seed(3));
        let mut attacked = benign_views();
        attacked.attacked_rd = Some(120.0);
        let benign = benign_views();
        for t in 0..(WINDOW + 40) {
            // Alternate: never latch_votes consecutive inconsistent cycles.
            let v = if t % 3 == 0 { &attacked } else { &benign };
            let _ = m.update_views(v, t as f64 * 0.01);
        }
        assert!(!m.latched());
        assert_eq!(m.activation_count(), 0);
    }

    #[test]
    fn reset_clears_runtime_state() {
        let mut m = MaskCheckMitigator::new(
            small_model(),
            MaskCheckConfig::default(),
            DeterministicRng::from_seed(1),
        );
        let mut attacked = benign_views();
        attacked.attacked_rd = None;
        for t in 0..(WINDOW + 10) {
            let _ = m.update_views(&attacked, t as f64 * 0.01);
        }
        m.reset();
        assert!(!m.latched());
        assert!(m.first_activation_time().is_none());
        assert_eq!(m.activation_count(), 0);
    }
}
