//! Runtime hazard mitigation (Algorithm 1).
//!
//! Watches the discrepancy between the LSTM's expected control outputs
//! (computed from fault-free, redundant-sensor state) and the ADAS's actual
//! outputs. A CUSUM gate switches into recovery mode, during which the
//! LSTM's outputs are executed, and back out once the discrepancy falls
//! below the bias.

use crate::cusum::Cusum;
use crate::ensemble::{EnsembleMitigator, PerceptionViews};
use crate::features::{ControlTarget, StateFeatures, FEATURE_DIM, TARGET_DIM, WINDOW};
use crate::maskcheck::MaskCheckMitigator;
use crate::model::{InferScratch, LstmPredictor, PredictorState};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which mitigation strategy guards a run — the `ADAS_MITIGATION` axis of
/// the Table VII-style comparison grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MitigationKind {
    /// The paper's Algorithm 1 baseline: LSTM prediction + CUSUM gate.
    #[default]
    Cusum,
    /// Uncertainty ensemble (Jiao et al.): M jittered perception views,
    /// disagreement de-rates control authority.
    Ensemble,
    /// Masked-view agreement check (PatchGuard-style): inconsistency
    /// across M masked/jittered views latches attack evidence.
    MaskCheck,
}

impl MitigationKind {
    /// Every strategy, in comparison-grid order.
    pub const ALL: [MitigationKind; 3] = [
        MitigationKind::Cusum,
        MitigationKind::Ensemble,
        MitigationKind::MaskCheck,
    ];

    /// Stable wire/cache code (0 = cusum, 1 = ensemble, 2 = maskcheck).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            MitigationKind::Cusum => 0,
            MitigationKind::Ensemble => 1,
            MitigationKind::MaskCheck => 2,
        }
    }

    /// Inverse of [`Self::code`]; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(MitigationKind::Cusum),
            1 => Some(MitigationKind::Ensemble),
            2 => Some(MitigationKind::MaskCheck),
            _ => None,
        }
    }

    /// The `ADAS_MITIGATION` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MitigationKind::Cusum => "cusum",
            MitigationKind::Ensemble => "ensemble",
            MitigationKind::MaskCheck => "maskcheck",
        }
    }

    /// Parses the `ADAS_MITIGATION` spelling (case-insensitive); `None`
    /// for unknown names.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "cusum" => Some(MitigationKind::Cusum),
            "ensemble" => Some(MitigationKind::Ensemble),
            "maskcheck" => Some(MitigationKind::MaskCheck),
            _ => None,
        }
    }
}

/// A run's mitigation runtime: any of the three strategies behind one
/// seam. The platform stages per-cycle inputs once and dispatches here —
/// the CUSUM variant consumes the encoded feature vector (scalar forward
/// inline, or one lane of the campaign's batched panel), the view-based
/// variants consume [`PerceptionViews`] and run their own view fan-out.
#[derive(Debug, Clone)]
pub enum Mitigator {
    /// LSTM + CUSUM (Algorithm 1).
    Cusum(MlMitigator),
    /// Uncertainty ensemble.
    Ensemble(EnsembleMitigator),
    /// Masked-view agreement check.
    MaskCheck(MaskCheckMitigator),
}

impl Mitigator {
    /// Which strategy this is.
    #[must_use]
    pub fn kind(&self) -> MitigationKind {
        match self {
            Mitigator::Cusum(_) => MitigationKind::Cusum,
            Mitigator::Ensemble(_) => MitigationKind::Ensemble,
            Mitigator::MaskCheck(_) => MitigationKind::MaskCheck,
        }
    }

    /// True when this strategy consumes [`PerceptionViews`] (clean +
    /// attacked perception reads) instead of the encoded CUSUM input.
    #[must_use]
    pub fn wants_views(&self) -> bool {
        !matches!(self, Mitigator::Cusum(_))
    }

    /// The CUSUM runtime, when that is the active strategy (the batched
    /// campaign executor drives its forward/decide split directly).
    #[must_use]
    pub fn as_cusum_mut(&mut self) -> Option<&mut MlMitigator> {
        match self {
            Mitigator::Cusum(ml) => Some(ml),
            _ => None,
        }
    }

    /// Runs one control cycle of a view-based strategy.
    ///
    /// # Panics
    ///
    /// Panics for the CUSUM variant — its cycle is the
    /// [`MlMitigator::forward`] / [`MlMitigator::update_with_output`]
    /// split, fed by the platform's `ml_input` staging.
    pub fn update_views(&mut self, views: &PerceptionViews, time: f64) -> Option<ControlTarget> {
        match self {
            Mitigator::Cusum(_) => {
                panic!("cusum consumes the encoded ml_input, not perception views")
            }
            Mitigator::Ensemble(e) => e.update_views(views, time),
            Mitigator::MaskCheck(m) => m.update_views(views, time),
        }
    }

    /// Time the strategy first intervened, if ever (recovery engagement,
    /// de-rate episode, or evidence latch).
    #[must_use]
    pub fn first_activation_time(&self) -> Option<f64> {
        match self {
            Mitigator::Cusum(ml) => ml.first_activation_time(),
            Mitigator::Ensemble(e) => e.first_activation_time(),
            Mitigator::MaskCheck(m) => m.first_activation_time(),
        }
    }

    /// How many intervention episodes have engaged.
    #[must_use]
    pub fn activation_count(&self) -> u64 {
        match self {
            Mitigator::Cusum(ml) => ml.activation_count(),
            Mitigator::Ensemble(e) => e.activation_count(),
            Mitigator::MaskCheck(m) => m.activation_count(),
        }
    }

    /// Resets the runtime (new run) while keeping the trained weights.
    pub fn reset(&mut self) {
        match self {
            Mitigator::Cusum(ml) => ml.reset(),
            Mitigator::Ensemble(e) => e.reset(),
            Mitigator::MaskCheck(m) => m.reset(),
        }
    }
}

impl From<MlMitigator> for Mitigator {
    fn from(ml: MlMitigator) -> Self {
        Mitigator::Cusum(ml)
    }
}

/// Mitigation gate parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// CUSUM threshold τ.
    pub tau: f64,
    /// CUSUM per-step bias b(t); also the recovery exit threshold on δ.
    pub bias: f64,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        Self {
            tau: 4.0,
            bias: 0.12,
        }
    }
}

/// The runtime mitigator.
///
/// The trained model is held behind an [`Arc`] so campaign runners share
/// one set of weights across hundreds of runs instead of deep-copying
/// ~32 k parameters per run.
#[derive(Debug, Clone)]
pub struct MlMitigator {
    model: Arc<LstmPredictor>,
    config: MitigationConfig,
    cusum: Cusum,
    state: PredictorState,
    scratch: InferScratch,
    warmup: usize,
    recovery: bool,
    first_activation: Option<f64>,
    activations: u64,
}

impl MlMitigator {
    /// Wraps a (trained) model in the Algorithm 1 runtime.
    ///
    /// Accepts either an owned model or an [`Arc`] handle — pass
    /// `Arc::clone(&model)` to share weights across mitigators.
    #[must_use]
    pub fn new(model: impl Into<Arc<LstmPredictor>>, config: MitigationConfig) -> Self {
        let model = model.into();
        let state = model.init_state();
        let scratch = model.infer_scratch();
        Self {
            model,
            config,
            cusum: Cusum::new(config.tau, config.bias),
            state,
            scratch,
            warmup: 0,
            recovery: false,
            first_activation: None,
            activations: 0,
        }
    }

    /// Whether recovery mode is currently active.
    #[must_use]
    pub fn in_recovery(&self) -> bool {
        self.recovery
    }

    /// Time recovery mode first engaged, if ever.
    #[must_use]
    pub fn first_activation_time(&self) -> Option<f64> {
        self.first_activation
    }

    /// How many times recovery mode has engaged.
    #[must_use]
    pub fn activation_count(&self) -> u64 {
        self.activations
    }

    /// Runs one control cycle of Algorithm 1.
    ///
    /// * `state` — fault-free vehicle state (redundant sensor);
    /// * `adas_output` — the control output the ADAS produced this cycle;
    /// * `time` — simulation clock, seconds.
    ///
    /// Returns `Some(override)` while recovery mode is active.
    pub fn update(
        &mut self,
        state: &StateFeatures,
        adas_output: &ControlTarget,
        time: f64,
    ) -> Option<ControlTarget> {
        let x = state.encode();
        let y = self.forward(&x);
        self.update_with_output(&y, adas_output, time)
    }

    /// Advances this mitigator's own recurrent state by one cycle and
    /// returns the raw (normalised) model output.
    ///
    /// The scalar half of [`Self::update`]. The batched campaign path skips
    /// this — it computes the same output for a whole batch of runs with
    /// [`LstmPredictor::step_batch`] and feeds each lane's result to
    /// [`Self::update_with_output`].
    pub fn forward(&mut self, x: &[f64; FEATURE_DIM]) -> [f64; TARGET_DIM] {
        self.model.step_with(x, &mut self.state, &mut self.scratch)
    }

    /// The decision half of Algorithm 1, given an already-computed model
    /// output `y` for this cycle (from [`Self::forward`] or a lane of
    /// [`LstmPredictor::step_batch`]). Bit-identical to the corresponding
    /// tail of [`Self::update`].
    pub fn update_with_output(
        &mut self,
        y: &[f64; TARGET_DIM],
        adas_output: &ControlTarget,
        time: f64,
    ) -> Option<ControlTarget> {
        let prediction = ControlTarget::decode(y);

        // Warm-up: the paper's model consumes 20 continuous frames before
        // its first prediction is meaningful.
        if self.warmup < WINDOW {
            self.warmup += 1;
            return None;
        }

        let delta = prediction.discrepancy(adas_output);
        if !self.recovery && self.cusum.update(delta) {
            self.recovery = true;
            self.activations += 1;
            if self.first_activation.is_none() {
                self.first_activation = Some(time);
            }
        }

        if self.recovery {
            if delta < self.config.bias {
                // Exit recovery and reset the statistic (Algorithm 1 line 16)
                // — but still execute the ML output this cycle.
                self.recovery = false;
                self.cusum.reset();
            }
            Some(prediction)
        } else {
            None
        }
    }

    /// Resets the runtime (new run) while keeping the trained weights.
    pub fn reset(&mut self) {
        self.state = self.model.init_state();
        self.cusum = Cusum::new(self.config.tau, self.config.bias);
        self.warmup = 0;
        self.recovery = false;
        self.first_activation = None;
        self.activations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    fn small_model() -> LstmPredictor {
        LstmPredictor::new(ModelSpec {
            hidden1: 8,
            hidden2: 4,
            seed: 2,
        })
    }

    fn neutral_state() -> StateFeatures {
        StateFeatures {
            ego_speed: 20.0,
            lead_distance: 40.0,
            closing_speed: 0.0,
            left_line: 1.75,
            right_line: 1.75,
            curvature: 0.0,
            heading: 0.0,
            prev_accel: 0.0,
            prev_steer: 0.0,
        }
    }

    #[test]
    fn silent_during_warmup() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let crazy = ControlTarget {
            accel: 50.0,
            steer: 3.0,
        };
        for t in 0..WINDOW {
            assert!(mit
                .update(&neutral_state(), &crazy, t as f64 * 0.01)
                .is_none());
        }
    }

    #[test]
    fn small_discrepancy_never_triggers() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        // Feed the model's own prediction back as the "ADAS output": δ = 0.
        let mut shadow = MlMitigator::new(small_model(), MitigationConfig::default());
        for t in 0..500 {
            let x = neutral_state();
            // Compute what the model would say using a twin.
            let pred = {
                let y = shadow.model.step(&x.encode(), &mut shadow.state);
                ControlTarget::decode(&y)
            };
            let out = mit.update(&x, &pred, t as f64 * 0.01);
            assert!(out.is_none(), "triggered at step {t}");
        }
        assert_eq!(mit.activation_count(), 0);
    }

    #[test]
    fn large_discrepancy_triggers_recovery() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let wild = ControlTarget {
            accel: 10.0,
            steer: 1.0,
        };
        let mut engaged_at = None;
        for t in 0..1000 {
            if mit.update(&neutral_state(), &wild, t as f64 * 0.01).is_some() && engaged_at.is_none()
            {
                engaged_at = Some(t);
            }
        }
        let at = engaged_at.expect("recovery must engage");
        assert!(at > WINDOW, "not before warm-up");
        assert!(mit.first_activation_time().is_some());
        assert!(mit.activation_count() >= 1);
    }

    #[test]
    fn recovery_exits_when_discrepancy_subsides() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let wild = ControlTarget {
            accel: 10.0,
            steer: 1.0,
        };
        for t in 0..500 {
            let _ = mit.update(&neutral_state(), &wild, t as f64 * 0.01);
        }
        assert!(mit.in_recovery());
        // ADAS output now agrees with the model's prediction: δ ≈ 0.
        for t in 500..600 {
            let x = neutral_state();
            let pred = {
                let mut probe = mit.clone();
                let y = probe.model.step(&x.encode(), &mut probe.state);
                ControlTarget::decode(&y)
            };
            let _ = mit.update(&x, &pred, t as f64 * 0.01);
        }
        assert!(!mit.in_recovery());
    }

    #[test]
    fn mitigation_kind_codes_and_names_roundtrip() {
        for kind in MitigationKind::ALL {
            assert_eq!(MitigationKind::from_code(kind.code()), Some(kind));
            assert_eq!(MitigationKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(MitigationKind::from_code(3), None);
        assert_eq!(MitigationKind::from_name("lstm"), None);
        assert_eq!(
            MitigationKind::from_name(" MaskCheck "),
            Some(MitigationKind::MaskCheck)
        );
        assert_eq!(MitigationKind::default(), MitigationKind::Cusum);
    }

    #[test]
    fn mitigator_seam_dispatches_by_kind() {
        let mut mit = Mitigator::from(MlMitigator::new(small_model(), MitigationConfig::default()));
        assert_eq!(mit.kind(), MitigationKind::Cusum);
        assert!(!mit.wants_views());
        assert!(mit.as_cusum_mut().is_some());
        let ens = Mitigator::Ensemble(EnsembleMitigator::new(
            small_model(),
            crate::ensemble::EnsembleConfig::default(),
            adas_simulator::DeterministicRng::from_seed(1),
        ));
        assert_eq!(ens.kind(), MitigationKind::Ensemble);
        assert!(ens.wants_views());
        let mask = Mitigator::MaskCheck(MaskCheckMitigator::new(
            small_model(),
            crate::maskcheck::MaskCheckConfig::default(),
            adas_simulator::DeterministicRng::from_seed(2),
        ));
        assert_eq!(mask.kind(), MitigationKind::MaskCheck);
        assert!(mask.wants_views());
    }

    #[test]
    fn reset_clears_runtime_state() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let wild = ControlTarget {
            accel: 10.0,
            steer: 1.0,
        };
        for t in 0..500 {
            let _ = mit.update(&neutral_state(), &wild, t as f64 * 0.01);
        }
        mit.reset();
        assert!(!mit.in_recovery());
        assert!(mit.first_activation_time().is_none());
        assert_eq!(mit.activation_count(), 0);
    }
}
