//! Runtime hazard mitigation (Algorithm 1).
//!
//! Watches the discrepancy between the LSTM's expected control outputs
//! (computed from fault-free, redundant-sensor state) and the ADAS's actual
//! outputs. A CUSUM gate switches into recovery mode, during which the
//! LSTM's outputs are executed, and back out once the discrepancy falls
//! below the bias.

use crate::cusum::Cusum;
use crate::features::{ControlTarget, StateFeatures, FEATURE_DIM, TARGET_DIM, WINDOW};
use crate::model::{InferScratch, LstmPredictor, PredictorState};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Mitigation gate parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// CUSUM threshold τ.
    pub tau: f64,
    /// CUSUM per-step bias b(t); also the recovery exit threshold on δ.
    pub bias: f64,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        Self {
            tau: 4.0,
            bias: 0.12,
        }
    }
}

/// The runtime mitigator.
///
/// The trained model is held behind an [`Arc`] so campaign runners share
/// one set of weights across hundreds of runs instead of deep-copying
/// ~32 k parameters per run.
#[derive(Debug, Clone)]
pub struct MlMitigator {
    model: Arc<LstmPredictor>,
    config: MitigationConfig,
    cusum: Cusum,
    state: PredictorState,
    scratch: InferScratch,
    warmup: usize,
    recovery: bool,
    first_activation: Option<f64>,
    activations: u64,
}

impl MlMitigator {
    /// Wraps a (trained) model in the Algorithm 1 runtime.
    ///
    /// Accepts either an owned model or an [`Arc`] handle — pass
    /// `Arc::clone(&model)` to share weights across mitigators.
    #[must_use]
    pub fn new(model: impl Into<Arc<LstmPredictor>>, config: MitigationConfig) -> Self {
        let model = model.into();
        let state = model.init_state();
        let scratch = model.infer_scratch();
        Self {
            model,
            config,
            cusum: Cusum::new(config.tau, config.bias),
            state,
            scratch,
            warmup: 0,
            recovery: false,
            first_activation: None,
            activations: 0,
        }
    }

    /// Whether recovery mode is currently active.
    #[must_use]
    pub fn in_recovery(&self) -> bool {
        self.recovery
    }

    /// Time recovery mode first engaged, if ever.
    #[must_use]
    pub fn first_activation_time(&self) -> Option<f64> {
        self.first_activation
    }

    /// How many times recovery mode has engaged.
    #[must_use]
    pub fn activation_count(&self) -> u64 {
        self.activations
    }

    /// Runs one control cycle of Algorithm 1.
    ///
    /// * `state` — fault-free vehicle state (redundant sensor);
    /// * `adas_output` — the control output the ADAS produced this cycle;
    /// * `time` — simulation clock, seconds.
    ///
    /// Returns `Some(override)` while recovery mode is active.
    pub fn update(
        &mut self,
        state: &StateFeatures,
        adas_output: &ControlTarget,
        time: f64,
    ) -> Option<ControlTarget> {
        let x = state.encode();
        let y = self.forward(&x);
        self.update_with_output(&y, adas_output, time)
    }

    /// Advances this mitigator's own recurrent state by one cycle and
    /// returns the raw (normalised) model output.
    ///
    /// The scalar half of [`Self::update`]. The batched campaign path skips
    /// this — it computes the same output for a whole batch of runs with
    /// [`LstmPredictor::step_batch`] and feeds each lane's result to
    /// [`Self::update_with_output`].
    pub fn forward(&mut self, x: &[f64; FEATURE_DIM]) -> [f64; TARGET_DIM] {
        self.model.step_with(x, &mut self.state, &mut self.scratch)
    }

    /// The decision half of Algorithm 1, given an already-computed model
    /// output `y` for this cycle (from [`Self::forward`] or a lane of
    /// [`LstmPredictor::step_batch`]). Bit-identical to the corresponding
    /// tail of [`Self::update`].
    pub fn update_with_output(
        &mut self,
        y: &[f64; TARGET_DIM],
        adas_output: &ControlTarget,
        time: f64,
    ) -> Option<ControlTarget> {
        let prediction = ControlTarget::decode(y);

        // Warm-up: the paper's model consumes 20 continuous frames before
        // its first prediction is meaningful.
        if self.warmup < WINDOW {
            self.warmup += 1;
            return None;
        }

        let delta = prediction.discrepancy(adas_output);
        if !self.recovery && self.cusum.update(delta) {
            self.recovery = true;
            self.activations += 1;
            if self.first_activation.is_none() {
                self.first_activation = Some(time);
            }
        }

        if self.recovery {
            if delta < self.config.bias {
                // Exit recovery and reset the statistic (Algorithm 1 line 16)
                // — but still execute the ML output this cycle.
                self.recovery = false;
                self.cusum.reset();
            }
            Some(prediction)
        } else {
            None
        }
    }

    /// Resets the runtime (new run) while keeping the trained weights.
    pub fn reset(&mut self) {
        self.state = self.model.init_state();
        self.cusum = Cusum::new(self.config.tau, self.config.bias);
        self.warmup = 0;
        self.recovery = false;
        self.first_activation = None;
        self.activations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    fn small_model() -> LstmPredictor {
        LstmPredictor::new(ModelSpec {
            hidden1: 8,
            hidden2: 4,
            seed: 2,
        })
    }

    fn neutral_state() -> StateFeatures {
        StateFeatures {
            ego_speed: 20.0,
            lead_distance: 40.0,
            closing_speed: 0.0,
            left_line: 1.75,
            right_line: 1.75,
            curvature: 0.0,
            heading: 0.0,
            prev_accel: 0.0,
            prev_steer: 0.0,
        }
    }

    #[test]
    fn silent_during_warmup() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let crazy = ControlTarget {
            accel: 50.0,
            steer: 3.0,
        };
        for t in 0..WINDOW {
            assert!(mit
                .update(&neutral_state(), &crazy, t as f64 * 0.01)
                .is_none());
        }
    }

    #[test]
    fn small_discrepancy_never_triggers() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        // Feed the model's own prediction back as the "ADAS output": δ = 0.
        let mut shadow = MlMitigator::new(small_model(), MitigationConfig::default());
        for t in 0..500 {
            let x = neutral_state();
            // Compute what the model would say using a twin.
            let pred = {
                let y = shadow.model.step(&x.encode(), &mut shadow.state);
                ControlTarget::decode(&y)
            };
            let out = mit.update(&x, &pred, t as f64 * 0.01);
            assert!(out.is_none(), "triggered at step {t}");
        }
        assert_eq!(mit.activation_count(), 0);
    }

    #[test]
    fn large_discrepancy_triggers_recovery() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let wild = ControlTarget {
            accel: 10.0,
            steer: 1.0,
        };
        let mut engaged_at = None;
        for t in 0..1000 {
            if mit.update(&neutral_state(), &wild, t as f64 * 0.01).is_some() && engaged_at.is_none()
            {
                engaged_at = Some(t);
            }
        }
        let at = engaged_at.expect("recovery must engage");
        assert!(at > WINDOW, "not before warm-up");
        assert!(mit.first_activation_time().is_some());
        assert!(mit.activation_count() >= 1);
    }

    #[test]
    fn recovery_exits_when_discrepancy_subsides() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let wild = ControlTarget {
            accel: 10.0,
            steer: 1.0,
        };
        for t in 0..500 {
            let _ = mit.update(&neutral_state(), &wild, t as f64 * 0.01);
        }
        assert!(mit.in_recovery());
        // ADAS output now agrees with the model's prediction: δ ≈ 0.
        for t in 500..600 {
            let x = neutral_state();
            let pred = {
                let mut probe = mit.clone();
                let y = probe.model.step(&x.encode(), &mut probe.state);
                ControlTarget::decode(&y)
            };
            let _ = mit.update(&x, &pred, t as f64 * 0.01);
        }
        assert!(!mit.in_recovery());
    }

    #[test]
    fn reset_clears_runtime_state() {
        let mut mit = MlMitigator::new(small_model(), MitigationConfig::default());
        let wild = ControlTarget {
            accel: 10.0,
            steer: 1.0,
        };
        for t in 0..500 {
            let _ = mit.update(&neutral_state(), &wild, t as f64 * 0.01);
        }
        mit.reset();
        assert!(!mit.in_recovery());
        assert!(mit.first_activation_time().is_none());
        assert_eq!(mit.activation_count(), 0);
    }
}
