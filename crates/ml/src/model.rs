//! The two-layer LSTM regression model.

use crate::features::{FEATURE_DIM, TARGET_DIM};
use crate::linear::Linear;
use crate::lstm::Lstm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Model architecture specification.
///
/// The paper explored 256-128, 256-64, 256-32, 128-64, 128-32 and 64-32
/// hidden-unit configurations and selected 128-64; the shipped default is
/// 64-32 to keep the campaign harness fast on CPUs, with the larger
/// configurations available behind the same API (see the `ml_ablation`
/// bench binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// First LSTM layer width.
    pub hidden1: usize,
    /// Second LSTM layer width.
    pub hidden2: usize,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl Default for ModelSpec {
    fn default() -> Self {
        Self {
            hidden1: 64,
            hidden2: 32,
            seed: 0xAD45,
        }
    }
}

impl ModelSpec {
    /// The paper's selected configuration (128-64 hidden units).
    #[must_use]
    pub fn paper_best() -> Self {
        Self {
            hidden1: 128,
            hidden2: 64,
            ..Self::default()
        }
    }
}

/// Recurrent state carried between control cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorState {
    h1: Vec<f64>,
    c1: Vec<f64>,
    h2: Vec<f64>,
    c2: Vec<f64>,
}

/// The two-layer LSTM + linear head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmPredictor {
    pub(crate) l1: Lstm,
    pub(crate) l2: Lstm,
    pub(crate) head: Linear,
    spec: ModelSpec,
}

impl LstmPredictor {
    /// Creates a randomly initialised model.
    #[must_use]
    pub fn new(spec: ModelSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        Self {
            l1: Lstm::new(FEATURE_DIM, spec.hidden1, &mut rng),
            l2: Lstm::new(spec.hidden1, spec.hidden2, &mut rng),
            head: Linear::new(TARGET_DIM, spec.hidden2, &mut rng),
            spec,
        }
    }

    /// The architecture.
    #[must_use]
    pub fn spec(&self) -> ModelSpec {
        self.spec
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count() + self.head.param_count()
    }

    /// A fresh zeroed recurrent state.
    #[must_use]
    pub fn init_state(&self) -> PredictorState {
        PredictorState {
            h1: vec![0.0; self.spec.hidden1],
            c1: vec![0.0; self.spec.hidden1],
            h2: vec![0.0; self.spec.hidden2],
            c2: vec![0.0; self.spec.hidden2],
        }
    }

    /// Advances the recurrent state by one control cycle and returns the
    /// normalised prediction.
    pub fn step(&self, x: &[f64; FEATURE_DIM], state: &mut PredictorState) -> [f64; TARGET_DIM] {
        let (h1, c1, _) = self.l1.step(x, &state.h1, &state.c1);
        let (h2, c2, _) = self.l2.step(&h1, &state.h2, &state.c2);
        state.h1 = h1;
        state.c1 = c1;
        state.h2 = h2.clone();
        state.c2 = c2;
        let y = self.head.forward(&h2);
        [y[0], y[1]]
    }

    /// Runs a whole window from a zero state (training/eval convenience —
    /// the paper's 20-frame input framing).
    #[must_use]
    pub fn predict_window(&self, window: &[[f64; FEATURE_DIM]]) -> [f64; TARGET_DIM] {
        let mut st = self.init_state();
        let mut out = [0.0; TARGET_DIM];
        for x in window {
            out = self.step(x, &mut st);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_initialisation() {
        let a = LstmPredictor::new(ModelSpec::default());
        let b = LstmPredictor::new(ModelSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = LstmPredictor::new(ModelSpec::default());
        let b = LstmPredictor::new(ModelSpec {
            seed: 99,
            ..ModelSpec::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn step_and_window_agree() {
        let m = LstmPredictor::new(ModelSpec::default());
        let window: Vec<[f64; FEATURE_DIM]> = (0..20)
            .map(|t| {
                let mut x = [0.0; FEATURE_DIM];
                x[0] = (t as f64) / 20.0;
                x
            })
            .collect();
        let via_window = m.predict_window(&window);
        let mut st = m.init_state();
        let mut via_steps = [0.0; TARGET_DIM];
        for x in &window {
            via_steps = m.step(x, &mut st);
        }
        assert_eq!(via_window, via_steps);
    }

    #[test]
    fn paper_best_is_larger() {
        let small = LstmPredictor::new(ModelSpec::default());
        let big = LstmPredictor::new(ModelSpec::paper_best());
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    fn outputs_finite() {
        let m = LstmPredictor::new(ModelSpec::default());
        let x = [1.0; FEATURE_DIM];
        let mut st = m.init_state();
        for _ in 0..100 {
            let y = m.step(&x, &mut st);
            assert!(y.iter().all(|v| v.is_finite()));
        }
    }
}
