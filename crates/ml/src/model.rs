//! The two-layer LSTM regression model.

use crate::features::{FEATURE_DIM, TARGET_DIM};
use crate::linear::Linear;
use crate::lstm::Lstm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Model architecture specification.
///
/// The paper explored 256-128, 256-64, 256-32, 128-64, 128-32 and 64-32
/// hidden-unit configurations and selected 128-64; the shipped default is
/// 64-32 to keep the campaign harness fast on CPUs, with the larger
/// configurations available behind the same API (see the `ml_ablation`
/// bench binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// First LSTM layer width.
    pub hidden1: usize,
    /// Second LSTM layer width.
    pub hidden2: usize,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl Default for ModelSpec {
    fn default() -> Self {
        Self {
            hidden1: 64,
            hidden2: 32,
            seed: 0xAD45,
        }
    }
}

impl ModelSpec {
    /// The paper's selected configuration (128-64 hidden units).
    #[must_use]
    pub fn paper_best() -> Self {
        Self {
            hidden1: 128,
            hidden2: 64,
            ..Self::default()
        }
    }
}

/// Recurrent state carried between control cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorState {
    h1: Vec<f64>,
    c1: Vec<f64>,
    h2: Vec<f64>,
    c2: Vec<f64>,
}

/// Preallocated inference scratch for [`LstmPredictor::step_with`].
///
/// Holds the gate pre-activation buffers and the double-buffered next
/// hidden/cell states, so a 100 Hz control loop performs zero heap
/// allocations per cycle after construction.
#[derive(Debug, Clone)]
pub struct InferScratch {
    z1: Vec<f64>,
    z2: Vec<f64>,
    h1: Vec<f64>,
    c1: Vec<f64>,
    h2: Vec<f64>,
    c2: Vec<f64>,
    y: Vec<f64>,
}

/// Recurrent state for a whole batch of runs, held as lane-contiguous
/// `[units × width]` panels (`panel[k * width + lane]`).
///
/// Lane `lane` of a panel is one run's recurrent state; the batched
/// forward ([`LstmPredictor::step_batch`]) advances every lane with one
/// weights-stationary matvec per layer. Lanes are fully independent — no
/// value ever crosses lanes — which is what makes the batched path
/// bit-identical to the scalar one per run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPredictorState {
    width: usize,
    h1: Vec<f64>,
    c1: Vec<f64>,
    h2: Vec<f64>,
    c2: Vec<f64>,
}

impl BatchPredictorState {
    /// Batch width (number of lanes).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Zeroes one lane's recurrent state — equivalent to giving that lane
    /// a fresh [`LstmPredictor::init_state`]. Called when a retired lane
    /// is refilled with a new run.
    pub fn reset_lane(&mut self, lane: usize) {
        assert!(lane < self.width, "lane out of range");
        let w = self.width;
        for panel in [&mut self.h1, &mut self.c1, &mut self.h2, &mut self.c2] {
            let units = panel.len() / w;
            for k in 0..units {
                panel[k * w + lane] = 0.0;
            }
        }
    }
}

/// Preallocated scratch panels for [`LstmPredictor::step_batch`]: gate
/// pre-activations, double-buffered next hidden/cell states, and the head
/// output panel. Zero heap allocations per batched cycle after
/// construction — the batched analogue of [`InferScratch`].
#[derive(Debug, Clone)]
pub struct BatchInferScratch {
    width: usize,
    z1: Vec<f64>,
    z2: Vec<f64>,
    h1: Vec<f64>,
    c1: Vec<f64>,
    h2: Vec<f64>,
    c2: Vec<f64>,
    y: Vec<f64>,
}

impl BatchInferScratch {
    /// The head output for one lane after a [`LstmPredictor::step_batch`]
    /// call — exactly what [`LstmPredictor::step_with`] would have
    /// returned for that lane's scalar stream.
    #[must_use]
    pub fn output(&self, lane: usize) -> [f64; TARGET_DIM] {
        assert!(lane < self.width, "lane out of range");
        [self.y[lane], self.y[self.width + lane]]
    }
}

/// The two-layer LSTM + linear head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmPredictor {
    pub(crate) l1: Lstm,
    pub(crate) l2: Lstm,
    pub(crate) head: Linear,
    spec: ModelSpec,
}

impl LstmPredictor {
    /// Creates a randomly initialised model.
    #[must_use]
    pub fn new(spec: ModelSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        Self {
            l1: Lstm::new(FEATURE_DIM, spec.hidden1, &mut rng),
            l2: Lstm::new(spec.hidden1, spec.hidden2, &mut rng),
            head: Linear::new(TARGET_DIM, spec.hidden2, &mut rng),
            spec,
        }
    }

    /// The architecture.
    #[must_use]
    pub fn spec(&self) -> ModelSpec {
        self.spec
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count() + self.head.param_count()
    }

    /// A fresh zeroed recurrent state.
    #[must_use]
    pub fn init_state(&self) -> PredictorState {
        PredictorState {
            h1: vec![0.0; self.spec.hidden1],
            c1: vec![0.0; self.spec.hidden1],
            h2: vec![0.0; self.spec.hidden2],
            c2: vec![0.0; self.spec.hidden2],
        }
    }

    /// Preallocated scratch sized for this architecture (see
    /// [`Self::step_with`]).
    #[must_use]
    pub fn infer_scratch(&self) -> InferScratch {
        InferScratch {
            z1: vec![0.0; 4 * self.spec.hidden1],
            z2: vec![0.0; 4 * self.spec.hidden2],
            h1: vec![0.0; self.spec.hidden1],
            c1: vec![0.0; self.spec.hidden1],
            h2: vec![0.0; self.spec.hidden2],
            c2: vec![0.0; self.spec.hidden2],
            y: vec![0.0; TARGET_DIM],
        }
    }

    /// Advances the recurrent state by one control cycle and returns the
    /// normalised prediction.
    ///
    /// Allocating convenience wrapper around [`Self::step_with`]; callers
    /// on the hot path hold an [`InferScratch`] and use `step_with`
    /// directly.
    pub fn step(&self, x: &[f64; FEATURE_DIM], state: &mut PredictorState) -> [f64; TARGET_DIM] {
        let mut scratch = self.infer_scratch();
        self.step_with(x, state, &mut scratch)
    }

    /// Allocation-free [`Self::step`]: advances `state` using preallocated
    /// `scratch` buffers. Bit-identical to `step`.
    pub fn step_with(
        &self,
        x: &[f64; FEATURE_DIM],
        state: &mut PredictorState,
        scratch: &mut InferScratch,
    ) -> [f64; TARGET_DIM] {
        self.l1
            .step_infer(x, &state.h1, &state.c1, &mut scratch.z1, &mut scratch.h1, &mut scratch.c1);
        self.l2.step_infer(
            &scratch.h1,
            &state.h2,
            &state.c2,
            &mut scratch.z2,
            &mut scratch.h2,
            &mut scratch.c2,
        );
        std::mem::swap(&mut state.h1, &mut scratch.h1);
        std::mem::swap(&mut state.c1, &mut scratch.c1);
        std::mem::swap(&mut state.h2, &mut scratch.h2);
        std::mem::swap(&mut state.c2, &mut scratch.c2);
        self.head.forward_into(&state.h2, &mut scratch.y);
        [scratch.y[0], scratch.y[1]]
    }

    /// A fresh zeroed batch state with `width` lanes.
    #[must_use]
    pub fn batch_state(&self, width: usize) -> BatchPredictorState {
        assert!(width > 0, "batch width must be ≥ 1");
        BatchPredictorState {
            width,
            h1: vec![0.0; self.spec.hidden1 * width],
            c1: vec![0.0; self.spec.hidden1 * width],
            h2: vec![0.0; self.spec.hidden2 * width],
            c2: vec![0.0; self.spec.hidden2 * width],
        }
    }

    /// Preallocated batch scratch panels sized for this architecture and
    /// `width` lanes.
    #[must_use]
    pub fn batch_scratch(&self, width: usize) -> BatchInferScratch {
        assert!(width > 0, "batch width must be ≥ 1");
        BatchInferScratch {
            width,
            z1: vec![0.0; 4 * self.spec.hidden1 * width],
            z2: vec![0.0; 4 * self.spec.hidden2 * width],
            h1: vec![0.0; self.spec.hidden1 * width],
            c1: vec![0.0; self.spec.hidden1 * width],
            h2: vec![0.0; self.spec.hidden2 * width],
            c2: vec![0.0; self.spec.hidden2 * width],
            y: vec![0.0; TARGET_DIM * width],
        }
    }

    /// Advances every lane of the batch by one control cycle with one
    /// weights-stationary matvec per layer.
    ///
    /// `x` is a `FEATURE_DIM × width` lane-contiguous input panel
    /// (`x[c * width + lane]`). Per-lane outputs land in the scratch's
    /// head panel — read them with [`BatchInferScratch::output`].
    ///
    /// Bit-identical per lane to [`Self::step_with`]: the matvec consumes
    /// columns in the same order with the bias added last, the gate math
    /// is the scalar expression per lane, and lanes never mix.
    ///
    /// # Panics
    ///
    /// Panics if the panel widths disagree or `x` has the wrong size.
    pub fn step_batch(
        &self,
        x: &[f64],
        state: &mut BatchPredictorState,
        scratch: &mut BatchInferScratch,
    ) {
        self.step_batch_inner(x, state, scratch, None);
    }

    /// [`Self::step_batch`] with a per-lane liveness mask: lanes with
    /// `active[lane] == false` skip the gate transcendentals (the dominant
    /// per-lane cost) and keep stale state. Live lanes are bit-identical
    /// to [`Self::step_with`] regardless of the mask — a masked-out lane
    /// must be [`BatchPredictorState::reset_lane`]-reset before it is
    /// reactivated, which is exactly what the lockstep executor's refill
    /// does.
    ///
    /// # Panics
    ///
    /// Panics if the panel widths disagree, `x` has the wrong size, or
    /// `active.len() != width`.
    pub fn step_batch_masked(
        &self,
        x: &[f64],
        state: &mut BatchPredictorState,
        scratch: &mut BatchInferScratch,
        active: &[bool],
    ) {
        self.step_batch_inner(x, state, scratch, Some(active));
    }

    fn step_batch_inner(
        &self,
        x: &[f64],
        state: &mut BatchPredictorState,
        scratch: &mut BatchInferScratch,
        mask: Option<&[bool]>,
    ) {
        let width = state.width;
        assert_eq!(scratch.width, width, "state/scratch width mismatch");
        assert_eq!(x.len(), FEATURE_DIM * width, "input panel dimension mismatch");
        self.l1.step_batch(
            width,
            x,
            &state.h1,
            &state.c1,
            &mut scratch.z1,
            &mut scratch.h1,
            &mut scratch.c1,
            mask,
        );
        self.l2.step_batch(
            width,
            &scratch.h1,
            &state.h2,
            &state.c2,
            &mut scratch.z2,
            &mut scratch.h2,
            &mut scratch.c2,
            mask,
        );
        std::mem::swap(&mut state.h1, &mut scratch.h1);
        std::mem::swap(&mut state.c1, &mut scratch.c1);
        std::mem::swap(&mut state.h2, &mut scratch.h2);
        std::mem::swap(&mut state.c2, &mut scratch.c2);
        self.head.forward_batch(width, &state.h2, &mut scratch.y);
    }

    /// Runs a whole window from a zero state (training/eval convenience —
    /// the paper's 20-frame input framing).
    #[must_use]
    pub fn predict_window(&self, window: &[[f64; FEATURE_DIM]]) -> [f64; TARGET_DIM] {
        let mut st = self.init_state();
        let mut scratch = self.infer_scratch();
        let mut out = [0.0; TARGET_DIM];
        for x in window {
            out = self.step_with(x, &mut st, &mut scratch);
        }
        out
    }

    /// Serialises the trained weights to a portable little-endian binary
    /// blob (for the artifact cache). Gradient accumulators are not stored.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MODEL_MAGIC);
        for v in [
            self.spec.hidden1 as u64,
            self.spec.hidden2 as u64,
            self.spec.seed,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for lin in [&self.l1.gates, &self.l2.gates, &self.head] {
            out.extend_from_slice(&(lin.rows as u64).to_le_bytes());
            out.extend_from_slice(&(lin.cols as u64).to_le_bytes());
            for v in lin.w.iter().chain(lin.b.iter()) {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Reconstructs a model from [`Self::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (bad magic,
    /// truncation, dimension mismatch) — callers treat any error as a cache
    /// miss and retrain.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(MODEL_MAGIC.len())?;
        if magic != MODEL_MAGIC {
            return Err("bad model magic".into());
        }
        let hidden1 = r.u64()? as usize;
        let hidden2 = r.u64()? as usize;
        let seed = r.u64()?;
        if hidden1 == 0 || hidden2 == 0 || hidden1 > 1 << 16 || hidden2 > 1 << 16 {
            return Err(format!("implausible hidden sizes {hidden1}/{hidden2}"));
        }
        let spec = ModelSpec {
            hidden1,
            hidden2,
            seed,
        };
        let expect = [
            (4 * hidden1, FEATURE_DIM + hidden1),
            (4 * hidden2, hidden1 + hidden2),
            (TARGET_DIM, hidden2),
        ];
        let mut linears = Vec::with_capacity(3);
        for (want_rows, want_cols) in expect {
            let rows = r.u64()? as usize;
            let cols = r.u64()? as usize;
            if rows != want_rows || cols != want_cols {
                return Err(format!(
                    "layer shape {rows}×{cols}, expected {want_rows}×{want_cols}"
                ));
            }
            let mut w = vec![0.0; rows * cols];
            for v in &mut w {
                *v = r.f64()?;
            }
            let mut b = vec![0.0; rows];
            for v in &mut b {
                *v = r.f64()?;
            }
            linears.push(Linear {
                rows,
                cols,
                w,
                b,
                gw: vec![0.0; rows * cols],
                gb: vec![0.0; rows],
            });
        }
        if !r.is_empty() {
            return Err("trailing bytes after model payload".into());
        }
        let head = linears.pop().expect("three layers parsed");
        let g2 = linears.pop().expect("three layers parsed");
        let g1 = linears.pop().expect("three layers parsed");
        Ok(Self {
            l1: Lstm {
                input: FEATURE_DIM,
                hidden: hidden1,
                gates: g1,
            },
            l2: Lstm {
                input: hidden1,
                hidden: hidden2,
                gates: g2,
            },
            head,
            spec,
        })
    }
}

/// Magic + format version prefix for [`LstmPredictor::to_bytes`].
const MODEL_MAGIC: &[u8] = b"ADASLSTM\x01";

/// Minimal little-endian cursor for [`LstmPredictor::from_bytes`].
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "truncated model payload".to_string())?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_initialisation() {
        let a = LstmPredictor::new(ModelSpec::default());
        let b = LstmPredictor::new(ModelSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = LstmPredictor::new(ModelSpec::default());
        let b = LstmPredictor::new(ModelSpec {
            seed: 99,
            ..ModelSpec::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn step_and_window_agree() {
        let m = LstmPredictor::new(ModelSpec::default());
        let window: Vec<[f64; FEATURE_DIM]> = (0..20)
            .map(|t| {
                let mut x = [0.0; FEATURE_DIM];
                x[0] = (t as f64) / 20.0;
                x
            })
            .collect();
        let via_window = m.predict_window(&window);
        let mut st = m.init_state();
        let mut via_steps = [0.0; TARGET_DIM];
        for x in &window {
            via_steps = m.step(x, &mut st);
        }
        assert_eq!(via_window, via_steps);
    }

    #[test]
    fn paper_best_is_larger() {
        let small = LstmPredictor::new(ModelSpec::default());
        let big = LstmPredictor::new(ModelSpec::paper_best());
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    fn step_with_matches_step_bitwise() {
        let m = LstmPredictor::new(ModelSpec::default());
        let mut st_a = m.init_state();
        let mut st_b = m.init_state();
        let mut scratch = m.infer_scratch();
        for t in 0..50 {
            let mut x = [0.0; FEATURE_DIM];
            x[0] = (t as f64 * 0.13).sin();
            x[3] = (t as f64 * 0.07).cos();
            let ya = m.step(&x, &mut st_a);
            let yb = m.step_with(&x, &mut st_b, &mut scratch);
            assert_eq!(ya, yb, "diverged at step {t}");
        }
        assert_eq!(st_a, st_b);
    }

    #[test]
    fn step_batch_bitwise_matches_step_with_across_widths() {
        let m = LstmPredictor::new(ModelSpec {
            hidden1: 16,
            hidden2: 8,
            seed: 11,
        });
        for width in [1usize, 4, 32] {
            let mut panel_state = m.batch_state(width);
            let mut panel_scratch = m.batch_scratch(width);
            let mut scalar: Vec<(PredictorState, InferScratch)> = (0..width)
                .map(|_| (m.init_state(), m.infer_scratch()))
                .collect();
            for t in 0..40 {
                let mut x_panel = vec![0.0; FEATURE_DIM * width];
                let mut xs = Vec::with_capacity(width);
                for lane in 0..width {
                    let mut x = [0.0; FEATURE_DIM];
                    for (c, v) in x.iter_mut().enumerate() {
                        *v = ((t * FEATURE_DIM + c) as f64 * 0.17 + lane as f64 * 0.9).sin();
                    }
                    for (c, v) in x.iter().enumerate() {
                        x_panel[c * width + lane] = *v;
                    }
                    xs.push(x);
                }
                m.step_batch(&x_panel, &mut panel_state, &mut panel_scratch);
                for (lane, (st, sc)) in scalar.iter_mut().enumerate() {
                    let y = m.step_with(&xs[lane], st, sc);
                    let yb = panel_scratch.output(lane);
                    assert_eq!(y[0].to_bits(), yb[0].to_bits(), "w{width} lane{lane} t{t}");
                    assert_eq!(y[1].to_bits(), yb[1].to_bits(), "w{width} lane{lane} t{t}");
                }
            }
        }
    }

    #[test]
    fn masked_lanes_do_not_perturb_live_lanes() {
        // Live lanes must be bit-identical to their scalar streams no
        // matter which other lanes are masked out, and a masked-out lane
        // must resume a correct fresh stream after reset_lane — the exact
        // life cycle of a drained-then-refilled lockstep slot.
        let m = LstmPredictor::new(ModelSpec {
            hidden1: 12,
            hidden2: 6,
            seed: 21,
        });
        let width = 4;
        let mut state = m.batch_state(width);
        let mut scratch = m.batch_scratch(width);
        let mut scalar: Vec<(PredictorState, InferScratch)> =
            (0..width).map(|_| (m.init_state(), m.infer_scratch())).collect();
        let x_of = |t: usize, lane: usize| {
            let mut x = [0.0; FEATURE_DIM];
            for (c, v) in x.iter_mut().enumerate() {
                *v = ((t * FEATURE_DIM + c) as f64 * 0.19 + lane as f64 * 1.3).sin();
            }
            x
        };
        let mut panel = vec![0.0; FEATURE_DIM * width];
        // Phase 1: lanes 0–2 live, lane 3 masked out the whole time.
        let live = [true, true, true, false];
        for t in 0..15 {
            for lane in 0..width {
                for (c, v) in x_of(t, lane).iter().enumerate() {
                    panel[c * width + lane] = *v;
                }
            }
            m.step_batch_masked(&panel, &mut state, &mut scratch, &live);
            for (lane, (st, sc)) in scalar.iter_mut().enumerate().take(3) {
                let y = m.step_with(&x_of(t, lane), st, sc);
                assert_eq!(y, scratch.output(lane), "live lane {lane} t {t}");
            }
        }
        // Phase 2: lane 1 retires (masked), lane 3 refills (reset + live).
        state.reset_lane(3);
        let live = [true, false, true, true];
        let mut fresh = (m.init_state(), m.infer_scratch());
        for t in 15..30 {
            for lane in 0..width {
                for (c, v) in x_of(t, lane).iter().enumerate() {
                    panel[c * width + lane] = *v;
                }
            }
            m.step_batch_masked(&panel, &mut state, &mut scratch, &live);
            for lane in [0usize, 2] {
                let (st, sc) = &mut scalar[lane];
                let y = m.step_with(&x_of(t, lane), st, sc);
                assert_eq!(y, scratch.output(lane), "veteran lane {lane} t {t}");
            }
            let y = m.step_with(&x_of(t, 3), &mut fresh.0, &mut fresh.1);
            assert_eq!(y, scratch.output(3), "refilled lane t {t}");
        }
    }

    #[test]
    fn reset_lane_restarts_one_stream_without_touching_others() {
        let m = LstmPredictor::new(ModelSpec {
            hidden1: 8,
            hidden2: 4,
            seed: 13,
        });
        let width = 3;
        let mut state = m.batch_state(width);
        let mut scratch = m.batch_scratch(width);
        let x_of = |t: usize, lane: usize| {
            let mut x = [0.0; FEATURE_DIM];
            for (c, v) in x.iter_mut().enumerate() {
                *v = ((t + c) as f64 * 0.23 + lane as f64).cos();
            }
            x
        };
        let panel_of = |t: usize| {
            let mut p = vec![0.0; FEATURE_DIM * width];
            for lane in 0..width {
                let x = x_of(t, lane);
                for (c, v) in x.iter().enumerate() {
                    p[c * width + lane] = *v;
                }
            }
            p
        };
        for t in 0..10 {
            m.step_batch(&panel_of(t), &mut state, &mut scratch);
        }
        // Restart lane 1 mid-flight; it must now track a fresh scalar
        // stream while lanes 0 and 2 continue theirs.
        state.reset_lane(1);
        let mut fresh = m.init_state();
        let mut fresh_scratch = m.infer_scratch();
        let mut veterans: Vec<(PredictorState, InferScratch)> =
            (0..width).map(|_| (m.init_state(), m.infer_scratch())).collect();
        for t in 0..10 {
            for (lane, (st, sc)) in veterans.iter_mut().enumerate() {
                let _ = m.step_with(&x_of(t, lane), st, sc);
            }
        }
        for t in 10..25 {
            m.step_batch(&panel_of(t), &mut state, &mut scratch);
            let y_fresh = m.step_with(&x_of(t, 1), &mut fresh, &mut fresh_scratch);
            assert_eq!(scratch.output(1), y_fresh, "restarted lane at t {t}");
            for lane in [0usize, 2] {
                let (st, sc) = &mut veterans[lane];
                let y_vet = m.step_with(&x_of(t, lane), st, sc);
                assert_eq!(scratch.output(lane), y_vet, "veteran lane {lane} at t {t}");
            }
        }
    }

    #[test]
    fn bytes_roundtrip_is_exact() {
        let m = LstmPredictor::new(ModelSpec {
            hidden1: 16,
            hidden2: 8,
            seed: 77,
        });
        let blob = m.to_bytes();
        let back = LstmPredictor::from_bytes(&blob).expect("roundtrip");
        assert_eq!(m, back);
        assert_eq!(m.spec(), back.spec());
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let m = LstmPredictor::new(ModelSpec {
            hidden1: 8,
            hidden2: 4,
            seed: 1,
        });
        let blob = m.to_bytes();
        assert!(LstmPredictor::from_bytes(&blob[..blob.len() - 1]).is_err());
        assert!(LstmPredictor::from_bytes(b"not a model").is_err());
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xFF;
        assert!(LstmPredictor::from_bytes(&bad_magic).is_err());
        let mut extended = blob;
        extended.push(0);
        assert!(LstmPredictor::from_bytes(&extended).is_err());
    }

    #[test]
    fn outputs_finite() {
        let m = LstmPredictor::new(ModelSpec::default());
        let x = [1.0; FEATURE_DIM];
        let mut st = m.init_state();
        for _ in 0..100 {
            let y = m.step(&x, &mut st);
            assert!(y.iter().all(|v| v.is_finite()));
        }
    }
}
