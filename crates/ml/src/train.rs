//! Offline training of the mitigation model on fault-free traces.

use crate::adam::{Adam, AdamConfig};
use crate::features::{ControlTarget, StateFeatures, FEATURE_DIM, TARGET_DIM, WINDOW};
use crate::lstm::LstmCache;
use crate::model::LstmPredictor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One training sample: a [`WINDOW`]-cycle feature window plus the expected
/// control output at the final cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Encoded features, oldest first.
    pub window: Vec<[f64; FEATURE_DIM]>,
    /// Encoded target at the last cycle.
    pub target: [f64; TARGET_DIM],
}

/// A collection of training samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Slides a [`WINDOW`]-length window over one fault-free episode,
    /// emitting a sample every `stride` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the slices' lengths differ.
    pub fn add_episode(
        &mut self,
        states: &[StateFeatures],
        outputs: &[ControlTarget],
        stride: usize,
    ) {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(states.len(), outputs.len(), "episode length mismatch");
        if states.len() < WINDOW {
            return;
        }
        let mut start = 0;
        while start + WINDOW <= states.len() {
            let window: Vec<[f64; FEATURE_DIM]> = states[start..start + WINDOW]
                .iter()
                .map(StateFeatures::encode)
                .collect();
            self.samples.push(Sample {
                window,
                target: outputs[start + WINDOW - 1].encode(),
            });
            start += stride;
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size (gradients averaged per batch).
    pub batch: usize,
    /// Optimiser settings.
    pub adam: AdamConfig,
    /// Shuffle seed.
    pub seed: u64,
    /// Probability of zeroing the control-history features (previous
    /// gas/steering) of a training sample. Without it the model learns the
    /// autoregressive shortcut "predict the previous command", which makes
    /// its predictions track a *compromised* controller instead of the true
    /// vehicle state — useless as an anomaly reference for Algorithm 1.
    pub history_dropout: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            batch: 16,
            adam: AdamConfig::default(),
            seed: 7,
            history_dropout: 0.6,
        }
    }
}

/// Loss trajectory of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared error per epoch.
    pub epoch_loss: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's loss.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        self.epoch_loss.last().copied().unwrap_or(f64::NAN)
    }
}

/// Per-sample gradient accumulator, one buffer per parameter tensor.
///
/// Workers accumulate into private `GradBuf`s and the batch reduction adds
/// them in a fixed (sample-group) order, so gradient sums are bit-for-bit
/// independent of the thread count.
struct GradBuf {
    l1w: Vec<f64>,
    l1b: Vec<f64>,
    l2w: Vec<f64>,
    l2b: Vec<f64>,
    hw: Vec<f64>,
    hb: Vec<f64>,
}

impl GradBuf {
    fn zeros(model: &LstmPredictor) -> Self {
        Self {
            l1w: vec![0.0; model.l1.gates.w.len()],
            l1b: vec![0.0; model.l1.gates.b.len()],
            l2w: vec![0.0; model.l2.gates.w.len()],
            l2b: vec![0.0; model.l2.gates.b.len()],
            hw: vec![0.0; model.head.w.len()],
            hb: vec![0.0; model.head.b.len()],
        }
    }

    fn zero(&mut self) {
        for buf in [
            &mut self.l1w,
            &mut self.l1b,
            &mut self.l2w,
            &mut self.l2b,
            &mut self.hw,
            &mut self.hb,
        ] {
            buf.fill(0.0);
        }
    }

    fn add_assign(&mut self, other: &Self) {
        for (dst, src) in [
            (&mut self.l1w, &other.l1w),
            (&mut self.l1b, &other.l1b),
            (&mut self.l2w, &other.l2w),
            (&mut self.l2b, &other.l2b),
            (&mut self.hw, &other.hw),
            (&mut self.hb, &other.hb),
        ] {
            for (a, b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        }
    }

    fn scale(&mut self, s: f64) {
        for buf in [
            &mut self.l1w,
            &mut self.l1b,
            &mut self.l2w,
            &mut self.l2b,
            &mut self.hw,
            &mut self.hb,
        ] {
            for v in buf.iter_mut() {
                *v *= s;
            }
        }
    }
}

/// Preallocated per-worker buffers for [`backprop_sample_into`]: BPTT
/// caches, double-buffered layer states, and every gradient-flow vector.
/// After the first sample a worker processes, the whole forward/backward
/// pass runs without heap allocation.
struct TrainScratch {
    caches1: Vec<LstmCache>,
    caches2: Vec<LstmCache>,
    z1: Vec<f64>,
    z2: Vec<f64>,
    h1: Vec<f64>,
    c1: Vec<f64>,
    h2: Vec<f64>,
    c2: Vec<f64>,
    nh1: Vec<f64>,
    nc1: Vec<f64>,
    nh2: Vec<f64>,
    nc2: Vec<f64>,
    y: Vec<f64>,
    dy: Vec<f64>,
    dh2: Vec<f64>,
    dc2: Vec<f64>,
    dh2p: Vec<f64>,
    dc2p: Vec<f64>,
    dx2: Vec<f64>,
    dh1_next: Vec<f64>,
    dc1: Vec<f64>,
    dh1p: Vec<f64>,
    dc1p: Vec<f64>,
    dz1: Vec<f64>,
    dz2: Vec<f64>,
    dx1: Vec<f64>,
}

impl TrainScratch {
    fn new(model: &LstmPredictor) -> Self {
        let h1 = model.l1.hidden;
        let h2 = model.l2.hidden;
        Self {
            caches1: Vec::new(),
            caches2: Vec::new(),
            z1: vec![0.0; 4 * h1],
            z2: vec![0.0; 4 * h2],
            h1: vec![0.0; h1],
            c1: vec![0.0; h1],
            h2: vec![0.0; h2],
            c2: vec![0.0; h2],
            nh1: vec![0.0; h1],
            nc1: vec![0.0; h1],
            nh2: vec![0.0; h2],
            nc2: vec![0.0; h2],
            y: vec![0.0; TARGET_DIM],
            dy: vec![0.0; TARGET_DIM],
            dh2: vec![0.0; h2],
            dc2: vec![0.0; h2],
            dh2p: vec![0.0; h2],
            dc2p: vec![0.0; h2],
            dx2: vec![0.0; h1],
            dh1_next: vec![0.0; h1],
            dc1: vec![0.0; h1],
            dh1p: vec![0.0; h1],
            dc1p: vec![0.0; h1],
            dz1: vec![0.0; 4 * h1],
            dz2: vec![0.0; 4 * h2],
            dx1: vec![0.0; model.l1.input],
        }
    }
}

/// Full BPTT over one sample; returns the squared-error loss and adds the
/// sample's gradients into `grads`. Allocation-free after `scratch` warms
/// up; numerically identical to the historical allocating implementation.
fn backprop_sample_into(
    model: &LstmPredictor,
    window: &[[f64; FEATURE_DIM]],
    target: &[f64; TARGET_DIM],
    s: &mut TrainScratch,
    grads: &mut GradBuf,
) -> f64 {
    let steps = window.len();
    s.caches1.resize_with(steps, LstmCache::default);
    s.caches2.resize_with(steps, LstmCache::default);
    s.h1.fill(0.0);
    s.c1.fill(0.0);
    s.h2.fill(0.0);
    s.c2.fill(0.0);

    // Forward with caches.
    for (t, x) in window.iter().enumerate() {
        model
            .l1
            .step_cached(x, &s.h1, &s.c1, &mut s.z1, &mut s.caches1[t], &mut s.nh1, &mut s.nc1);
        model.l2.step_cached(
            &s.nh1,
            &s.h2,
            &s.c2,
            &mut s.z2,
            &mut s.caches2[t],
            &mut s.nh2,
            &mut s.nc2,
        );
        std::mem::swap(&mut s.h1, &mut s.nh1);
        std::mem::swap(&mut s.c1, &mut s.nc1);
        std::mem::swap(&mut s.h2, &mut s.nh2);
        std::mem::swap(&mut s.c2, &mut s.nc2);
    }
    model.head.forward_into(&s.h2, &mut s.y);

    // MSE loss and output gradient.
    let mut loss = 0.0;
    for (k, t) in target.iter().enumerate() {
        let e = s.y[k] - t;
        loss += e * e;
        s.dy[k] = 2.0 * e / TARGET_DIM as f64;
    }
    loss /= TARGET_DIM as f64;

    // Backward: head → layer 2 chain → layer 1 chain.
    model
        .head
        .backward_into(&s.h2, &s.dy, &mut grads.hw, &mut grads.hb, &mut s.dh2);
    s.dc2.fill(0.0);
    s.dh1_next.fill(0.0);
    s.dc1.fill(0.0);
    for t in (0..steps).rev() {
        model.l2.step_backward_into(
            &s.caches2[t],
            &s.dh2,
            &s.dc2,
            &mut grads.l2w,
            &mut grads.l2b,
            &mut s.dz2,
            &mut s.dx2,
            &mut s.dh2p,
            &mut s.dc2p,
        );
        // dx2 is the gradient w.r.t. h1(t); add any gradient flowing from
        // layer 1's own recurrence.
        for (a, b) in s.dx2.iter_mut().zip(&s.dh1_next) {
            *a += b;
        }
        model.l1.step_backward_into(
            &s.caches1[t],
            &s.dx2,
            &s.dc1,
            &mut grads.l1w,
            &mut grads.l1b,
            &mut s.dz1,
            &mut s.dx1,
            &mut s.dh1p,
            &mut s.dc1p,
        );
        std::mem::swap(&mut s.dh2, &mut s.dh2p);
        std::mem::swap(&mut s.dc2, &mut s.dc2p);
        std::mem::swap(&mut s.dh1_next, &mut s.dh1p);
        std::mem::swap(&mut s.dc1, &mut s.dc1p);
    }
    loss
}

/// Samples per parallel work item. Each group is processed serially by one
/// worker into a private [`GradBuf`]; groups are then reduced in order.
/// Because the partition depends only on the batch contents, gradient sums
/// are identical at any thread count.
const GRAD_GROUP: usize = 4;

/// Trains `model` in place; returns the loss trajectory.
///
/// Minibatch gradients are accumulated in parallel across CPU cores (work
/// distribution via [`adas_parallel`], honouring `ADAS_THREADS`) with a
/// thread-count-invariant reduction order, so the trained weights are
/// deterministic for a given `(data, config)` regardless of parallelism.
pub fn train(model: &mut LstmPredictor, data: &Dataset, config: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut opt_l1w = Adam::new(model.l1.gates.w.len(), config.adam);
    let mut opt_l1b = Adam::new(model.l1.gates.b.len(), config.adam);
    let mut opt_l2w = Adam::new(model.l2.gates.w.len(), config.adam);
    let mut opt_l2b = Adam::new(model.l2.gates.b.len(), config.adam);
    let mut opt_hw = Adam::new(model.head.w.len(), config.adam);
    let mut opt_hb = Adam::new(model.head.b.len(), config.adam);

    let mut batch_grads = GradBuf::zeros(model);
    let mut epoch_loss = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0;
        for chunk in order.chunks(config.batch.max(1)) {
            // Pre-draw the dropout decisions serially, in sample order, so
            // RNG consumption is independent of worker scheduling.
            let masked: Vec<bool> = chunk
                .iter()
                .map(|_| {
                    config.history_dropout > 0.0
                        && rng.gen_range(0.0..1.0) < config.history_dropout
                })
                .collect();
            let groups: Vec<(&[usize], &[bool])> = chunk
                .chunks(GRAD_GROUP)
                .zip(masked.chunks(GRAD_GROUP))
                .collect();

            let shared: &LstmPredictor = model;
            let results: Vec<(f64, GradBuf)> = adas_parallel::map_init(
                &groups,
                || {
                    (
                        TrainScratch::new(shared),
                        Vec::<[f64; FEATURE_DIM]>::new(),
                    )
                },
                |(scratch, masked_buf), _, &(idxs, masks)| {
                    let mut grads = GradBuf::zeros(shared);
                    let mut loss = 0.0;
                    for (&idx, &mask) in idxs.iter().zip(masks) {
                        let sample = &data.samples[idx];
                        if mask {
                            // Zero the previous-command features over the
                            // whole window so the model must read the
                            // vehicle state (see `history_dropout`).
                            masked_buf.clear();
                            masked_buf.extend_from_slice(&sample.window);
                            for frame in masked_buf.iter_mut() {
                                frame[FEATURE_DIM - 2] = 0.0;
                                frame[FEATURE_DIM - 1] = 0.0;
                            }
                            loss += backprop_sample_into(
                                shared,
                                masked_buf,
                                &sample.target,
                                scratch,
                                &mut grads,
                            );
                        } else {
                            loss += backprop_sample_into(
                                shared,
                                &sample.window,
                                &sample.target,
                                scratch,
                                &mut grads,
                            );
                        }
                    }
                    (loss, grads)
                },
            );

            batch_grads.zero();
            for (loss, grads) in &results {
                total += loss;
                batch_grads.add_assign(grads);
            }
            batch_grads.scale(1.0 / chunk.len() as f64);
            opt_l1w.step(&mut model.l1.gates.w, &batch_grads.l1w);
            opt_l1b.step(&mut model.l1.gates.b, &batch_grads.l1b);
            opt_l2w.step(&mut model.l2.gates.w, &batch_grads.l2w);
            opt_l2b.step(&mut model.l2.gates.b, &batch_grads.l2b);
            opt_hw.step(&mut model.head.w, &batch_grads.hw);
            opt_hb.step(&mut model.head.b, &batch_grads.hb);
        }
        epoch_loss.push(total / data.len() as f64);
    }
    TrainReport { epoch_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    /// A synthetic "driving" mapping: target accel depends on distance and
    /// speed features; steer depends on curvature.
    fn synthetic_dataset(n_episodes: usize) -> Dataset {
        let mut data = Dataset::new();
        for e in 0..n_episodes {
            let mut states = Vec::new();
            let mut outs = Vec::new();
            for t in 0..120 {
                let phase = (t as f64 + e as f64 * 17.0) * 0.05;
                let rd = 40.0 + 30.0 * phase.sin();
                let v = 20.0 + 2.0 * phase.cos();
                let kappa = 0.002 * (phase * 0.5).sin();
                let accel = 0.05 * (rd - 30.0) - 0.3 * (v - 20.0);
                let steer = 2.7 * kappa;
                states.push(StateFeatures {
                    ego_speed: v,
                    lead_distance: rd,
                    closing_speed: (v - 13.0) * 0.3,
                    left_line: 1.75,
                    right_line: 1.75,
                    curvature: kappa,
                    heading: 0.0,
                    prev_accel: accel,
                    prev_steer: steer,
                });
                outs.push(ControlTarget { accel, steer });
            }
            data.add_episode(&states, &outs, 5);
        }
        data
    }

    #[test]
    fn dataset_windows_count() {
        let mut data = Dataset::new();
        let states = vec![StateFeatures::default(); 60];
        let outs = vec![ControlTarget::default(); 60];
        data.add_episode(&states, &outs, 10);
        // Windows starting at 0, 10, 20, 30, 40 (40+20 = 60).
        assert_eq!(data.len(), 5);
    }

    #[test]
    fn short_episodes_skipped() {
        let mut data = Dataset::new();
        data.add_episode(
            &[StateFeatures::default(); 10],
            &[ControlTarget::default(); 10],
            1,
        );
        assert!(data.is_empty());
    }

    #[test]
    #[should_panic(expected = "episode length mismatch")]
    fn mismatched_episode_panics() {
        let mut data = Dataset::new();
        data.add_episode(
            &vec![StateFeatures::default(); 30],
            &vec![ControlTarget::default(); 29],
            1,
        );
    }

    #[test]
    fn training_reduces_loss() {
        let data = synthetic_dataset(4);
        let mut model = LstmPredictor::new(ModelSpec {
            hidden1: 16,
            hidden2: 8,
            seed: 1,
        });
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
        );
        let first = report.epoch_loss[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.5,
            "loss did not halve: {first} → {last} ({:?})",
            report.epoch_loss
        );
    }

    #[test]
    fn trained_model_predicts_better_than_untrained() {
        let data = synthetic_dataset(4);
        let untrained = LstmPredictor::new(ModelSpec {
            hidden1: 16,
            hidden2: 8,
            seed: 1,
        });
        let mut trained = untrained.clone();
        let _ = train(&mut trained, &data, &TrainConfig::default());

        let mse = |m: &LstmPredictor| -> f64 {
            data.samples
                .iter()
                .map(|s| {
                    let y = m.predict_window(&s.window);
                    (y[0] - s.target[0]).powi(2) + (y[1] - s.target[1]).powi(2)
                })
                .sum::<f64>()
                / data.len() as f64
        };
        assert!(mse(&trained) < mse(&untrained));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut model = LstmPredictor::new(ModelSpec::default());
        let _ = train(&mut model, &Dataset::new(), &TrainConfig::default());
    }
}
