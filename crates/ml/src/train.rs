//! Offline training of the mitigation model on fault-free traces.

use crate::adam::{Adam, AdamConfig};
use crate::features::{ControlTarget, StateFeatures, FEATURE_DIM, TARGET_DIM, WINDOW};
use crate::model::LstmPredictor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One training sample: a [`WINDOW`]-cycle feature window plus the expected
/// control output at the final cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Encoded features, oldest first.
    pub window: Vec<[f64; FEATURE_DIM]>,
    /// Encoded target at the last cycle.
    pub target: [f64; TARGET_DIM],
}

/// A collection of training samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Slides a [`WINDOW`]-length window over one fault-free episode,
    /// emitting a sample every `stride` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the slices' lengths differ.
    pub fn add_episode(
        &mut self,
        states: &[StateFeatures],
        outputs: &[ControlTarget],
        stride: usize,
    ) {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(states.len(), outputs.len(), "episode length mismatch");
        if states.len() < WINDOW {
            return;
        }
        let mut start = 0;
        while start + WINDOW <= states.len() {
            let window: Vec<[f64; FEATURE_DIM]> = states[start..start + WINDOW]
                .iter()
                .map(StateFeatures::encode)
                .collect();
            self.samples.push(Sample {
                window,
                target: outputs[start + WINDOW - 1].encode(),
            });
            start += stride;
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size (gradients averaged per batch).
    pub batch: usize,
    /// Optimiser settings.
    pub adam: AdamConfig,
    /// Shuffle seed.
    pub seed: u64,
    /// Probability of zeroing the control-history features (previous
    /// gas/steering) of a training sample. Without it the model learns the
    /// autoregressive shortcut "predict the previous command", which makes
    /// its predictions track a *compromised* controller instead of the true
    /// vehicle state — useless as an anomaly reference for Algorithm 1.
    pub history_dropout: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            batch: 16,
            adam: AdamConfig::default(),
            seed: 7,
            history_dropout: 0.6,
        }
    }
}

/// Loss trajectory of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared error per epoch.
    pub epoch_loss: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's loss.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        self.epoch_loss.last().copied().unwrap_or(f64::NAN)
    }
}

/// Full BPTT over one sample; returns the squared-error loss and
/// accumulates gradients in the model.
fn backprop_sample(model: &mut LstmPredictor, sample: &Sample) -> f64 {
    // Forward with caches.
    let mut h1 = vec![0.0; model.l1.hidden];
    let mut c1 = vec![0.0; model.l1.hidden];
    let mut h2 = vec![0.0; model.l2.hidden];
    let mut c2 = vec![0.0; model.l2.hidden];
    let mut caches1 = Vec::with_capacity(sample.window.len());
    let mut caches2 = Vec::with_capacity(sample.window.len());
    for x in &sample.window {
        let (nh1, nc1, cache1) = model.l1.step(x, &h1, &c1);
        let (nh2, nc2, cache2) = model.l2.step(&nh1, &h2, &c2);
        caches1.push(cache1);
        caches2.push(cache2);
        h1 = nh1;
        c1 = nc1;
        h2 = nh2;
        c2 = nc2;
    }
    let y = model.head.forward(&h2);

    // MSE loss and output gradient.
    let mut loss = 0.0;
    let mut dy = vec![0.0; TARGET_DIM];
    for k in 0..TARGET_DIM {
        let e = y[k] - sample.target[k];
        loss += e * e;
        dy[k] = 2.0 * e / TARGET_DIM as f64;
    }
    loss /= TARGET_DIM as f64;

    // Backward: head → layer 2 chain → layer 1 chain.
    let mut dh2 = model.head.backward(&h2, &dy);
    let mut dc2 = vec![0.0; model.l2.hidden];
    let mut dh1_next = vec![0.0; model.l1.hidden];
    let mut dc1 = vec![0.0; model.l1.hidden];
    for t in (0..sample.window.len()).rev() {
        let (dx2, dh2_prev, dc2_prev) = model.l2.step_backward(&caches2[t], &dh2, &dc2);
        // dx2 is the gradient w.r.t. h1(t); add any gradient flowing from
        // layer 1's own recurrence.
        let mut dh1 = dx2;
        for (a, b) in dh1.iter_mut().zip(&dh1_next) {
            *a += b;
        }
        let (_dx1, dh1_prev, dc1_prev) = model.l1.step_backward(&caches1[t], &dh1, &dc1);
        dh2 = dh2_prev;
        dc2 = dc2_prev;
        dh1_next = dh1_prev;
        dc1 = dc1_prev;
    }
    loss
}

/// Trains `model` in place; returns the loss trajectory.
pub fn train(model: &mut LstmPredictor, data: &Dataset, config: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut opt_l1w = Adam::new(model.l1.gates.w.len(), config.adam);
    let mut opt_l1b = Adam::new(model.l1.gates.b.len(), config.adam);
    let mut opt_l2w = Adam::new(model.l2.gates.w.len(), config.adam);
    let mut opt_l2b = Adam::new(model.l2.gates.b.len(), config.adam);
    let mut opt_hw = Adam::new(model.head.w.len(), config.adam);
    let mut opt_hb = Adam::new(model.head.b.len(), config.adam);

    let mut epoch_loss = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0;
        for chunk in order.chunks(config.batch.max(1)) {
            model.l1.zero_grad();
            model.l2.zero_grad();
            model.head.zero_grad();
            for &idx in chunk {
                let sample = &data.samples[idx];
                if config.history_dropout > 0.0
                    && rng.gen_range(0.0..1.0) < config.history_dropout
                {
                    // Zero the previous-command features over the whole
                    // window so the model must read the vehicle state.
                    let mut masked = sample.clone();
                    for frame in &mut masked.window {
                        frame[FEATURE_DIM - 2] = 0.0;
                        frame[FEATURE_DIM - 1] = 0.0;
                    }
                    total += backprop_sample(model, &masked);
                } else {
                    total += backprop_sample(model, sample);
                }
            }
            let scale = 1.0 / chunk.len() as f64;
            let scaled = |g: &[f64]| -> Vec<f64> { g.iter().map(|v| v * scale).collect() };
            opt_l1w.step(&mut model.l1.gates.w, &scaled(&model.l1.gates.gw));
            opt_l1b.step(&mut model.l1.gates.b, &scaled(&model.l1.gates.gb));
            opt_l2w.step(&mut model.l2.gates.w, &scaled(&model.l2.gates.gw));
            opt_l2b.step(&mut model.l2.gates.b, &scaled(&model.l2.gates.gb));
            opt_hw.step(&mut model.head.w, &scaled(&model.head.gw));
            opt_hb.step(&mut model.head.b, &scaled(&model.head.gb));
        }
        epoch_loss.push(total / data.len() as f64);
    }
    TrainReport { epoch_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;

    /// A synthetic "driving" mapping: target accel depends on distance and
    /// speed features; steer depends on curvature.
    fn synthetic_dataset(n_episodes: usize) -> Dataset {
        let mut data = Dataset::new();
        for e in 0..n_episodes {
            let mut states = Vec::new();
            let mut outs = Vec::new();
            for t in 0..120 {
                let phase = (t as f64 + e as f64 * 17.0) * 0.05;
                let rd = 40.0 + 30.0 * phase.sin();
                let v = 20.0 + 2.0 * phase.cos();
                let kappa = 0.002 * (phase * 0.5).sin();
                let accel = 0.05 * (rd - 30.0) - 0.3 * (v - 20.0);
                let steer = 2.7 * kappa;
                states.push(StateFeatures {
                    ego_speed: v,
                    lead_distance: rd,
                    closing_speed: (v - 13.0) * 0.3,
                    left_line: 1.75,
                    right_line: 1.75,
                    curvature: kappa,
                    heading: 0.0,
                    prev_accel: accel,
                    prev_steer: steer,
                });
                outs.push(ControlTarget { accel, steer });
            }
            data.add_episode(&states, &outs, 5);
        }
        data
    }

    #[test]
    fn dataset_windows_count() {
        let mut data = Dataset::new();
        let states = vec![StateFeatures::default(); 60];
        let outs = vec![ControlTarget::default(); 60];
        data.add_episode(&states, &outs, 10);
        // Windows starting at 0, 10, 20, 30, 40 (40+20 = 60).
        assert_eq!(data.len(), 5);
    }

    #[test]
    fn short_episodes_skipped() {
        let mut data = Dataset::new();
        data.add_episode(
            &vec![StateFeatures::default(); 10],
            &vec![ControlTarget::default(); 10],
            1,
        );
        assert!(data.is_empty());
    }

    #[test]
    #[should_panic(expected = "episode length mismatch")]
    fn mismatched_episode_panics() {
        let mut data = Dataset::new();
        data.add_episode(
            &vec![StateFeatures::default(); 30],
            &vec![ControlTarget::default(); 29],
            1,
        );
    }

    #[test]
    fn training_reduces_loss() {
        let data = synthetic_dataset(4);
        let mut model = LstmPredictor::new(ModelSpec {
            hidden1: 16,
            hidden2: 8,
            seed: 1,
        });
        let report = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
        );
        let first = report.epoch_loss[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.5,
            "loss did not halve: {first} → {last} ({:?})",
            report.epoch_loss
        );
    }

    #[test]
    fn trained_model_predicts_better_than_untrained() {
        let data = synthetic_dataset(4);
        let untrained = LstmPredictor::new(ModelSpec {
            hidden1: 16,
            hidden2: 8,
            seed: 1,
        });
        let mut trained = untrained.clone();
        let _ = train(&mut trained, &data, &TrainConfig::default());

        let mse = |m: &LstmPredictor| -> f64 {
            data.samples
                .iter()
                .map(|s| {
                    let y = m.predict_window(&s.window);
                    (y[0] - s.target[0]).powi(2) + (y[1] - s.target[1]).powi(2)
                })
                .sum::<f64>()
                / data.len() as f64
        };
        assert!(mse(&trained) < mse(&untrained));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut model = LstmPredictor::new(ModelSpec::default());
        let _ = train(&mut model, &Dataset::new(), &TrainConfig::default());
    }
}
