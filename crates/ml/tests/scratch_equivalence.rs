//! Numeric-equivalence tests for the allocation-free hot paths.
//!
//! The scratch-buffer refactor (`forward_concat_into`, `step_infer`,
//! `step_backward_into`, `step_with`) must agree with a naive allocating
//! implementation — written out independently here — to 1e-12. The
//! split-input (concat) variants are additionally required to be
//! bit-identical to the materialised-concatenation path, because campaign
//! determinism depends on it.

use adas_ml::linear::{sigmoid, Linear};
use adas_ml::lstm::Lstm;
use adas_ml::{LstmPredictor, ModelSpec, FEATURE_DIM};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f64 = 1e-12;

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOL,
            "{what}[{k}]: {x} vs {y} (diff {})",
            (x - y).abs()
        );
    }
}

fn test_vec(len: usize, phase: f64) -> Vec<f64> {
    (0..len)
        .map(|k| ((k as f64) * 0.613 + phase).sin() * 1.7)
        .collect()
}

#[test]
fn forward_concat_is_bit_identical_to_materialised_concat() {
    let mut rng = StdRng::seed_from_u64(11);
    let lin = Linear::new(7, 9, &mut rng);
    let xa = test_vec(4, 0.2);
    let xb = test_vec(5, 1.3);
    let xcat: Vec<f64> = xa.iter().chain(&xb).copied().collect();

    let reference = lin.forward(&xcat);
    let mut split = vec![0.0; 7];
    lin.forward_concat_into(&xa, &xb, &mut split);
    for (k, (r, s)) in reference.iter().zip(&split).enumerate() {
        assert_eq!(r.to_bits(), s.to_bits(), "row {k}: {r} vs {s}");
    }
}

#[test]
fn backward_concat_matches_materialised_concat() {
    let mut rng = StdRng::seed_from_u64(12);
    let xa = test_vec(3, 0.4);
    let xb = test_vec(6, 2.1);
    let xcat: Vec<f64> = xa.iter().chain(&xb).copied().collect();
    let dy = test_vec(5, 0.9);

    // Reference: the allocating single-input path on the concatenation.
    let mut reference = Linear::new(5, 9, &mut rng);
    let dx_cat = reference.backward(&xcat, &dy);

    // Refactored: split inputs, caller-owned gradient buffers.
    let lin = reference.clone();
    let mut gw = vec![0.0; 5 * 9];
    let mut gb = vec![0.0; 5];
    let mut dxa = vec![0.0; 3];
    let mut dxb = vec![0.0; 6];
    lin.backward_concat_into(&xa, &xb, &dy, &mut gw, &mut gb, &mut dxa, &mut dxb);

    assert_close(&reference.gw, &gw, "gw");
    assert_close(&reference.gb, &gb, "gb");
    assert_close(&dx_cat[..3], &dxa, "dxa");
    assert_close(&dx_cat[3..], &dxb, "dxb");
}

/// Naive allocating LSTM step, written from the gate equations: the
/// concatenation is materialised and the packed gate transform applied
/// with the plain `forward` path.
fn naive_step(l: &Lstm, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let h = l.hidden;
    let xh: Vec<f64> = x.iter().chain(h_prev).copied().collect();
    let z = l.gates.forward(&xh);
    let mut h_out = vec![0.0; h];
    let mut c_out = vec![0.0; h];
    for k in 0..h {
        let i = sigmoid(z[k]);
        let f = sigmoid(z[h + k]);
        let g = z[2 * h + k].tanh();
        let o = sigmoid(z[3 * h + k]);
        c_out[k] = f * c_prev[k] + i * g;
        h_out[k] = o * c_out[k].tanh();
    }
    (h_out, c_out)
}

#[test]
fn lstm_step_variants_match_naive_reference() {
    let mut rng = StdRng::seed_from_u64(13);
    let l = Lstm::new(5, 7, &mut rng);
    let mut h = vec![0.0; 7];
    let mut c = vec![0.0; 7];
    let mut z = vec![0.0; 28];
    let mut h_infer = vec![0.0; 7];
    let mut c_infer = vec![0.0; 7];

    for t in 0..30 {
        let x = test_vec(5, t as f64 * 0.31);
        let (h_ref, c_ref) = naive_step(&l, &x, &h, &c);
        let (h_step, c_step, _) = l.step(&x, &h, &c);
        l.step_infer(&x, &h, &c, &mut z, &mut h_infer, &mut c_infer);

        assert_close(&h_ref, &h_step, "h: step vs naive");
        assert_close(&c_ref, &c_step, "c: step vs naive");
        assert_close(&h_ref, &h_infer, "h: step_infer vs naive");
        assert_close(&c_ref, &c_infer, "c: step_infer vs naive");

        h = h_step;
        c = c_step;
    }
}

#[test]
fn lstm_backward_into_matches_allocating_wrapper() {
    let mut rng = StdRng::seed_from_u64(14);
    let mut l = Lstm::new(4, 6, &mut rng);
    let x = test_vec(4, 0.7);
    let h_prev = test_vec(6, 1.1);
    let c_prev = test_vec(6, 1.9);
    let (_, _, cache) = l.step(&x, &h_prev, &c_prev);
    let dh = test_vec(6, 2.3);
    let dc = test_vec(6, 0.05);

    // Reference: the allocating wrapper, accumulating into the layer.
    l.zero_grad();
    let (dx_ref, dhp_ref, dcp_ref) = l.step_backward(&cache, &dh, &dc);

    // Refactored: shared `&self` kernel with caller-owned buffers.
    let mut gw = vec![0.0; l.gates.w.len()];
    let mut gb = vec![0.0; l.gates.b.len()];
    let mut dz = vec![0.0; 24];
    let mut dx = vec![0.0; 4];
    let mut dh_prev = vec![0.0; 6];
    let mut dc_prev = vec![0.0; 6];
    l.step_backward_into(
        &cache,
        &dh,
        &dc,
        &mut gw,
        &mut gb,
        &mut dz,
        &mut dx,
        &mut dh_prev,
        &mut dc_prev,
    );

    assert_close(&l.gates.gw, &gw, "gw");
    assert_close(&l.gates.gb, &gb, "gb");
    assert_close(&dx_ref, &dx, "dx");
    assert_close(&dhp_ref, &dh_prev, "dh_prev");
    assert_close(&dcp_ref, &dc_prev, "dc_prev");
}

#[test]
fn predict_window_matches_manual_step_loop() {
    let model = LstmPredictor::new(ModelSpec {
        hidden1: 12,
        hidden2: 6,
        seed: 15,
    });
    let window: Vec<[f64; FEATURE_DIM]> = (0..20)
        .map(|t| {
            let mut x = [0.0; FEATURE_DIM];
            for (k, v) in x.iter_mut().enumerate() {
                *v = ((t * FEATURE_DIM + k) as f64 * 0.247).sin();
            }
            x
        })
        .collect();

    let fast = model.predict_window(&window);
    let mut state = model.init_state();
    let mut reference = [0.0; 2];
    for x in &window {
        reference = model.step(x, &mut state);
    }
    assert_close(&reference, &fast, "predict_window vs step loop");
}
