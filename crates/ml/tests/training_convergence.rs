//! Training-pipeline integration tests: convergence, generalisation, and
//! the anti-shortcut effect of history dropout.

use adas_ml::{
    train, ControlTarget, Dataset, LstmPredictor, ModelSpec, StateFeatures, TrainConfig,
};

/// A synthetic "controller" whose output depends on the state (distance,
/// speed, curvature) — learnable without history.
fn controller(rd: f64, v: f64, kappa: f64) -> ControlTarget {
    ControlTarget {
        accel: (0.06 * (rd - 30.0) - 0.4 * (v - 15.0)).clamp(-4.0, 2.0),
        steer: (2.7 * kappa).atan(),
    }
}

fn synthetic_dataset(episodes: usize, len: usize) -> Dataset {
    let mut data = Dataset::new();
    for e in 0..episodes {
        let mut states = Vec::new();
        let mut outs = Vec::new();
        let mut prev = ControlTarget::default();
        for t in 0..len {
            let phase = t as f64 * 0.04 + e as f64;
            let rd = 35.0 + 20.0 * phase.sin();
            let v = 15.0 + 3.0 * (phase * 0.7).cos();
            let kappa = 0.0022 * (phase * 0.3).sin();
            let out = controller(rd, v, kappa);
            states.push(StateFeatures {
                ego_speed: v,
                lead_distance: rd,
                closing_speed: (15.0 - v) * 0.5,
                left_line: 1.75,
                right_line: 1.75,
                curvature: kappa,
                heading: 0.0,
                prev_accel: prev.accel,
                prev_steer: prev.steer,
            });
            outs.push(out);
            prev = out;
        }
        data.add_episode(&states, &outs, 7);
    }
    data
}

fn eval_mse(model: &LstmPredictor, data: &Dataset) -> f64 {
    data.samples
        .iter()
        .map(|s| {
            let y = model.predict_window(&s.window);
            ((y[0] - s.target[0]).powi(2) + (y[1] - s.target[1]).powi(2)) / 2.0
        })
        .sum::<f64>()
        / data.len() as f64
}

#[test]
fn converges_and_generalises_to_unseen_episodes() {
    let train_data = synthetic_dataset(5, 200);
    let test_data = synthetic_dataset(2, 150); // different phases
    let mut model = LstmPredictor::new(ModelSpec {
        hidden1: 24,
        hidden2: 12,
        seed: 3,
    });
    let before = eval_mse(&model, &test_data);
    let _ = train(
        &mut model,
        &train_data,
        &TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
    );
    let after = eval_mse(&model, &test_data);
    assert!(
        after < before * 0.3,
        "no generalisation: {before} → {after}"
    );
}

#[test]
fn history_dropout_reduces_shortcut_reliance() {
    // Evaluate on data whose history features are zeroed: a model trained
    // WITH dropout must do much better there than one trained without.
    let train_data = synthetic_dataset(5, 200);
    let mut masked_eval = synthetic_dataset(2, 150);
    for s in &mut masked_eval.samples {
        for f in &mut s.window {
            let n = f.len();
            f[n - 2] = 0.0;
            f[n - 1] = 0.0;
        }
    }

    let spec = ModelSpec {
        hidden1: 24,
        hidden2: 12,
        seed: 3,
    };
    let mut with_dropout = LstmPredictor::new(spec);
    let mut without_dropout = LstmPredictor::new(spec);
    let base = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let _ = train(&mut with_dropout, &train_data, &base);
    let _ = train(
        &mut without_dropout,
        &train_data,
        &TrainConfig {
            history_dropout: 0.0,
            ..base
        },
    );
    let masked_with = eval_mse(&with_dropout, &masked_eval);
    let masked_without = eval_mse(&without_dropout, &masked_eval);
    assert!(
        masked_with < masked_without,
        "dropout must help on masked eval: {masked_with} vs {masked_without}"
    );
}

#[test]
fn deterministic_training() {
    let data = synthetic_dataset(2, 120);
    let spec = ModelSpec {
        hidden1: 12,
        hidden2: 6,
        seed: 1,
    };
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let mut a = LstmPredictor::new(spec);
    let mut b = LstmPredictor::new(spec);
    let ra = train(&mut a, &data, &cfg);
    let rb = train(&mut b, &data, &cfg);
    assert_eq!(ra.epoch_loss, rb.epoch_loss);
    assert_eq!(a, b);
}
