//! Hardened parsing for the `ADAS_*` environment knobs.
//!
//! Every crate used to hand-roll `std::env::var(..).ok().and_then(parse)`
//! chains, which silently swallowed typos: `ADAS_THREADS=fourteen` fell
//! back to the autodetected thread count without a word, and
//! `ADAS_CACHE_DIR=" "` produced a directory literally named `" "`. This
//! module centralises the policy:
//!
//! * values are trimmed before interpretation;
//! * empty / whitespace-only values are rejected with a warning;
//! * unparsable values are rejected with a warning naming the variable,
//!   the offending value, and what was expected — then the caller's
//!   default applies (loudly, not silently).
//!
//! The helpers live in `adas-parallel` because it sits at the bottom of
//! the workspace dependency graph (everything that reads `ADAS_*` already
//! depends on it, directly or through `adas-core`, which re-exports this
//! module as `adas_core::env`).

use std::path::PathBuf;
use std::str::FromStr;

/// Reads and trims a variable. Returns `None` when unset; warns and
/// returns `None` when set but empty (or whitespace-only) — an empty
/// override is always a mistake, never a meaningful setting.
#[must_use]
pub fn raw(name: &str) -> Option<String> {
    let value = std::env::var(name).ok()?;
    let trimmed = value.trim();
    if trimmed.is_empty() {
        eprintln!("[env] ignoring {name}=\"\": empty value (unset it instead)");
        return None;
    }
    Some(trimmed.to_owned())
}

/// Parses a variable into `T`, warning (and returning `None`) on garbage
/// instead of silently falling back.
#[must_use]
pub fn parse<T: FromStr>(name: &str, expected: &str) -> Option<T> {
    let s = raw(name)?;
    match s.parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("[env] ignoring {name}={s:?}: expected {expected}");
            None
        }
    }
}

/// [`parse`] with a default for the unset / rejected cases.
#[must_use]
pub fn parse_or<T: FromStr>(name: &str, expected: &str, default: T) -> T {
    parse(name, expected).unwrap_or(default)
}

/// Interprets a boolean-ish switch. Recognises `1/on/true/yes` and
/// `0/off/false/no` (case-insensitive); anything else warns and yields
/// `None` so the caller's default applies.
#[must_use]
pub fn switch(name: &str) -> Option<bool> {
    let s = raw(name)?;
    match s.to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Some(true),
        "0" | "off" | "false" | "no" => Some(false),
        _ => {
            eprintln!("[env] ignoring {name}={s:?}: expected on/off/1/0/true/false/yes/no");
            None
        }
    }
}

/// Reads a path-valued variable, falling back to `default` when unset or
/// empty. (No parse failure mode: any non-empty trimmed string is a path.)
#[must_use]
pub fn path_or(name: &str, default: impl Into<PathBuf>) -> PathBuf {
    raw(name).map_or_else(|| default.into(), PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests mutating process-global environment state.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn trims_and_rejects_empty() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("ADAS_ENV_TEST_A", "  7  ");
        assert_eq!(parse::<u32>("ADAS_ENV_TEST_A", "an integer"), Some(7));
        std::env::set_var("ADAS_ENV_TEST_A", "   ");
        assert_eq!(parse::<u32>("ADAS_ENV_TEST_A", "an integer"), None);
        assert_eq!(raw("ADAS_ENV_TEST_A"), None);
        std::env::remove_var("ADAS_ENV_TEST_A");
        assert_eq!(raw("ADAS_ENV_TEST_A"), None);
    }

    #[test]
    fn garbage_warns_and_defaults() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("ADAS_ENV_TEST_B", "fourteen");
        assert_eq!(parse_or::<usize>("ADAS_ENV_TEST_B", "an integer", 3), 3);
        std::env::remove_var("ADAS_ENV_TEST_B");
    }

    #[test]
    fn switch_values() {
        let _guard = ENV_LOCK.lock().unwrap();
        for (v, want) in [
            ("1", Some(true)),
            ("ON", Some(true)),
            ("Yes", Some(true)),
            ("0", Some(false)),
            ("off", Some(false)),
            ("no", Some(false)),
            ("maybe", None),
        ] {
            std::env::set_var("ADAS_ENV_TEST_C", v);
            assert_eq!(switch("ADAS_ENV_TEST_C"), want, "value {v:?}");
        }
        std::env::remove_var("ADAS_ENV_TEST_C");
    }

    #[test]
    fn path_fallback() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::remove_var("ADAS_ENV_TEST_D");
        assert_eq!(
            path_or("ADAS_ENV_TEST_D", "a/b"),
            std::path::PathBuf::from("a/b")
        );
        std::env::set_var("ADAS_ENV_TEST_D", " c/d ");
        assert_eq!(
            path_or("ADAS_ENV_TEST_D", "a/b"),
            std::path::PathBuf::from("c/d")
        );
        std::env::remove_var("ADAS_ENV_TEST_D");
    }
}
