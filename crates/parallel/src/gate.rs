//! A FIFO fairness gate: a capacity-bounded admission primitive that
//! admits waiters strictly in arrival order.
//!
//! A plain semaphore (or a `Mutex` convoy) lets the OS scheduler pick the
//! next waiter, so under saturation a burst-happy client can starve a
//! polite one indefinitely. [`FairGate`] hands out monotonically
//! increasing tickets and only admits the waiter whose ticket is next, so
//! every submitter makes progress at the same rate — the per-client
//! fairness the `adas-serve bench` load generator measures under.

use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct GateState {
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to take a slot (all lower tickets have
    /// been admitted already).
    serving: u64,
    /// Admitted holders that have not yet released their slot.
    active: usize,
}

/// FIFO ticket gate bounding concurrent holders to `capacity`, admitting
/// strictly in arrival order.
#[derive(Debug)]
pub struct FairGate {
    state: Mutex<GateState>,
    turn: Condvar,
    capacity: usize,
}

impl FairGate {
    /// A gate admitting at most `capacity` concurrent holders (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(GateState {
                next_ticket: 0,
                serving: 0,
                active: 0,
            }),
            turn: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured concurrency bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Takes a ticket and blocks until it is this caller's turn *and* a
    /// slot is free. The returned guard releases the slot on drop.
    pub fn enter(&self) -> FairGuard<'_> {
        let mut s = self.state.lock().expect("gate lock");
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        while !(s.serving == ticket && s.active < self.capacity) {
            s = self.turn.wait(s).expect("gate wait");
        }
        s.serving += 1;
        s.active += 1;
        drop(s);
        // Wake everyone: the next ticket holder may be any waiter.
        self.turn.notify_all();
        FairGuard { gate: self }
    }
}

/// Slot held in a [`FairGate`]; dropping it releases the slot.
#[derive(Debug)]
pub struct FairGuard<'a> {
    gate: &'a FairGate,
}

impl Drop for FairGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().expect("gate lock");
        s.active -= 1;
        drop(s);
        self.gate.turn.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn bounds_concurrency() {
        let gate = Arc::new(FairGate::new(3));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (gate, live, peak) = (gate.clone(), live.clone(), peak.clone());
                std::thread::spawn(move || {
                    let _slot = gate.enter();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {peak:?} > capacity");
    }

    #[test]
    fn admits_in_arrival_order() {
        let gate = Arc::new(FairGate::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Hold the only slot so arrivals queue up behind it in a known
        // order (staggered spawns).
        let first = gate.enter();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let (gate, order) = (gate.clone(), order.clone());
                let h = std::thread::spawn(move || {
                    let _slot = gate.enter();
                    order.lock().expect("order").push(i);
                });
                // Give thread i time to take its ticket before i+1 spawns.
                std::thread::sleep(std::time::Duration::from_millis(10));
                h
            })
            .collect();
        drop(first);
        for h in handles {
            h.join().expect("waiter");
        }
        assert_eq!(*order.lock().expect("order"), (0..8).collect::<Vec<_>>());
    }
}
