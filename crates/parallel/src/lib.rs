//! Deterministic work-stealing executor for campaign and training
//! workloads.
//!
//! The previous campaign runner split work into `threads` static chunks,
//! so one long chunk (e.g. a scenario whose runs never reach quiescence)
//! stalled the whole campaign behind a single straggler thread. This
//! module replaces that scheme with a shared atomic work-queue over
//! [`std::thread::scope`]: every worker repeatedly *steals* the next
//! unclaimed item index, so load balances at item granularity no matter
//! how uneven the per-item cost is.
//!
//! Two properties are load-bearing for the experiment harness:
//!
//! 1. **Determinism** — each item's result is keyed by its index, and the
//!    returned vector is ordered by index. Which thread computed an item
//!    never influences the output, so results are bit-for-bit identical at
//!    any thread count (including 1).
//! 2. **No `unsafe`** — workers accumulate `(index, result)` pairs locally
//!    and the pairs are merged by index after the scope joins, instead of
//!    scattering into a shared buffer.
//!
//! The worker count honours the `ADAS_THREADS` environment variable
//! (clamped to `[1, 256]`), falling back to [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod gate;

pub use gate::{FairGate, FairGuard};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Upper bound on worker threads (defensive clamp for absurd overrides).
pub const MAX_THREADS: usize = 256;

/// Resolves the worker count for `jobs` queued items.
///
/// Priority: `ADAS_THREADS` env override (empty, unparsable, or zero
/// values are rejected with a warning — see [`env`]), then
/// [`std::thread::available_parallelism`], then 4. The result never
/// exceeds `jobs` (no point spawning idle workers) and is at least 1.
#[must_use]
pub fn thread_count(jobs: usize) -> usize {
    let configured = env::parse::<usize>("ADAS_THREADS", "a thread count ≥ 1")
        .filter(|&n| {
            if n == 0 {
                eprintln!("[env] ignoring ADAS_THREADS=0: expected a thread count ≥ 1");
            }
            n >= 1
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        });
    configured.clamp(1, MAX_THREADS).min(jobs.max(1))
}

/// Default lockstep batch width when `ADAS_BATCH` is unset.
pub const DEFAULT_BATCH_WIDTH: usize = 16;

/// Upper bound on the lockstep batch width (defensive clamp — panel
/// memory grows linearly with width and the returns flatten long before
/// this).
pub const MAX_BATCH_WIDTH: usize = 1024;

/// Resolves the lockstep batch width for the structure-of-arrays campaign
/// path from the `ADAS_BATCH` environment variable.
///
/// * unset → [`DEFAULT_BATCH_WIDTH`];
/// * `ADAS_BATCH=1` (or `0`, with a warning) → scalar per-run path;
/// * otherwise the value, clamped to `[1, 1024]`.
///
/// Work is still stolen from the shared queue — just in batch-sized
/// chunks — and per-run results are bit-identical at any width, so this
/// knob trades scheduling granularity against batched-kernel throughput
/// without affecting outcomes.
#[must_use]
pub fn batch_width() -> usize {
    env::parse::<usize>("ADAS_BATCH", "a batch width ≥ 1")
        .map(|n| {
            if n == 0 {
                eprintln!("[env] ignoring ADAS_BATCH=0: expected a batch width ≥ 1");
                DEFAULT_BATCH_WIDTH
            } else {
                n
            }
        })
        .unwrap_or(DEFAULT_BATCH_WIDTH)
        .clamp(1, MAX_BATCH_WIDTH)
}

/// Shared cancellation + progress instrumentation for one [`map_ctl`]
/// call.
///
/// A long-lived consumer (the `adas-serve` job executor) hands the same
/// control block to the executor and to its control plane: `cancel()` from
/// any thread makes workers stop claiming new items, and the `claimed`/
/// `completed` counters let a `Status` endpoint report live progress
/// without touching the workers.
#[derive(Debug, Default)]
pub struct MapControl {
    cancelled: AtomicBool,
    claimed: AtomicUsize,
    completed: AtomicUsize,
}

impl MapControl {
    /// A fresh control block (not cancelled, zero progress).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation: workers finish their in-flight item and stop
    /// claiming new ones. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) was called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Items claimed by workers so far (monotonic, may overshoot the item
    /// count by up to one per worker — claims race the queue end).
    #[must_use]
    pub fn claimed(&self) -> usize {
        self.claimed.load(Ordering::Relaxed)
    }

    /// Items fully computed so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }
}

/// [`map_init`] with an external [`MapControl`]: returns `None` when the
/// map was cancelled before completing (partial results are dropped —
/// determinism means all-or-nothing), `Some(results)` otherwise.
///
/// Cancellation is checked before each claim, so the latency from
/// `cancel()` to the workers going idle is one item's compute time.
pub fn map_ctl<T, S, R, I, F>(items: &[T], init: I, f: F, ctl: &MapControl) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        // Serial fast path: same claim/check/compute shape as one worker.
        let mut state = init();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if ctl.is_cancelled() {
                return None;
            }
            ctl.claimed.fetch_add(1, Ordering::Relaxed);
            out.push(f(&mut state, i, item));
            ctl.completed.fetch_add(1, Ordering::Relaxed);
        }
        return if ctl.is_cancelled() { None } else { Some(out) };
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    if ctl.is_cancelled() {
                        break;
                    }
                    // The shared work-queue: claim the next unprocessed
                    // item. Relaxed is enough — the scope join provides the
                    // happens-before edge for the results.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    ctl.claimed.fetch_add(1, Ordering::Relaxed);
                    local.push((i, f(&mut state, i, &items[i])));
                    ctl.completed.fetch_add(1, Ordering::Relaxed);
                }
                local
            }));
        }
        for handle in handles {
            buckets.push(handle.join().expect("parallel worker panicked"));
        }
    });

    if ctl.is_cancelled() {
        return None;
    }

    // Merge per-worker buckets back into item order. Every index in
    // 0..items.len() appears exactly once across the buckets.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    Some(
        slots
            .into_iter()
            .map(|r| r.expect("work-queue item left unprocessed"))
            .collect(),
    )
}

/// Maps `f` over `items` in parallel with work-stealing scheduling and
/// returns the results in item order.
///
/// Each worker owns a mutable scratch state created by `init` (reused
/// across all items that worker steals), so hot loops can preallocate
/// buffers once per worker instead of once per item.
///
/// Results are deterministic for deterministic `f`: output order is item
/// order and `f` receives the item index, so thread scheduling cannot leak
/// into the results.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn map_init<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    map_ctl(items, init, f, &MapControl::new()).expect("uncancelled map completed")
}

/// [`map_init`] without per-worker scratch state.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_init(items, || (), |(), i, item| f(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = map(&items, |i, &x| {
            // Uneven cost: later items spin briefly so early finishers
            // steal more work.
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items = vec![(); 1000];
        let out = map(&items, |_, ()| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn init_state_reused_within_worker() {
        let items = vec![1u64; 64];
        // Each worker's state counts how many items it processed; the sum
        // across results of "first visit" flags must be <= threads.
        let out = map_init(
            &items,
            || 0u64,
            |seen, _, _item| {
                *seen += 1;
                u64::from(*seen == 1)
            },
        );
        let firsts: u64 = out.iter().sum();
        assert!(firsts >= 1);
        assert!(firsts as usize <= thread_count(items.len()));
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, |_, &x| x).is_empty());
        assert_eq!(map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn control_counts_progress() {
        let items: Vec<u32> = (0..40).collect();
        let ctl = MapControl::new();
        let out = map_ctl(&items, || (), |(), _, &x| x + 1, &ctl);
        assert_eq!(out.expect("not cancelled").len(), 40);
        assert_eq!(ctl.completed(), 40);
        assert!(ctl.claimed() >= 40);
        assert!(!ctl.is_cancelled());
    }

    #[test]
    fn cancel_before_start_yields_none() {
        let items: Vec<u32> = (0..1000).collect();
        let ctl = MapControl::new();
        ctl.cancel();
        assert!(map_ctl(&items, || (), |(), _, &x| x, &ctl).is_none());
        assert_eq!(ctl.completed(), 0);
    }

    #[test]
    fn cancel_mid_map_stops_claiming() {
        let items: Vec<u32> = (0..100_000).collect();
        let ctl = MapControl::new();
        let out = map_ctl(
            &items,
            || (),
            |(), i, &x| {
                if i == 10 {
                    ctl.cancel();
                }
                x
            },
            &ctl,
        );
        assert!(out.is_none(), "cancelled map must drop partial results");
        assert!(
            ctl.completed() < items.len(),
            "cancellation must stop the sweep early"
        );
    }

    /// Serialises the tests that mutate the process-global `ADAS_THREADS`.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn thread_count_env_override() {
        let _guard = ENV_LOCK.lock().unwrap();
        // Serial fallback when jobs == 0 still reports at least one worker.
        assert!(thread_count(0) >= 1);
        std::env::set_var("ADAS_THREADS", "3");
        assert_eq!(thread_count(100), 3);
        assert_eq!(thread_count(2), 2, "never more workers than jobs");
        std::env::set_var("ADAS_THREADS", "not-a-number");
        assert!(thread_count(100) >= 1);
        std::env::remove_var("ADAS_THREADS");
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let _guard = ENV_LOCK.lock().unwrap();
        let items: Vec<u64> = (0..250).collect();
        let golden: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E3779B9)).collect();
        for threads in ["1", "2", "5", "16"] {
            std::env::set_var("ADAS_THREADS", threads);
            let out = map(&items, |_, &x| x.wrapping_mul(0x9E3779B9));
            assert_eq!(out, golden, "threads={threads}");
        }
        std::env::remove_var("ADAS_THREADS");
    }
}
