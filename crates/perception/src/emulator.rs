//! The perception emulator itself.

use crate::frame::{LanePrediction, LeadPrediction, PerceptionFrame};
use adas_simulator::{DeterministicRng, World};
use serde::{Deserialize, Serialize};

/// Tunable characteristics of the emulated DNN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionConfig {
    /// Below this true distance the lead vehicle is no longer recognised
    /// (Fig. 6's failure mode), metres.
    pub blind_range: f64,
    /// Beyond this true distance no lead is reported, metres.
    pub max_range: f64,
    /// Standard deviation of the distance prediction as a fraction of the
    /// true distance.
    pub distance_noise_frac: f64,
    /// Floor on the distance prediction noise, metres.
    pub distance_noise_floor: f64,
    /// Standard deviation of the closing-speed prediction, m/s.
    pub speed_noise: f64,
    /// Standard deviation of lane-line position predictions, metres.
    pub lane_noise: f64,
    /// Standard deviation of the desired-curvature prediction, 1/m.
    pub curvature_noise: f64,
    /// Path-planning preview horizon, seconds of travel ahead.
    pub preview_time: f64,
    /// Lateral acceptance window of the camera's lead detector, as a
    /// fraction of the lane width. Narrower than a radar's: the camera
    /// loses the lead first when the ego drifts sideways.
    pub lead_window_frac: f64,
    /// Lane-centering gain of the path planner: curvature correction per
    /// metre of lateral offset, 1/m².
    pub centering_offset_gain: f64,
    /// Lane-centering gain on the heading error, 1/m per radian.
    pub centering_heading_gain: f64,
    /// Magnitude limit of the centering correction, 1/m.
    pub centering_limit: f64,
    /// Standard deviation of the planner's heading estimate, radians.
    pub heading_noise: f64,
}

impl Default for PerceptionConfig {
    fn default() -> Self {
        Self {
            blind_range: 2.0,
            max_range: 120.0,
            distance_noise_frac: 0.002,
            distance_noise_floor: 0.02,
            speed_noise: 0.08,
            lane_noise: 0.02,
            curvature_noise: 1.5e-5,
            preview_time: 0.6,
            lead_window_frac: 0.30,
            centering_offset_gain: 0.011,
            centering_heading_gain: 0.20,
            centering_limit: 0.0148,
            heading_noise: 0.004,
        }
    }
}

/// Stateful perception emulator (holds its own RNG stream and output
/// smoothing state).
#[derive(Debug, Clone)]
pub struct PerceptionEmulator {
    config: PerceptionConfig,
    rng: DeterministicRng,
    /// One-pole smoothed curvature, emulating the temporal consistency of
    /// consecutive DNN outputs.
    smoothed_curvature: Option<f64>,
}

impl PerceptionEmulator {
    /// Creates an emulator with its own random stream.
    #[must_use]
    pub fn new(config: PerceptionConfig, rng: DeterministicRng) -> Self {
        Self {
            config,
            rng,
            smoothed_curvature: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PerceptionConfig {
        &self.config
    }

    /// Produces one frame of DNN-style predictions from the world's ground
    /// truth.
    pub fn perceive(&mut self, world: &World) -> PerceptionFrame {
        let ego = world.ego().state();
        let cfg = self.config;

        // --- Lead vehicle -------------------------------------------------
        let lead = world
            .lead_observation_within(cfg.lead_window_frac)
            .and_then(|obs| {
            if obs.distance < cfg.blind_range || obs.distance > cfg.max_range {
                return None;
            }
            let noise = self
                .rng
                .gaussian((obs.distance * cfg.distance_noise_frac).max(cfg.distance_noise_floor));
            let rs_noise = self.rng.gaussian(cfg.speed_noise);
            Some(LeadPrediction {
                distance: (obs.distance + noise).max(0.0),
                closing_speed: obs.closing_speed + rs_noise,
                lead_speed: (obs.lead_speed - rs_noise).max(0.0),
            })
        });

        // --- Lane lines ----------------------------------------------------
        let half = world.road().lane_width() / 2.0;
        let lanes = LanePrediction {
            left_line: half - ego.d + self.rng.gaussian(cfg.lane_noise),
            right_line: half + ego.d + self.rng.gaussian(cfg.lane_noise),
        };

        // --- Desired curvature ----------------------------------------------
        // Average road curvature over the preview window, as a path planner
        // that anticipates upcoming bends would output.
        let preview = (ego.v * cfg.preview_time).max(5.0);
        let samples = 5;
        let mut kappa = 0.0;
        for i in 0..samples {
            let ds = preview * (i as f64 + 0.5) / samples as f64;
            kappa += world.road().curvature_at(ego.s + ds);
        }
        kappa /= samples as f64;
        kappa += self.rng.gaussian(cfg.curvature_noise);
        // Temporal smoothing like consecutive DNN frames.
        let smoothed = match self.smoothed_curvature {
            Some(prev) => prev + 0.2 * (kappa - prev),
            None => kappa,
        };
        self.smoothed_curvature = Some(smoothed);

        // --- Path centering ---------------------------------------------------
        // The planner's path output steers back to the lane center; it is
        // derived from the same (noisy) lane observation plus a heading
        // estimate.
        let offset_est = lanes.lateral_offset();
        let heading_est = ego.psi + self.rng.gaussian(cfg.heading_noise);
        let path_centering = (-cfg.centering_offset_gain * offset_est
            - cfg.centering_heading_gain * heading_est)
            .clamp(-cfg.centering_limit, cfg.centering_limit);

        PerceptionFrame {
            lead,
            lanes,
            desired_curvature: smoothed,
            path_centering,
            ego_speed: ego.v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_simulator::{
        units::mph, Npc, NpcPlan, RoadBuilder, VehicleParams, World, WorldConfig,
    };

    fn world_with_lead(gap_centers: f64) -> World {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let mut w = World::new(WorldConfig::default(), road);
        w.spawn_ego(0.0, mph(50.0));
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            gap_centers,
            0.0,
            mph(30.0),
            NpcPlan::cruise(),
        ));
        w
    }

    fn emulator() -> PerceptionEmulator {
        PerceptionEmulator::new(PerceptionConfig::default(), DeterministicRng::from_seed(1))
    }

    #[test]
    fn detects_lead_in_range() {
        let w = world_with_lead(60.0);
        let mut p = emulator();
        let frame = p.perceive(&w);
        let lead = frame.lead.expect("lead in range");
        let true_rd = 60.0 - 4.9;
        assert!((lead.distance - true_rd).abs() < 2.0, "rd={}", lead.distance);
        assert!(lead.closing_speed > 8.0);
    }

    #[test]
    fn blind_below_two_meters() {
        // Centers 6.5 m apart → bumper gap 1.6 m < 2 m blind range.
        let w = world_with_lead(6.5);
        let mut p = emulator();
        assert!(p.perceive(&w).lead.is_none());
    }

    #[test]
    fn no_detection_beyond_max_range() {
        let w = world_with_lead(200.0);
        let mut p = emulator();
        assert!(p.perceive(&w).lead.is_none());
    }

    #[test]
    fn lane_lines_reflect_offset() {
        let road = RoadBuilder::straight_highway(1000.0).build();
        let mut w = World::new(WorldConfig::default(), road);
        w.spawn_ego(0.0, 20.0);
        // Nudge the ego 0.5 m left of center.
        let mut p = emulator();
        // step world zero times; mutate via state
        {
            // Recreate the world with a custom offset by driving? Simpler:
            // use the fact that spawn puts d=0 and verify symmetric lines.
            let f = p.perceive(&w);
            assert!((f.lanes.lateral_offset()).abs() < 0.1);
            assert!((f.lanes.lane_width() - 3.5).abs() < 0.15);
        }
        let _ = w;
    }

    #[test]
    fn curvature_preview_anticipates_bend() {
        // Straight then a 450 m-radius left curve starting at s = 8 m; the
        // ego at speed sees it inside its preview window.
        let road = RoadBuilder::new().straight(8.0).arc(500.0, 450.0).build();
        let mut w = World::new(WorldConfig::default(), road);
        w.spawn_ego(0.0, mph(50.0));
        let mut p = emulator();
        let mut f = p.perceive(&w);
        // Run a few frames so smoothing settles.
        for _ in 0..30 {
            f = p.perceive(&w);
        }
        // One of five preview samples lies on the curve → ≈ (1/5)·(1/450).
        assert!(f.desired_curvature > 0.15 / 450.0, "k={}", f.desired_curvature);
    }

    #[test]
    fn curvature_zero_on_straight() {
        let w = world_with_lead(500.0);
        let mut p = emulator();
        let f = p.perceive(&w);
        assert!(f.desired_curvature.abs() < 1e-3);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let w = world_with_lead(60.0);
        let mut a = emulator();
        let mut b = emulator();
        let fa = a.perceive(&w);
        let fb = b.perceive(&w);
        assert_eq!(fa.lead.unwrap().distance, fb.lead.unwrap().distance);
    }

    #[test]
    fn distance_noise_is_small_relative() {
        let w = world_with_lead(100.0);
        let mut p = emulator();
        let mut max_err: f64 = 0.0;
        for _ in 0..200 {
            let f = p.perceive(&w);
            let rd = f.lead.expect("in range").distance;
            max_err = max_err.max((rd - 95.1).abs());
        }
        assert!(max_err < 3.0, "max_err={max_err}");
    }

    #[test]
    fn ego_speed_passthrough() {
        let w = world_with_lead(60.0);
        let mut p = emulator();
        let f = p.perceive(&w);
        assert!((f.ego_speed - mph(50.0)).abs() < 1e-9);
    }
}
