//! Perception output types shared by the control stack and the fault
//! injector.

use serde::{Deserialize, Serialize};

/// DNN-style prediction of the lead vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadPrediction {
    /// Predicted bumper-to-bumper relative distance (RD), metres.
    pub distance: f64,
    /// Predicted closing speed (ego minus lead), m/s.
    pub closing_speed: f64,
    /// Predicted lead absolute speed, m/s.
    pub lead_speed: f64,
}

impl LeadPrediction {
    /// Time to collision implied by the prediction, seconds; infinite when
    /// not closing.
    #[must_use]
    pub fn ttc(&self) -> f64 {
        if self.closing_speed > 1e-6 && self.distance >= 0.0 {
            self.distance / self.closing_speed
        } else {
            f64::INFINITY
        }
    }
}

/// DNN-style prediction of the lane geometry around the ego vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LanePrediction {
    /// Distance from the vehicle centerline to the left lane line, metres
    /// (positive when the line is to the left, i.e. the vehicle is inside).
    pub left_line: f64,
    /// Distance from the vehicle centerline to the right lane line, metres.
    pub right_line: f64,
}

impl LanePrediction {
    /// Predicted lateral offset of the vehicle from the lane center
    /// (left-positive), metres.
    #[must_use]
    pub fn lateral_offset(&self) -> f64 {
        (self.right_line - self.left_line) / 2.0
    }

    /// Predicted lane width, metres.
    #[must_use]
    pub fn lane_width(&self) -> f64 {
        self.left_line + self.right_line
    }

    /// Distance from the *nearer* line to the vehicle centerline, metres.
    #[must_use]
    pub fn nearest_line(&self) -> f64 {
        self.left_line.min(self.right_line)
    }
}

/// One perception cycle's worth of DNN outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionFrame {
    /// Lead vehicle prediction; `None` when no lead is detected (out of
    /// range, out of lane, or inside the close-range blind zone).
    pub lead: Option<LeadPrediction>,
    /// Lane geometry prediction.
    pub lanes: LanePrediction,
    /// Desired path curvature the planner should follow, 1/m (positive
    /// curves left). The reciprocal of the turning radius.
    pub desired_curvature: f64,
    /// Lane-centering correction folded into the planned path, 1/m. In
    /// OpenPilot the DNN's path output already steers back to the lane
    /// center; a road-patch attack bends the *whole* path, which removes
    /// this correction along with poisoning [`Self::desired_curvature`].
    pub path_centering: f64,
    /// Ego speed as read by the ADAS (from the CAN bus, not the camera),
    /// m/s.
    pub ego_speed: f64,
}

impl PerceptionFrame {
    /// A frame with no lead, centred lanes and zero curvature — useful as a
    /// neutral starting value and in tests.
    #[must_use]
    pub fn neutral(ego_speed: f64) -> Self {
        Self {
            lead: None,
            lanes: LanePrediction {
                left_line: 1.75,
                right_line: 1.75,
            },
            desired_curvature: 0.0,
            path_centering: 0.0,
            ego_speed,
        }
    }

    /// Total path curvature the lateral controller should track:
    /// the planned road curvature plus the centering correction.
    #[must_use]
    pub fn path_curvature(&self) -> f64 {
        self.desired_curvature + self.path_centering
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lead_ttc() {
        let lead = LeadPrediction {
            distance: 40.0,
            closing_speed: 8.0,
            lead_speed: 13.0,
        };
        assert!((lead.ttc() - 5.0).abs() < 1e-12);
        let opening = LeadPrediction {
            closing_speed: -1.0,
            ..lead
        };
        assert!(opening.ttc().is_infinite());
    }

    #[test]
    fn lane_offsets() {
        let lanes = LanePrediction {
            left_line: 1.25,
            right_line: 2.25,
        };
        // Right line farther → vehicle is left of center.
        assert!((lanes.lateral_offset() - 0.5).abs() < 1e-12);
        assert!((lanes.lane_width() - 3.5).abs() < 1e-12);
        assert!((lanes.nearest_line() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn neutral_frame_is_centered() {
        let f = PerceptionFrame::neutral(20.0);
        assert!(f.lead.is_none());
        assert_eq!(f.lanes.lateral_offset(), 0.0);
        assert_eq!(f.desired_curvature, 0.0);
        assert_eq!(f.ego_speed, 20.0);
    }
}
