//! DNN-output-level perception emulator.
//!
//! OpenPilot's "supercombo" network predicts, from camera frames, the lead
//! vehicle's relative distance/speed, the lane line positions, and the
//! desired path curvature. The paper emulates adversarial patches by
//! perturbing those *outputs* directly ("we directly emulate the effect of
//! the patches by injecting attacks into the DNN output"), so this crate
//! reproduces the perception module at the same interface: ground truth in,
//! noisy DNN-style predictions out.
//!
//! Two documented OpenPilot failure modes are modelled because the paper's
//! results depend on them:
//!
//! * **close-range blindness** — the lead vehicle is no longer recognised at
//!   very short distances (Fig. 6: "once the ego vehicle gets within a
//!   certain range, such as 2 meters, OpenPilot is unable to detect the lead
//!   vehicle"), which makes the ego accelerate into the collision;
//! * **limited detection range** — leads beyond ~120 m are not reported.
//!
//! # Example
//!
//! ```
//! use adas_perception::{PerceptionConfig, PerceptionEmulator};
//! use adas_simulator::{DeterministicRng, RoadBuilder, World, WorldConfig, units};
//!
//! let road = RoadBuilder::straight_highway(2_000.0).build();
//! let mut world = World::new(WorldConfig::default(), road);
//! world.spawn_ego(0.0, units::mph(50.0));
//! let mut perception = PerceptionEmulator::new(
//!     PerceptionConfig::default(),
//!     DeterministicRng::from_seed(7),
//! );
//! let frame = perception.perceive(&world);
//! assert!(frame.lead.is_none()); // no traffic spawned
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emulator;
mod frame;

pub use emulator::{PerceptionConfig, PerceptionEmulator};
pub use frame::{LanePrediction, LeadPrediction, PerceptionFrame};
