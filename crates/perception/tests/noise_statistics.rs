//! Statistical tests of the perception emulator: noise magnitudes, bias,
//! and the detection envelope, measured over many frames.

use adas_perception::{PerceptionConfig, PerceptionEmulator};
use adas_simulator::{
    units::mph, DeterministicRng, Npc, NpcPlan, RoadBuilder, VehicleParams, World, WorldConfig,
};

fn world_with_lead(gap_centers: f64) -> World {
    let road = RoadBuilder::straight_highway(3000.0).build();
    let mut w = World::new(WorldConfig::default(), road);
    w.spawn_ego(0.0, mph(50.0));
    w.add_npc(Npc::new(
        VehicleParams::sedan(),
        gap_centers,
        0.0,
        mph(30.0),
        NpcPlan::cruise(),
    ));
    w
}

#[test]
fn distance_prediction_is_unbiased() {
    let w = world_with_lead(60.0);
    let true_rd = 60.0 - 4.9;
    let mut p = PerceptionEmulator::new(PerceptionConfig::default(), DeterministicRng::from_seed(8));
    let n = 5000;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..n {
        let rd = p.perceive(&w).lead.expect("in range").distance;
        sum += rd - true_rd;
        sum_sq += (rd - true_rd) * (rd - true_rd);
    }
    let mean = sum / n as f64;
    let std = (sum_sq / n as f64 - mean * mean).sqrt();
    assert!(mean.abs() < 0.02, "bias {mean}");
    // Configured: max(0.002·55.1, 0.02) ≈ 0.11 m.
    assert!((std - 0.11).abs() < 0.03, "std {std}");
}

#[test]
fn detection_envelope_edges() {
    let cfg = PerceptionConfig::default();
    // Just inside the blind range.
    let w_blind = world_with_lead(4.9 + cfg.blind_range - 0.1);
    let mut p = PerceptionEmulator::new(cfg, DeterministicRng::from_seed(1));
    assert!(p.perceive(&w_blind).lead.is_none());
    // Just outside the blind range.
    let w_visible = world_with_lead(4.9 + cfg.blind_range + 0.3);
    assert!(p.perceive(&w_visible).lead.is_some());
    // Just inside the max range.
    let w_far = world_with_lead(4.9 + cfg.max_range - 1.0);
    assert!(p.perceive(&w_far).lead.is_some());
    // Beyond the max range.
    let w_gone = world_with_lead(4.9 + cfg.max_range + 2.0);
    assert!(p.perceive(&w_gone).lead.is_none());
}

#[test]
fn lane_width_estimate_is_consistent() {
    let w = world_with_lead(300.0);
    let mut p = PerceptionEmulator::new(PerceptionConfig::default(), DeterministicRng::from_seed(2));
    let mut sum = 0.0;
    let n = 2000;
    for _ in 0..n {
        sum += p.perceive(&w).lanes.lane_width();
    }
    assert!((sum / n as f64 - 3.5).abs() < 0.01);
}

#[test]
fn path_centering_counteracts_offset_direction() {
    // Build a world, drive the ego slightly left of center, and check the
    // planner's centering correction points right (negative curvature).
    let road = RoadBuilder::straight_highway(3000.0).build();
    let mut w = World::new(WorldConfig::default(), road);
    w.spawn_ego(0.0, 20.0);
    // Nudge laterally by steering briefly.
    for _ in 0..120 {
        w.step(adas_simulator::VehicleCommand {
            gas: 0.1,
            brake: 0.0,
            steer: 0.06,
        });
    }
    assert!(w.ego().state().d > 0.05, "setup drift failed");
    let mut p = PerceptionEmulator::new(PerceptionConfig::default(), DeterministicRng::from_seed(5));
    // Average over frames to suppress noise.
    let mut sum = 0.0;
    for _ in 0..200 {
        sum += p.perceive(&w).path_centering;
    }
    assert!(sum / 200.0 < 0.0, "centering must push back right");
}

#[test]
fn centering_is_bounded_by_configured_limit() {
    let cfg = PerceptionConfig::default();
    let road = RoadBuilder::straight_highway(3000.0).build();
    let mut w = World::new(WorldConfig::default(), road);
    w.spawn_ego(0.0, 20.0);
    for _ in 0..400 {
        w.step(adas_simulator::VehicleCommand {
            gas: 0.1,
            brake: 0.0,
            steer: 0.08,
        });
    }
    let mut p = PerceptionEmulator::new(cfg, DeterministicRng::from_seed(6));
    for _ in 0..100 {
        let f = p.perceive(&w);
        assert!(f.path_centering.abs() <= cfg.centering_limit + 1e-12);
    }
}
