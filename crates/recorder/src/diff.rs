//! Step-by-step trace comparison with field-level divergence localisation.
//!
//! PR 1 made campaigns bit-identical across thread counts and cache paths,
//! so replay equality is *exact*: two floats either have the same bit
//! pattern or the traces have semantically diverged. Comparison therefore
//! uses `f64::to_bits` (which also makes NaN equal to itself — a recorded
//! "no lead" must match a replayed "no lead").

use crate::trace::Trace;
use adas_simulator::TraceSample;

/// Accessor for one scalar field of a step record.
pub type ScalarAccessor = fn(&TraceSample) -> f64;

/// Accessor for one boolean flag of a step record.
pub type FlagAccessor = fn(&TraceSample) -> bool;

/// The comparable scalar fields of a step record, in wire order. Each entry
/// is `(field name, accessor)`.
pub const SAMPLE_FIELDS: [(&str, ScalarAccessor); 13] = [
    ("time", |s| s.time),
    ("ego_s", |s| s.ego_s),
    ("ego_d", |s| s.ego_d),
    ("ego_v", |s| s.ego_v),
    ("ego_accel", |s| s.ego_accel),
    ("gas", |s| s.gas),
    ("brake", |s| s.brake),
    ("steer", |s| s.steer),
    ("true_rd", |s| s.true_rd),
    ("perceived_rd", |s| s.perceived_rd),
    ("lead_v", |s| s.lead_v),
    ("lane_line_distance", |s| s.lane_line_distance),
    ("ttc", |s| s.ttc),
];

/// The boolean flag fields of a step record.
pub const SAMPLE_FLAGS: [(&str, FlagAccessor); 6] = [
    ("fcw_alert", |s| s.fcw_alert),
    ("aeb_active", |s| s.aeb_active),
    ("driver_braking", |s| s.driver_braking),
    ("driver_steering", |s| s.driver_steering),
    ("ml_active", |s| s.ml_active),
    ("fault_active", |s| s.fault_active),
];

/// The first point at which two step streams disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Absolute step index (run-relative, accounting for ring offsets).
    pub step: u64,
    /// Simulation time at the divergent step, seconds.
    pub time: f64,
    /// Name of the first differing field (in wire order), or a structural
    /// pseudo-field like `sample_count`.
    pub field: &'static str,
    /// The recorded value, rendered.
    pub recorded: String,
    /// The replayed/other value, rendered.
    pub replayed: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at step {} (t = {:.2} s): field `{}` — recorded {} vs replayed {}",
            self.step, self.time, self.field, self.recorded, self.replayed
        )
    }
}

/// Verdict of a replay verification or a two-trace comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every retained step matched bit-for-bit (and the outcomes agree).
    Identical,
    /// The streams disagree, first at the contained point.
    Diverged(Divergence),
}

impl Verdict {
    /// True for [`Verdict::Identical`].
    #[must_use]
    pub fn is_identical(&self) -> bool {
        matches!(self, Verdict::Identical)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Identical => f.write_str("Identical"),
            Verdict::Diverged(d) => write!(f, "{d}"),
        }
    }
}

fn render(v: f64) -> String {
    if v.is_finite() {
        // Full round-trip precision: a divergence report must show the
        // exact values, not a rounded rendering that may look equal.
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN (absent)".to_owned()
    } else {
        format!("{v}")
    }
}

/// Compares one pair of step records; returns the first differing field.
#[must_use]
pub fn compare_samples(step: u64, recorded: &TraceSample, replayed: &TraceSample) -> Option<Divergence> {
    for (name, get) in SAMPLE_FIELDS {
        let a = get(recorded);
        let b = get(replayed);
        if a.to_bits() != b.to_bits() {
            return Some(Divergence {
                step,
                time: recorded.time,
                field: name,
                recorded: render(a),
                replayed: render(b),
            });
        }
    }
    for (name, get) in SAMPLE_FLAGS {
        let a = get(recorded);
        let b = get(replayed);
        if a != b {
            return Some(Divergence {
                step,
                time: recorded.time,
                field: name,
                recorded: a.to_string(),
                replayed: b.to_string(),
            });
        }
    }
    None
}

/// Compares two step streams. `offset` is the absolute step index of the
/// first element (non-zero when a ring-buffered recording only retained a
/// tail).
#[must_use]
pub fn compare_streams(recorded: &[TraceSample], replayed: &[TraceSample], offset: u64) -> Verdict {
    let n = recorded.len().min(replayed.len());
    for (i, (a, b)) in recorded.iter().zip(replayed.iter()).enumerate() {
        if let Some(d) = compare_samples(offset + i as u64, a, b) {
            return Verdict::Diverged(d);
        }
    }
    if recorded.len() != replayed.len() {
        let time = if recorded.len() > n {
            recorded[n].time
        } else {
            replayed[n].time
        };
        return Verdict::Diverged(Divergence {
            step: offset + n as u64,
            time,
            field: "sample_count",
            recorded: recorded.len().to_string(),
            replayed: replayed.len().to_string(),
        });
    }
    Verdict::Identical
}

/// Report of a full two-trace comparison: identity mismatches plus the
/// first step-level divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Human-readable header/identity mismatches (different run, different
    /// config fingerprint, …). A non-empty list means the step comparison
    /// below compares different experiments.
    pub header_mismatches: Vec<String>,
    /// Step-stream verdict.
    pub verdict: Verdict,
    /// Outcome disagreement, if any (rendered `recorded vs other`).
    pub outcome_mismatch: Option<String>,
}

impl DiffReport {
    /// True when identities, steps, and outcomes all matched.
    #[must_use]
    pub fn is_identical(&self) -> bool {
        self.header_mismatches.is_empty()
            && self.verdict.is_identical()
            && self.outcome_mismatch.is_none()
    }
}

/// Compares two traces completely: identity, step stream, and outcome.
///
/// Ring offsets are honoured: when the two traces retained different
/// windows of the same run, only the overlapping step range is compared.
#[must_use]
pub fn diff_traces(a: &Trace, b: &Trace) -> DiffReport {
    let mut header_mismatches = Vec::new();
    let ha = &a.header;
    let hb = &b.header;
    if (ha.scenario, ha.position, ha.repetition) != (hb.scenario, hb.position, hb.repetition) {
        header_mismatches.push(format!(
            "run identity: {} vs {}",
            a.identity(),
            b.identity()
        ));
    }
    if ha.fault != hb.fault {
        header_mismatches.push(format!("fault: {:?} vs {:?}", ha.fault, hb.fault));
    }
    if ha.campaign_seed != hb.campaign_seed {
        header_mismatches.push(format!(
            "campaign seed: {} vs {}",
            ha.campaign_seed, hb.campaign_seed
        ));
    }
    if ha.config_fingerprint != hb.config_fingerprint {
        header_mismatches.push(format!(
            "config fingerprint: {:016x} vs {:016x}",
            ha.config_fingerprint, hb.config_fingerprint
        ));
    }
    if ha.model_fingerprint != hb.model_fingerprint {
        header_mismatches.push(format!(
            "model fingerprint: {:016x} vs {:016x}",
            ha.model_fingerprint, hb.model_fingerprint
        ));
    }

    // Align the retained windows on absolute step index.
    let start = ha.first_step.max(hb.first_step);
    let skip_a = usize::try_from(start - ha.first_step).unwrap_or(usize::MAX);
    let skip_b = usize::try_from(start - hb.first_step).unwrap_or(usize::MAX);
    let verdict = if skip_a <= a.samples.len() && skip_b <= b.samples.len() {
        compare_streams(&a.samples[skip_a..], &b.samples[skip_b..], start)
    } else {
        Verdict::Diverged(Divergence {
            step: start,
            time: 0.0,
            field: "retained_window",
            recorded: format!("steps {}..", ha.first_step),
            replayed: format!("steps {}..", hb.first_step),
        })
    };

    let oa = &a.outcome;
    let ob = &b.outcome;
    let outcome_mismatch = if (oa.end, oa.accident, oa.steps) != (ob.end, ob.accident, ob.steps)
        || oa.accident_time.map(f64::to_bits) != ob.accident_time.map(f64::to_bits)
        || oa.min_ttc.to_bits() != ob.min_ttc.to_bits()
    {
        Some(format!("{oa:?} vs {ob:?}"))
    } else {
        None
    };

    DiffReport {
        header_mismatches,
        verdict,
        outcome_mismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: f64) -> TraceSample {
        TraceSample {
            time: t,
            ego_v: 20.0,
            lead_v: f64::NAN,
            ..TraceSample::default()
        }
    }

    #[test]
    fn identical_streams_are_identical() {
        let a = vec![s(0.0), s(0.01)];
        assert!(compare_streams(&a, &a.clone(), 0).is_identical());
    }

    #[test]
    fn nan_equals_nan() {
        let a = vec![s(0.0)];
        let b = vec![s(0.0)];
        assert!(compare_streams(&a, &b, 0).is_identical());
    }

    #[test]
    fn first_divergent_field_in_wire_order() {
        let a = vec![s(0.0), s(0.01), s(0.02)];
        let mut b = a.clone();
        b[1].ego_v += 1e-13; // tiny, but bit-different
        b[1].brake = 0.5; // later field also differs
        let Verdict::Diverged(d) = compare_streams(&a, &b, 100) else {
            panic!("expected divergence");
        };
        assert_eq!(d.step, 101);
        assert_eq!(d.field, "ego_v"); // ego_v precedes brake in wire order
        assert!((d.time - 0.01).abs() < 1e-12);
    }

    #[test]
    fn flag_divergence_detected() {
        let a = vec![s(0.0)];
        let mut b = a.clone();
        b[0].aeb_active = true;
        let Verdict::Diverged(d) = compare_streams(&a, &b, 0) else {
            panic!("expected divergence");
        };
        assert_eq!(d.field, "aeb_active");
        assert_eq!(d.recorded, "false");
    }

    #[test]
    fn length_mismatch_diverges_at_shorter_end() {
        let a = vec![s(0.0), s(0.01), s(0.02)];
        let b = vec![s(0.0), s(0.01)];
        let Verdict::Diverged(d) = compare_streams(&a, &b, 0) else {
            panic!("expected divergence");
        };
        assert_eq!(d.field, "sample_count");
        assert_eq!(d.step, 2);
    }
}
