//! Human-readable timeline rendering of a trace: fault onset → perception
//! error → intervention firings → outcome.

use crate::trace::{EndReason, Trace};
use adas_scenarios::AccidentKind;

fn fmt_val(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else if v.is_nan() {
        "—".to_owned()
    } else {
        "∞".to_owned()
    }
}

/// Renders a multi-line forensic summary of `trace`.
#[must_use]
pub fn explain(trace: &Trace) -> String {
    let mut out = String::new();
    let h = &trace.header;
    out.push_str(&format!("run       {}\n", trace.identity()));
    out.push_str(&format!(
        "config    fingerprint {:016x} · friction {} · interventions: driver={} (rt {:.1} s), check={}, aebs={:?}, ml={}\n",
        h.config_fingerprint,
        h.friction,
        h.interventions.driver,
        h.interventions.driver_reaction_time,
        h.interventions.safety_check,
        h.interventions.aebs,
        h.interventions.ml,
    ));
    if h.model_fingerprint != 0 {
        out.push_str(&format!("model     fingerprint {:016x}\n", h.model_fingerprint));
    }
    out.push_str(&format!(
        "recorded  {} steps retained (from step {}), {} events\n",
        trace.samples.len(),
        h.first_step,
        trace.events.len()
    ));
    out.push_str("\ntimeline\n");
    if trace.events.is_empty() {
        out.push_str("  (no discrete events — benign, intervention-free run)\n");
    }
    for e in &trace.events {
        out.push_str(&format!(
            "  t = {:7.2} s  {:<28} (context {})\n",
            e.time,
            e.kind.label(),
            fmt_val(e.value)
        ));
    }

    // Perception-error context: the worst recorded disagreement between
    // ground truth and perceived relative distance, ignoring steps where
    // either side legitimately reports "no lead".
    let worst = trace
        .samples
        .iter()
        .filter(|s| s.true_rd.is_finite() && s.perceived_rd.is_finite())
        .map(|s| (s.time, (s.perceived_rd - s.true_rd).abs()))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    if let Some((t, err)) = worst {
        if err > 0.5 {
            out.push_str(&format!(
                "\nperception  worst RD error {err:.1} m at t = {t:.2} s\n"
            ));
        }
    }

    let o = &trace.outcome;
    out.push_str("\noutcome\n");
    out.push_str(&format!(
        "  end: {} after {} steps\n",
        o.end.label(),
        o.steps
    ));
    if let (Some(kind), Some(t)) = (o.accident, o.accident_time) {
        let label = match kind {
            AccidentKind::ForwardCollision => "A1 forward collision",
            AccidentKind::LaneViolation => "A2 lane violation",
        };
        out.push_str(&format!("  accident: {label} at t = {t:.2} s\n"));
    }
    if let Some(f) = o.fault_start {
        out.push_str(&format!("  fault first active: t = {f:.2} s\n"));
        if let Some(t) = o.accident_time {
            out.push_str(&format!("  fault → accident: {:.2} s\n", t - f));
        }
    }
    out.push_str(&format!(
        "  min TTC {} s · min lane-line distance {} m\n",
        fmt_val(o.min_ttc),
        fmt_val(o.min_lane_line_distance)
    ));
    if o.end != EndReason::Accident && o.accident.is_none() {
        out.push_str("  accident prevented\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, InterventionSummary, TraceEvent, TraceHeader, TraceOutcome};
    use adas_attack::FaultType;
    use adas_safety::{AebsMode, InterventionKind};
    use adas_scenarios::{InitialPosition, ScenarioId};
    use adas_simulator::TraceSample;

    #[test]
    fn explain_mentions_fault_interventions_and_outcome() {
        let trace = Trace {
            header: TraceHeader {
                scenario: ScenarioId::S1,
                position: InitialPosition::Near,
                repetition: 0,
                fault: Some(FaultType::RelativeDistance),
                campaign_seed: 2025,
                config_fingerprint: 1,
                model_fingerprint: 0,
                interventions: InterventionSummary {
                    driver: true,
                    driver_reaction_time: 2.5,
                    safety_check: true,
                    aebs: AebsMode::Independent,
                    ml: false,
                    mitigation: 0,
                    views: 0,
                },
                friction: adas_simulator::FrictionCondition::Default,
                max_steps: 10_000,
                quiescence_steps: 300,
                first_step: 0,
                attack: adas_attack::AttackScheduler::Immediate,
            },
            samples: vec![TraceSample {
                time: 10.0,
                true_rd: 40.0,
                perceived_rd: 78.0,
                ..TraceSample::default()
            }],
            events: vec![
                TraceEvent {
                    time: 10.0,
                    kind: EventKind::FaultOn,
                    value: 78.0,
                },
                TraceEvent {
                    time: 12.5,
                    kind: EventKind::InterventionOn(InterventionKind::Aeb),
                    value: 1.9,
                },
            ],
            outcome: TraceOutcome {
                end: EndReason::Quiescent,
                accident: None,
                accident_time: None,
                fault_start: Some(10.0),
                min_ttc: 1.4,
                min_lane_line_distance: 0.8,
                steps: 2500,
            },
        };
        let text = explain(&trace);
        assert!(text.contains("fault injection ON"), "{text}");
        assert!(text.contains("AEB braking ON"), "{text}");
        assert!(text.contains("worst RD error 38.0 m"), "{text}");
        assert!(text.contains("accident prevented"), "{text}");
        assert!(text.contains("quiescent"), "{text}");
    }
}
