//! The on-disk trace format: primitives, header codec, and checksum.
//!
//! A trace file is a single little-endian binary blob:
//!
//! ```text
//! magic "ADASTRC" + schema version (8 bytes)
//! header          (run identity, config/model fingerprints, record mode)
//! n_samples × fixed-width step records (13 × f64 + 1 flag byte)
//! n_events  × event records            (f64 time + kind byte + f64 value)
//! outcome footer  (end reason, accident, summary metrics)
//! FNV-1a checksum over everything above (8 bytes)
//! ```
//!
//! Every enum is encoded through an explicit stable wire code — never
//! through `as`-casts of Rust discriminants — so reordering a Rust enum can
//! not silently change the format. Decoding is total: any structural
//! mismatch returns a [`TraceError`] instead of panicking, so a damaged
//! trace file can never take down a harness.

use adas_attack::FaultType;
use adas_safety::AebsMode;
use adas_scenarios::{AccidentKind, InitialPosition, ScenarioId};
use adas_simulator::{FrictionCondition, TraceSample};

/// Magic prefix + schema version byte. Bump the last byte on any layout
/// change; old files then fail with [`TraceError::BadMagic`] instead of
/// decoding to garbage.
pub const TRACE_MAGIC: &[u8; 8] = b"ADASTRC\x01";

/// Version-2 magic: identical layout to v1 plus an attack-scheduler block
/// right after the magic. The writer emits v2 **only** when the scheduler
/// deviates from the immediate default, so every legacy run — and its
/// content address — keeps its exact v1 bytes; the reader accepts both.
pub const TRACE_MAGIC_V2: &[u8; 8] = b"ADASTRC\x02";

/// FNV-1a offset basis (shared constant of the workspace's fingerprinting).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a checksum over the serialised trace bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u64);

impl Checksum {
    /// A fresh checksum.
    #[must_use]
    pub const fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The current 64-bit value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The magic/version prefix did not match [`TRACE_MAGIC`].
    BadMagic,
    /// The blob ended before the declared structure did.
    Truncated {
        /// Byte offset at which more data was expected.
        at: usize,
        /// How many more bytes were needed.
        needed: usize,
    },
    /// An enum wire code was out of range.
    BadCode {
        /// Which field carried the bad code.
        field: &'static str,
        /// The offending value.
        code: u8,
    },
    /// The stored checksum did not match the recomputed one (bit rot,
    /// truncation at a record boundary, or a tampered file).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// Trailing bytes after the checksum.
    TrailingBytes(usize),
    /// The file could not be read at all.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace file (bad magic/version)"),
            TraceError::Truncated { at, needed } => {
                write!(f, "truncated trace: needed {needed} more bytes at offset {at}")
            }
            TraceError::BadCode { field, code } => {
                write!(f, "invalid wire code {code} for {field}")
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            TraceError::TrailingBytes(n) => write!(f, "{n} trailing bytes after checksum"),
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Little-endian byte writer (plain `Vec` sugar, kept symmetrical with
/// [`Cursor`]).
#[derive(Debug, Default)]
pub struct ByteSink {
    buf: Vec<u8>,
}

impl ByteSink {
    /// A sink with preallocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (NaN round-trips exactly).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends an optional time as tag byte + `f64`.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        self.u8(u8::from(v.is_some()));
        self.f64(v.unwrap_or(0.0));
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current offset.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(TraceError::Truncated {
                at: self.pos,
                needed: n - self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, TraceError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional value written by [`ByteSink::opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, TraceError> {
        let tag = self.u8()?;
        let v = self.f64()?;
        Ok((tag != 0).then_some(v))
    }
}

// ---------------------------------------------------------------------------
// Stable wire codes for the workspace enums the header references.
// ---------------------------------------------------------------------------

/// Encodes a fault type (`None` = benign run).
#[must_use]
pub fn fault_code(fault: Option<FaultType>) -> u8 {
    match fault {
        None => 0,
        Some(FaultType::RelativeDistance) => 1,
        Some(FaultType::DesiredCurvature) => 2,
        Some(FaultType::Mixed) => 3,
    }
}

/// Decodes [`fault_code`].
pub fn fault_from_code(code: u8) -> Result<Option<FaultType>, TraceError> {
    match code {
        0 => Ok(None),
        1 => Ok(Some(FaultType::RelativeDistance)),
        2 => Ok(Some(FaultType::DesiredCurvature)),
        3 => Ok(Some(FaultType::Mixed)),
        _ => Err(TraceError::BadCode {
            field: "fault_type",
            code,
        }),
    }
}

/// Encodes a scenario id.
#[must_use]
pub fn scenario_code(id: ScenarioId) -> u8 {
    u8::try_from(id.index()).expect("six scenarios")
}

/// Decodes [`scenario_code`].
pub fn scenario_from_code(code: u8) -> Result<ScenarioId, TraceError> {
    ScenarioId::ALL
        .get(usize::from(code))
        .copied()
        .ok_or(TraceError::BadCode {
            field: "scenario",
            code,
        })
}

/// Encodes an initial position.
#[must_use]
pub fn position_code(p: InitialPosition) -> u8 {
    u8::try_from(p.index()).expect("two positions")
}

/// Decodes [`position_code`].
pub fn position_from_code(code: u8) -> Result<InitialPosition, TraceError> {
    InitialPosition::ALL
        .get(usize::from(code))
        .copied()
        .ok_or(TraceError::BadCode {
            field: "position",
            code,
        })
}

/// Encodes an AEBS mode.
#[must_use]
pub fn aebs_code(mode: AebsMode) -> u8 {
    match mode {
        AebsMode::Disabled => 0,
        AebsMode::Compromised => 1,
        AebsMode::Independent => 2,
    }
}

/// Decodes [`aebs_code`].
pub fn aebs_from_code(code: u8) -> Result<AebsMode, TraceError> {
    match code {
        0 => Ok(AebsMode::Disabled),
        1 => Ok(AebsMode::Compromised),
        2 => Ok(AebsMode::Independent),
        _ => Err(TraceError::BadCode {
            field: "aebs_mode",
            code,
        }),
    }
}

/// Encodes a friction condition (code + custom scale payload).
#[must_use]
pub fn friction_code(f: FrictionCondition) -> (u8, f64) {
    match f {
        FrictionCondition::Default => (0, 0.0),
        FrictionCondition::Off25 => (1, 0.0),
        FrictionCondition::Off50 => (2, 0.0),
        FrictionCondition::Off75 => (3, 0.0),
        FrictionCondition::Custom(s) => (4, s),
    }
}

/// Decodes [`friction_code`].
pub fn friction_from_code(code: u8, custom: f64) -> Result<FrictionCondition, TraceError> {
    match code {
        0 => Ok(FrictionCondition::Default),
        1 => Ok(FrictionCondition::Off25),
        2 => Ok(FrictionCondition::Off50),
        3 => Ok(FrictionCondition::Off75),
        4 => Ok(FrictionCondition::Custom(custom)),
        _ => Err(TraceError::BadCode {
            field: "friction",
            code,
        }),
    }
}

/// Encodes an accident kind (`None` = no accident).
#[must_use]
pub fn accident_code(kind: Option<AccidentKind>) -> u8 {
    match kind {
        None => 0,
        Some(AccidentKind::ForwardCollision) => 1,
        Some(AccidentKind::LaneViolation) => 2,
    }
}

/// Decodes [`accident_code`].
pub fn accident_from_code(code: u8) -> Result<Option<AccidentKind>, TraceError> {
    match code {
        0 => Ok(None),
        1 => Ok(Some(AccidentKind::ForwardCollision)),
        2 => Ok(Some(AccidentKind::LaneViolation)),
        _ => Err(TraceError::BadCode {
            field: "accident",
            code,
        }),
    }
}

// ---------------------------------------------------------------------------
// Step-record codec.
// ---------------------------------------------------------------------------

/// Serialised size of one step record, bytes: 13 `f64` fields + 1 flag byte.
pub const SAMPLE_WIRE_SIZE: usize = 13 * 8 + 1;

/// Encodes one [`TraceSample`] as a fixed-width record.
pub fn encode_sample(sink: &mut ByteSink, s: &TraceSample) {
    for v in [
        s.time,
        s.ego_s,
        s.ego_d,
        s.ego_v,
        s.ego_accel,
        s.gas,
        s.brake,
        s.steer,
        s.true_rd,
        s.perceived_rd,
        s.lead_v,
        s.lane_line_distance,
        s.ttc,
    ] {
        sink.f64(v);
    }
    let mut flags = 0u8;
    for (bit, on) in [
        s.fcw_alert,
        s.aeb_active,
        s.driver_braking,
        s.driver_steering,
        s.ml_active,
        s.fault_active,
    ]
    .into_iter()
    .enumerate()
    {
        if on {
            flags |= 1 << bit;
        }
    }
    sink.u8(flags);
}

/// Decodes one step record.
pub fn decode_sample(cur: &mut Cursor<'_>) -> Result<TraceSample, TraceError> {
    let mut f = || cur.f64();
    let time = f()?;
    let ego_s = f()?;
    let ego_d = f()?;
    let ego_v = f()?;
    let ego_accel = f()?;
    let gas = f()?;
    let brake = f()?;
    let steer = f()?;
    let true_rd = f()?;
    let perceived_rd = f()?;
    let lead_v = f()?;
    let lane_line_distance = f()?;
    let ttc = f()?;
    let flags = cur.u8()?;
    if flags & !0b11_1111 != 0 {
        return Err(TraceError::BadCode {
            field: "sample_flags",
            code: flags,
        });
    }
    Ok(TraceSample {
        time,
        ego_s,
        ego_d,
        ego_v,
        ego_accel,
        gas,
        brake,
        steer,
        true_rd,
        perceived_rd,
        lead_v,
        lane_line_distance,
        ttc,
        fcw_alert: flags & 1 != 0,
        aeb_active: flags & 2 != 0,
        driver_braking: flags & 4 != 0,
        driver_steering: flags & 8 != 0,
        ml_active: flags & 16 != 0,
        fault_active: flags & 32 != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_matches_fnv_reference() {
        let mut c = Checksum::new();
        c.update(b"adas");
        let mut reference = FNV_OFFSET;
        for &b in b"adas" {
            reference = (reference ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(c.value(), reference);
    }

    #[test]
    fn sample_round_trip_preserves_nan_bits() {
        let s = TraceSample {
            time: 1.23,
            lead_v: f64::NAN,
            true_rd: f64::INFINITY,
            aeb_active: true,
            fault_active: true,
            ..TraceSample::default()
        };
        let mut sink = ByteSink::default();
        encode_sample(&mut sink, &s);
        let bytes = sink.into_bytes();
        assert_eq!(bytes.len(), SAMPLE_WIRE_SIZE);
        let mut cur = Cursor::new(&bytes);
        let d = decode_sample(&mut cur).unwrap();
        assert_eq!(d.time.to_bits(), s.time.to_bits());
        assert_eq!(d.lead_v.to_bits(), s.lead_v.to_bits());
        assert!(d.true_rd.is_infinite());
        assert!(d.aeb_active && d.fault_active && !d.ml_active);
    }

    #[test]
    fn truncated_sample_is_an_error_not_a_panic() {
        let mut sink = ByteSink::default();
        encode_sample(&mut sink, &TraceSample::default());
        let bytes = sink.into_bytes();
        let mut cur = Cursor::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(
            decode_sample(&mut cur),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn enum_codes_round_trip() {
        for fault in [None, Some(FaultType::RelativeDistance), Some(FaultType::Mixed)] {
            assert_eq!(fault_from_code(fault_code(fault)).unwrap(), fault);
        }
        assert!(fault_from_code(200).is_err());
        for id in ScenarioId::ALL {
            assert_eq!(scenario_from_code(scenario_code(id)).unwrap(), id);
        }
        for p in InitialPosition::ALL {
            assert_eq!(position_from_code(position_code(p)).unwrap(), p);
        }
        for m in [AebsMode::Disabled, AebsMode::Compromised, AebsMode::Independent] {
            assert_eq!(aebs_from_code(aebs_code(m)).unwrap(), m);
        }
        let (c, s) = friction_code(FrictionCondition::Custom(0.4));
        assert_eq!(
            friction_from_code(c, s).unwrap(),
            FrictionCondition::Custom(0.4)
        );
        for a in [None, Some(AccidentKind::ForwardCollision), Some(AccidentKind::LaneViolation)] {
            assert_eq!(accident_from_code(accident_code(a)).unwrap(), a);
        }
    }

    #[test]
    fn invalid_flag_bits_rejected() {
        let mut sink = ByteSink::default();
        encode_sample(&mut sink, &TraceSample::default());
        let mut bytes = sink.into_bytes();
        *bytes.last_mut().unwrap() = 0x80;
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            decode_sample(&mut cur),
            Err(TraceError::BadCode { field: "sample_flags", .. })
        ));
    }
}
