//! Flight recorder for the ADAS reproduction: deterministic trace capture,
//! replay verification, and divergence diagnosis.
//!
//! PR 1 made campaigns bit-identical across thread counts, which turns a
//! recorded run into an executable specification: re-running the same
//! [`RunId`](adas_scenarios::ScenarioId)/fault/seed triple must reproduce
//! every step bit-for-bit. This crate provides the data layer of that
//! capability:
//!
//! * [`trace`] — the compact binary trace format (`ADASTRC\x01`): header
//!   with run identity, config/model fingerprints, and seed; fixed-width
//!   step records; discrete intervention/fault events; outcome footer; and
//!   a trailing FNV-1a checksum over the whole file.
//! * [`writer`] — the online [`TraceWriter`] that accumulates step samples,
//!   derives events from flag edges, and supports a bounded ring mode.
//! * [`diff`] — bit-exact step comparison localising the first divergent
//!   step and field between a recorded and a replayed run.
//! * [`explain`] — human-readable timeline rendering for `adas-replay
//!   explain`.
//! * [`policy`] — the campaign persistence policy (`ADAS_TRACE`,
//!   `ADAS_TRACE_DIR`, `ADAS_TRACE_RING`): keep full traces only for
//!   hazardous or near-miss runs, content-addressed like the PR 1 cache.
//!
//! The replay executor itself lives in `adas_core::replay` (it needs the
//! platform); this crate stays a pure data/format layer so every crate can
//! depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod explain;
pub mod format;
pub mod policy;
pub mod trace;
pub mod writer;

pub use diff::{diff_traces, DiffReport, Divergence, Verdict};
pub use explain::explain;
pub use format::TraceError;
pub use policy::{TraceMode, TracePolicy};
pub use trace::{
    EndReason, EventKind, InterventionSummary, Trace, TraceEvent, TraceHeader, TraceOutcome,
};
pub use writer::{RecordMode, TraceWriter};
