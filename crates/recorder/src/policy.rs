//! Trace persistence policy: which runs of a campaign deserve a full
//! flight-recorder trace on disk, and where those traces live.
//!
//! Recording every run of a `table_vi` campaign would write tens of
//! thousands of multi-megabyte files, so the campaign executor asks this
//! policy after each run completes: benign, uneventful runs are discarded,
//! hazardous and near-miss runs are persisted content-addressed under
//! `results/traces/` (same scheme as the PR 1 artifact cache).

use crate::writer::RecordMode;
use adas_scenarios::RunRecord;
use std::path::PathBuf;

/// Near-miss TTC threshold, seconds: a run whose minimum ground-truth TTC
/// dips below this is persisted even when no formal hazard was flagged.
pub const NEAR_MISS_TTC_S: f64 = 2.0;

/// Near-miss lane threshold, metres: minimum edge-to-lane-line distance
/// below which a run counts as a lateral near-miss.
pub const NEAR_MISS_LANE_M: f64 = 0.3;

/// Which runs get their traces persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing (default; zero overhead).
    Off,
    /// Record every run, persist only hazardous / near-miss runs.
    Hazard,
    /// Record and persist every run (forensics / golden-trace capture).
    All,
}

/// Campaign-level trace policy resolved from the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePolicy {
    /// Persistence mode.
    pub mode: TraceMode,
    /// Directory traces are saved into.
    pub dir: PathBuf,
    /// Step-retention mode for each run's writer.
    pub record_mode: RecordMode,
}

impl Default for TracePolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TracePolicy {
    /// A policy that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            mode: TraceMode::Off,
            dir: PathBuf::from("results/traces"),
            record_mode: RecordMode::Full,
        }
    }

    /// Resolves the policy from the environment (via the shared hardened
    /// parser in [`adas_parallel::env`] — values are trimmed, and empty or
    /// unrecognised settings warn and fall back to the default instead of
    /// being silently reinterpreted):
    ///
    /// * `ADAS_TRACE` — `off`/`0`/`false`/`no` (default) disables tracing;
    ///   `hazard`/`1`/`on`/`true`/`yes` records everything but persists
    ///   only hazardous or near-miss runs; `all`/`full`/`2` persists every
    ///   run.
    /// * `ADAS_TRACE_DIR` — target directory (default `results/traces`).
    /// * `ADAS_TRACE_RING` — retain only the most recent N steps per run
    ///   (default: full retention; 0 is rejected).
    #[must_use]
    pub fn from_env() -> Self {
        let mode = match adas_parallel::env::raw("ADAS_TRACE") {
            None => TraceMode::Off,
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "off" | "0" | "false" | "no" => TraceMode::Off,
                "hazard" | "1" | "on" | "true" | "yes" => TraceMode::Hazard,
                "all" | "full" | "2" => TraceMode::All,
                _ => {
                    eprintln!(
                        "[env] ignoring ADAS_TRACE={v:?}: expected off/hazard/all"
                    );
                    TraceMode::Off
                }
            },
        };
        let dir = adas_parallel::env::path_or("ADAS_TRACE_DIR", "results/traces");
        let record_mode = adas_parallel::env::parse::<usize>(
            "ADAS_TRACE_RING",
            "a step count ≥ 1",
        )
        .filter(|&n| {
            if n == 0 {
                eprintln!("[env] ignoring ADAS_TRACE_RING=0: expected a step count ≥ 1");
            }
            n > 0
        })
        .map_or(RecordMode::Full, RecordMode::Ring);
        Self {
            mode,
            dir,
            record_mode,
        }
    }

    /// True when runs should be recorded at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// Decides, after a run completed, whether its trace goes to disk.
    #[must_use]
    pub fn should_persist(&self, record: &RunRecord) -> bool {
        match self.mode {
            TraceMode::Off => false,
            TraceMode::All => true,
            TraceMode::Hazard => is_noteworthy(record),
        }
    }
}

/// A run is noteworthy when it was hazardous, ended in an accident, or came
/// close enough to one (longitudinal or lateral near-miss) that a forensic
/// replay could be wanted later.
#[must_use]
pub fn is_noteworthy(record: &RunRecord) -> bool {
    record.hazard()
        || record.accident.is_some()
        || record.min_ttc < NEAR_MISS_TTC_S
        || record.min_lane_line_distance < NEAR_MISS_LANE_M
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_scenarios::AccidentKind;

    fn benign() -> RunRecord {
        RunRecord {
            min_ttc: 8.0,
            min_lane_line_distance: 0.9,
            ..RunRecord::default()
        }
    }

    #[test]
    fn benign_run_not_noteworthy() {
        assert!(!is_noteworthy(&benign()));
    }

    #[test]
    fn hazard_accident_and_near_misses_are_noteworthy() {
        let mut r = benign();
        r.h1_time = Some(10.0);
        assert!(is_noteworthy(&r));

        let mut r = benign();
        r.accident = Some(AccidentKind::LaneViolation);
        assert!(is_noteworthy(&r));

        let mut r = benign();
        r.min_ttc = 1.5;
        assert!(is_noteworthy(&r));

        let mut r = benign();
        r.min_lane_line_distance = 0.1;
        assert!(is_noteworthy(&r));
    }

    #[test]
    fn nan_lane_distance_is_not_a_near_miss() {
        // min_lane_line_distance defaults to NaN when never measured;
        // NaN < threshold is false, so the run is not spuriously persisted.
        let mut r = benign();
        r.min_lane_line_distance = f64::NAN;
        assert!(!is_noteworthy(&r));
    }

    #[test]
    fn mode_gates_persistence() {
        let mut hazard_run = benign();
        hazard_run.h2_time = Some(5.0);

        let mut p = TracePolicy::disabled();
        assert!(!p.enabled());
        assert!(!p.should_persist(&hazard_run));

        p.mode = TraceMode::Hazard;
        assert!(p.enabled());
        assert!(p.should_persist(&hazard_run));
        assert!(!p.should_persist(&benign()));

        p.mode = TraceMode::All;
        assert!(p.should_persist(&benign()));
    }
}
