//! The in-memory trace and its file codec.

use crate::format::{
    accident_code, accident_from_code, aebs_code, aebs_from_code, decode_sample, encode_sample,
    fault_code, fault_from_code, friction_code, friction_from_code, position_code,
    position_from_code, scenario_code, scenario_from_code, ByteSink, Checksum, Cursor, TraceError,
    SAMPLE_WIRE_SIZE, TRACE_MAGIC, TRACE_MAGIC_V2,
};
use adas_attack::{AttackScheduler, ContextTrigger, FaultType};
use adas_safety::{AebsMode, InterventionKind};
use adas_scenarios::{AccidentKind, InitialPosition, ScenarioId};
use adas_simulator::TraceSample;
use std::path::{Path, PathBuf};

/// Which safety interventions were active for the recorded run — the
/// replay-relevant projection of the platform's intervention configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterventionSummary {
    /// Human-driver reaction simulator enabled.
    pub driver: bool,
    /// Driver reaction time, seconds.
    pub driver_reaction_time: f64,
    /// Firmware safety checking enabled.
    pub safety_check: bool,
    /// AEBS data-source configuration.
    pub aebs: AebsMode,
    /// ML mitigation enabled.
    pub ml: bool,
    /// Mitigation-strategy wire code when [`Self::ml`] is set (0 = CUSUM
    /// baseline, 1 = uncertainty ensemble, 2 = masked-view check). Kept as
    /// a raw code so the recorder stays decoupled from `adas-ml`.
    pub mitigation: u8,
    /// Configured view count M for the view-based strategies (0 = strategy
    /// default). Always 0 for the CUSUM baseline.
    pub views: u8,
}

/// Everything needed to re-execute the recorded run and to verify the
/// reconstruction matches what actually ran.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Driving scenario.
    pub scenario: ScenarioId,
    /// Initial position / road pairing.
    pub position: InitialPosition,
    /// Repetition index within the campaign sweep.
    pub repetition: u32,
    /// Injected fault type (`None` for benign runs).
    pub fault: Option<FaultType>,
    /// Campaign seed the run's RNG streams derive from.
    pub campaign_seed: u64,
    /// Fingerprint of the full `PlatformConfig` the run executed under.
    /// Replay reconstructs the config from the fields below plus defaults
    /// and refuses to run if the fingerprints disagree.
    pub config_fingerprint: u64,
    /// Fingerprint of the trained ML model's weights (0 when the run used
    /// no model). Replay must be given a model with the same fingerprint.
    pub model_fingerprint: u64,
    /// Active interventions.
    pub interventions: InterventionSummary,
    /// Road-surface friction condition.
    pub friction: adas_simulator::FrictionCondition,
    /// Configured step limit.
    pub max_steps: u64,
    /// Configured quiescence early-stop threshold (steps; 0 = disabled).
    pub quiescence_steps: u64,
    /// Step index of the first retained sample (> 0 when a bounded ring
    /// buffer dropped the beginning of a long run).
    pub first_step: u64,
    /// Attack-scheduling policy the run executed under. Immediate (the
    /// default) serialises as a v1 file, byte-identical to pre-scheduler
    /// recordings; a context policy switches the file to the v2 magic.
    pub attack: AttackScheduler,
}

/// A discrete event derived from the step stream: an intervention or fault
/// channel switching on or off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time, seconds.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
    /// Context value at the moment of the event (TTC for longitudinal
    /// events, lane-line distance for lateral ones, 0 otherwise).
    pub value: f64,
}

/// Event vocabulary: each intervention/fault channel has an on and an off
/// edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Fault injection started perturbing frames.
    FaultOn,
    /// Fault injection stopped.
    FaultOff,
    /// An intervention channel engaged.
    InterventionOn(InterventionKind),
    /// An intervention channel released.
    InterventionOff(InterventionKind),
}

impl EventKind {
    /// Stable wire code. Faults use 0/1; interventions use
    /// `2 + 2·kind + off`.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            EventKind::FaultOn => 0,
            EventKind::FaultOff => 1,
            EventKind::InterventionOn(k) => 2 + 2 * k.code(),
            EventKind::InterventionOff(k) => 3 + 2 * k.code(),
        }
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(code: u8) -> Result<Self, TraceError> {
        match code {
            0 => Ok(EventKind::FaultOn),
            1 => Ok(EventKind::FaultOff),
            _ => {
                let kind = InterventionKind::from_code((code - 2) / 2).ok_or(
                    TraceError::BadCode {
                        field: "event_kind",
                        code,
                    },
                )?;
                Ok(if (code - 2).is_multiple_of(2) {
                    EventKind::InterventionOn(kind)
                } else {
                    EventKind::InterventionOff(kind)
                })
            }
        }
    }

    /// Human-readable label for timelines.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            EventKind::FaultOn => "fault injection ON".to_owned(),
            EventKind::FaultOff => "fault injection off".to_owned(),
            EventKind::InterventionOn(k) => format!("{} ON", k.label()),
            EventKind::InterventionOff(k) => format!("{} off", k.label()),
        }
    }
}

/// How the recorded run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// Ran the full configured number of steps.
    TimeLimit,
    /// An accident latched.
    Accident,
    /// The ego came to a lasting stop.
    Quiescent,
}

impl EndReason {
    /// Stable wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            EndReason::TimeLimit => 0,
            EndReason::Accident => 1,
            EndReason::Quiescent => 2,
        }
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(code: u8) -> Result<Self, TraceError> {
        match code {
            0 => Ok(EndReason::TimeLimit),
            1 => Ok(EndReason::Accident),
            2 => Ok(EndReason::Quiescent),
            _ => Err(TraceError::BadCode {
                field: "end_reason",
                code,
            }),
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EndReason::TimeLimit => "time limit",
            EndReason::Accident => "accident",
            EndReason::Quiescent => "quiescent (lasting stop)",
        }
    }
}

/// Outcome footer: how the run ended plus the summary metrics `explain`
/// and the persistence policy care about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOutcome {
    /// Why the run ended.
    pub end: EndReason,
    /// Accident kind, if one ended the run.
    pub accident: Option<AccidentKind>,
    /// Accident time, seconds.
    pub accident_time: Option<f64>,
    /// First fault activation time, seconds.
    pub fault_start: Option<f64>,
    /// Minimum ground-truth TTC over the run, seconds.
    pub min_ttc: f64,
    /// Minimum edge-to-lane-line distance, metres.
    pub min_lane_line_distance: f64,
    /// Steps executed.
    pub steps: u64,
}

/// A complete flight-recorder trace: identity, step records, derived
/// events, and the outcome footer.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run identity and replay parameters.
    pub header: TraceHeader,
    /// Retained step records (all of them, or the tail in ring mode).
    pub samples: Vec<TraceSample>,
    /// Discrete events in time order (always complete, even in ring mode).
    pub events: Vec<TraceEvent>,
    /// Outcome footer.
    pub outcome: TraceOutcome,
}

/// Atomically writes `bytes` to `path` (temp file in the same directory +
/// rename; parent directories created on demand).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), TraceError> {
    let dir = path
        .parent()
        .ok_or_else(|| TraceError::Io(format!("no parent directory for {}", path.display())))?;
    std::fs::create_dir_all(dir).map_err(|e| TraceError::Io(e.to_string()))?;
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        path.file_name()
            .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
        std::process::id()
    ));
    // fsync before the rename: a crash right after the rename must never
    // leave a durable *name* pointing at torn *contents* (a long-lived
    // `adas-serve` process would otherwise re-trip on the bad entry at
    // every warm start until someone deletes it by hand).
    let write_synced = |tmp: &Path| -> std::io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::File::create(tmp)?;
        file.write_all(bytes)?;
        file.sync_all()
    };
    let result = write_synced(&tmp).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(TraceError::Io(format!("{}: {e}", path.display())));
    }
    Ok(())
}

impl Trace {
    /// Serialises the trace (header, samples, events, outcome, checksum).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.serialise().0
    }

    /// Serialises once and also returns the whole-file FNV checksum (the
    /// content address). [`save_in`] uses this to serialise and checksum a
    /// trace exactly once per persist instead of once for the file name and
    /// again for the file body.
    ///
    /// [`save_in`]: Trace::save_in
    fn serialise(&self) -> (Vec<u8>, u64) {
        let cap = TRACE_MAGIC.len()
            + 128
            + self.samples.len() * SAMPLE_WIRE_SIZE
            + self.events.len() * 17
            + 64;
        let mut sink = ByteSink::with_capacity(cap);
        match self.header.attack {
            AttackScheduler::Immediate => sink.bytes(TRACE_MAGIC),
            AttackScheduler::Context(t) => {
                sink.bytes(TRACE_MAGIC_V2);
                sink.opt_f64(t.ttc_below);
                sink.opt_f64(t.lane_excursion_above);
                sink.opt_f64(t.curvature_above);
                sink.f64(t.arm_after);
            }
        }

        // Header.
        let h = &self.header;
        sink.u8(scenario_code(h.scenario));
        sink.u8(position_code(h.position));
        sink.u32(h.repetition);
        sink.u8(fault_code(h.fault));
        sink.u64(h.campaign_seed);
        sink.u64(h.config_fingerprint);
        sink.u64(h.model_fingerprint);
        sink.u8(u8::from(h.interventions.driver));
        sink.f64(h.interventions.driver_reaction_time);
        sink.u8(u8::from(h.interventions.safety_check));
        sink.u8(aebs_code(h.interventions.aebs));
        // Packed ML byte: 0 = ml off; else bits 0-1 carry 1 + strategy
        // code and bits 2-7 the view count. The historic plain-bool
        // encoding (byte 1 = CUSUM, views 0) decodes unchanged.
        sink.u8(if h.interventions.ml {
            1 + (h.interventions.mitigation & 0b11) + (h.interventions.views << 2)
        } else {
            0
        });
        let (fc, fs) = friction_code(h.friction);
        sink.u8(fc);
        sink.f64(fs);
        sink.u64(h.max_steps);
        sink.u64(h.quiescence_steps);
        sink.u64(h.first_step);
        sink.u64(self.samples.len() as u64);
        sink.u64(self.events.len() as u64);

        // Step records.
        for s in &self.samples {
            encode_sample(&mut sink, s);
        }
        // Events.
        for e in &self.events {
            sink.f64(e.time);
            sink.u8(e.kind.code());
            sink.f64(e.value);
        }
        // Outcome footer.
        let o = &self.outcome;
        sink.u8(o.end.code());
        sink.u8(accident_code(o.accident));
        sink.opt_f64(o.accident_time);
        sink.opt_f64(o.fault_start);
        sink.f64(o.min_ttc);
        sink.f64(o.min_lane_line_distance);
        sink.u64(o.steps);

        // Whole-file checksum.
        let mut bytes = sink.into_bytes();
        let mut sum = Checksum::new();
        sum.update(&bytes);
        let trailer = sum.value().to_le_bytes();
        bytes.extend_from_slice(&trailer);
        // The content address covers the trailer too; continue the running
        // checksum over it rather than re-hashing the whole buffer.
        let mut full = sum;
        full.update(&trailer);
        (bytes, full.value())
    }

    /// Parses [`Self::to_bytes`] output, verifying the checksum first so a
    /// damaged file is rejected before any structural decoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < TRACE_MAGIC.len() + 8 {
            return Err(TraceError::BadMagic);
        }
        let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let v2 = payload.starts_with(TRACE_MAGIC_V2);
        if !v2 && !payload.starts_with(TRACE_MAGIC) {
            return Err(TraceError::BadMagic);
        }
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        let mut sum = Checksum::new();
        sum.update(payload);
        if sum.value() != stored {
            return Err(TraceError::ChecksumMismatch {
                stored,
                computed: sum.value(),
            });
        }

        let mut cur = Cursor::new(&payload[TRACE_MAGIC.len()..]);
        let attack = if v2 {
            AttackScheduler::Context(ContextTrigger {
                ttc_below: cur.opt_f64()?,
                lane_excursion_above: cur.opt_f64()?,
                curvature_above: cur.opt_f64()?,
                arm_after: cur.f64()?,
            })
        } else {
            AttackScheduler::Immediate
        };
        let scenario = scenario_from_code(cur.u8()?)?;
        let position = position_from_code(cur.u8()?)?;
        let repetition = cur.u32()?;
        let fault = fault_from_code(cur.u8()?)?;
        let campaign_seed = cur.u64()?;
        let config_fingerprint = cur.u64()?;
        let model_fingerprint = cur.u64()?;
        let driver = cur.u8()? != 0;
        let driver_reaction_time = cur.f64()?;
        let safety_check = cur.u8()? != 0;
        let aebs = aebs_from_code(cur.u8()?)?;
        let ml_byte = cur.u8()?;
        let ml = ml_byte != 0;
        let (mitigation, views) = if ml {
            let strategy_bits = ml_byte & 0b11;
            if strategy_bits == 0 {
                // Views bits without a strategy: not a value any writer
                // produces.
                return Err(TraceError::BadCode {
                    field: "ml_mitigation",
                    code: ml_byte,
                });
            }
            (strategy_bits - 1, ml_byte >> 2)
        } else {
            (0, 0)
        };
        let fc = cur.u8()?;
        let fs = cur.f64()?;
        let friction = friction_from_code(fc, fs)?;
        let max_steps = cur.u64()?;
        let quiescence_steps = cur.u64()?;
        let first_step = cur.u64()?;
        let n_samples = cur.u64()? as usize;
        let n_events = cur.u64()? as usize;

        // Cheap sanity bound before allocating: each sample/event costs a
        // known number of bytes.
        let need = n_samples * SAMPLE_WIRE_SIZE + n_events * 17;
        if cur.remaining() < need {
            return Err(TraceError::Truncated {
                at: cur.pos(),
                needed: need - cur.remaining(),
            });
        }

        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            samples.push(decode_sample(&mut cur)?);
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let time = cur.f64()?;
            let kind = EventKind::from_code(cur.u8()?)?;
            let value = cur.f64()?;
            events.push(TraceEvent { time, kind, value });
        }
        let end = EndReason::from_code(cur.u8()?)?;
        let accident = accident_from_code(cur.u8()?)?;
        let accident_time = cur.opt_f64()?;
        let fault_start = cur.opt_f64()?;
        let min_ttc = cur.f64()?;
        let min_lane_line_distance = cur.f64()?;
        let steps = cur.u64()?;
        if cur.remaining() != 0 {
            return Err(TraceError::TrailingBytes(cur.remaining()));
        }

        Ok(Self {
            header: TraceHeader {
                scenario,
                position,
                repetition,
                fault,
                campaign_seed,
                config_fingerprint,
                model_fingerprint,
                interventions: InterventionSummary {
                    driver,
                    driver_reaction_time,
                    safety_check,
                    aebs,
                    ml,
                    mitigation,
                    views,
                },
                friction,
                max_steps,
                quiescence_steps,
                first_step,
                attack,
            },
            samples,
            events,
            outcome: TraceOutcome {
                end,
                accident,
                accident_time,
                fault_start,
                min_ttc,
                min_lane_line_distance,
                steps,
            },
        })
    }

    /// Content address of this trace: FNV-1a over the serialised bytes,
    /// rendered as fixed-width hex (the same addressing scheme as the
    /// artifact cache).
    #[must_use]
    pub fn content_hex(&self) -> String {
        format!("{:016x}", self.serialise().1)
    }

    /// The content-addressed file name this trace would be stored under.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("trace-{}.bin", self.content_hex())
    }

    /// Where a trace with content hash `hex` would live under `dir` —
    /// the lookup half of the [`save_in`](Trace::save_in) content
    /// addressing. `None` when `hex` is not a 16-digit lowercase hex
    /// string (network input never names arbitrary files).
    #[must_use]
    pub fn path_for(dir: &Path, hex: &str) -> Option<PathBuf> {
        let valid = hex.len() == 16
            && hex
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
        valid.then(|| dir.join(format!("trace-{hex}.bin")))
    }

    /// Writes the trace content-addressed into `dir` (created on demand)
    /// and returns the path. Writes are atomic (temp file + rename) so
    /// concurrent campaign workers never leave a torn trace. The trace is
    /// serialised and checksummed exactly once — the same pass yields both
    /// the file name and the file body (persistence is on the campaign hot
    /// path under `ADAS_TRACE`).
    pub fn save_in(&self, dir: &Path) -> Result<PathBuf, TraceError> {
        let (bytes, sum) = self.serialise();
        let path = dir.join(format!("trace-{sum:016x}.bin"));
        write_atomic(&path, &bytes)?;
        Ok(path)
    }

    /// Writes the trace to an explicit path (atomic, parent created on
    /// demand). Used for the golden regression traces, whose names must be
    /// stable across regenerations.
    pub fn save_as(&self, path: &Path) -> Result<(), TraceError> {
        write_atomic(path, &self.to_bytes())
    }

    /// Loads and decodes a trace file.
    ///
    /// # Errors
    ///
    /// I/O failures, checksum mismatches, and structural decode errors all
    /// surface as [`TraceError`].
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path)
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// One-line identity summary (`S1/Near rep 0, fault Relative Distance,
    /// seed 2025`).
    #[must_use]
    pub fn identity(&self) -> String {
        let h = &self.header;
        format!(
            "{}/{:?} rep {} · fault {} · seed {}",
            h.scenario.label(),
            h.position,
            h.repetition,
            h.fault.map_or("none", FaultType::label),
            h.campaign_seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let samples: Vec<TraceSample> = (0..50)
            .map(|i| TraceSample {
                time: f64::from(i) * 0.01,
                ego_v: 20.0 + f64::from(i) * 0.01,
                true_rd: if i < 25 { 60.0 - f64::from(i) } else { f64::INFINITY },
                lead_v: if i < 25 { 13.0 } else { f64::NAN },
                aeb_active: i > 30,
                fault_active: i > 10,
                ..TraceSample::default()
            })
            .collect();
        Trace {
            header: TraceHeader {
                scenario: ScenarioId::S3,
                position: InitialPosition::Far,
                repetition: 7,
                fault: Some(FaultType::Mixed),
                campaign_seed: 2025,
                config_fingerprint: 0xDEAD_BEEF,
                model_fingerprint: 0,
                interventions: InterventionSummary {
                    driver: true,
                    driver_reaction_time: 2.5,
                    safety_check: true,
                    aebs: AebsMode::Independent,
                    ml: false,
                    mitigation: 0,
                    views: 0,
                },
                friction: adas_simulator::FrictionCondition::Off25,
                max_steps: 10_000,
                quiescence_steps: 300,
                first_step: 0,
                attack: AttackScheduler::Immediate,
            },
            samples,
            events: vec![
                TraceEvent {
                    time: 0.11,
                    kind: EventKind::FaultOn,
                    value: 3.2,
                },
                TraceEvent {
                    time: 0.31,
                    kind: EventKind::InterventionOn(InterventionKind::Aeb),
                    value: 1.8,
                },
            ],
            outcome: TraceOutcome {
                end: EndReason::Accident,
                accident: Some(AccidentKind::ForwardCollision),
                accident_time: Some(0.49),
                fault_start: Some(0.11),
                min_ttc: 0.4,
                min_lane_line_distance: 0.7,
                steps: 50,
            },
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        let d = Trace::from_bytes(&bytes).unwrap();
        // NaN != NaN under PartialEq; compare through Debug which renders
        // NaN stably.
        assert_eq!(format!("{t:?}"), format!("{d:?}"));
    }

    #[test]
    fn immediate_attack_serialises_as_v1() {
        let bytes = sample_trace().to_bytes();
        assert!(bytes.starts_with(TRACE_MAGIC));
        // The scenario byte must sit directly after the magic — no
        // scheduler block is present in a v1 file.
        assert_eq!(bytes[TRACE_MAGIC.len()], scenario_code(ScenarioId::S3));
    }

    #[test]
    fn scheduled_attack_round_trips_through_v2() {
        let mut t = sample_trace();
        t.header.attack = AttackScheduler::Context(ContextTrigger {
            ttc_below: Some(2.25),
            lane_excursion_above: None,
            curvature_above: Some(1.0 / 900.0),
            arm_after: 5.0,
        });
        let bytes = t.to_bytes();
        assert!(bytes.starts_with(TRACE_MAGIC_V2));
        let d = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(d.header.attack, t.header.attack);
        assert_eq!(format!("{t:?}"), format!("{d:?}"));
        // The content address must differ from the immediate rendering of
        // the same run: scheduling is part of the trace identity.
        assert_ne!(d.content_hex(), sample_trace().content_hex());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        // Walk a stride of bit positions across the whole file (checking
        // all ~40k bits would be slow for no extra coverage).
        for byte in (0..bytes.len()).step_by(37) {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << (byte % 8);
            assert!(
                Trace::from_bytes(&corrupt).is_err(),
                "bit flip at byte {byte} was not rejected"
            );
        }
    }

    #[test]
    fn truncation_at_any_boundary_is_rejected() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        for cut in [0, 5, TRACE_MAGIC.len(), 100, bytes.len() - 9, bytes.len() - 1] {
            assert!(Trace::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_trace().to_bytes();
        bytes.extend_from_slice(b"junk");
        assert!(Trace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn event_kind_codes_round_trip() {
        let mut kinds = vec![EventKind::FaultOn, EventKind::FaultOff];
        for k in InterventionKind::ALL {
            kinds.push(EventKind::InterventionOn(k));
            kinds.push(EventKind::InterventionOff(k));
        }
        let mut seen = std::collections::HashSet::new();
        for kind in kinds {
            let code = kind.code();
            assert!(seen.insert(code), "duplicate code {code}");
            assert_eq!(EventKind::from_code(code).unwrap(), kind);
        }
        assert!(EventKind::from_code(200).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("adas-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = sample_trace();
        let path = t.save_in(&dir).unwrap();
        assert!(path.file_name().unwrap().to_string_lossy().starts_with("trace-"));
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(format!("{t:?}"), format!("{loaded:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mitigation_variants_round_trip_in_ml_byte() {
        // Every strategy × a spread of view counts survives the packed
        // ML byte, and the legacy plain-bool encoding still decodes as
        // the CUSUM baseline.
        for (mitigation, views) in [(0u8, 0u8), (0, 1), (1, 0), (1, 8), (2, 6), (2, 63)] {
            let mut t = sample_trace();
            t.header.interventions.ml = true;
            t.header.interventions.mitigation = mitigation;
            t.header.interventions.views = views;
            let d = Trace::from_bytes(&t.to_bytes()).unwrap();
            assert_eq!(d.header.interventions.mitigation, mitigation);
            assert_eq!(d.header.interventions.views, views);
            assert!(d.header.interventions.ml);
        }
        // Distinct variants serialise to distinct bytes (and hence
        // distinct content addresses for otherwise-identical traces).
        let encode = |mitigation, views| {
            let mut t = sample_trace();
            t.header.interventions.ml = true;
            t.header.interventions.mitigation = mitigation;
            t.header.interventions.views = views;
            t.content_hex()
        };
        assert_ne!(encode(0, 0), encode(1, 0));
        assert_ne!(encode(1, 0), encode(2, 0));
        assert_ne!(encode(1, 0), encode(1, 8));
        // A views-without-strategy byte is rejected as corruption, not
        // silently misread. Craft it by patching the serialised byte and
        // re-stamping the checksum.
        let mut t = sample_trace();
        t.header.interventions.ml = true;
        let mut bytes = t.to_bytes();
        let ml_pos = TRACE_MAGIC.len() + 1 + 1 + 4 + 1 + 8 + 8 + 8 + 1 + 8 + 1 + 1;
        assert_eq!(bytes[ml_pos], 1, "ml byte not where expected");
        bytes[ml_pos] = 0b100; // views = 1, strategy bits = 0
        let payload_len = bytes.len() - 8;
        let mut sum = Checksum::new();
        sum.update(&bytes[..payload_len]);
        let sum = sum.value().to_le_bytes();
        bytes[payload_len..].copy_from_slice(&sum);
        match Trace::from_bytes(&bytes) {
            Err(TraceError::BadCode { field, .. }) => assert_eq!(field, "ml_mitigation"),
            other => panic!("expected BadCode, got {other:?}"),
        }
    }

    #[test]
    fn content_address_is_stable_and_content_sensitive() {
        let t = sample_trace();
        assert_eq!(t.content_hex(), t.content_hex());
        let mut t2 = t.clone();
        t2.samples[3].ego_v += 1e-12;
        assert_ne!(t.content_hex(), t2.content_hex());
    }
}
