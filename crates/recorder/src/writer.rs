//! Trace writer: accumulates step records, derives discrete events from
//! flag edges, and supports a bounded ring-buffer mode for long campaigns.

use crate::trace::{EventKind, Trace, TraceEvent, TraceHeader, TraceOutcome};
use adas_safety::InterventionKind;
use adas_simulator::TraceSample;
use std::collections::VecDeque;

/// How many step records a writer retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordMode {
    /// Keep every step (exact replay verification needs this).
    Full,
    /// Keep only the most recent `n` steps; events and the outcome footer
    /// are always kept in full, so a bounded trace still yields a complete
    /// timeline even when the step tail rolled over.
    Ring(usize),
}

/// Accumulates one run's flight-recorder data.
///
/// Events are derived online from the flag edges of consecutive samples
/// (fault/FCW/AEB/driver/ML channels switching on or off), so callers only
/// push plain [`TraceSample`]s. Event `value`s carry the most useful
/// context at the moment of the edge: ground-truth TTC for longitudinal
/// channels, lane-line distance for lateral ones.
#[derive(Debug)]
pub struct TraceWriter {
    mode: RecordMode,
    samples: VecDeque<TraceSample>,
    events: Vec<TraceEvent>,
    prev_flags: Flags,
    steps_seen: u64,
    dropped: u64,
}

/// The boolean channels of a sample, extracted for edge detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Flags {
    fault: bool,
    fcw: bool,
    aeb: bool,
    driver_brake: bool,
    driver_steer: bool,
    ml: bool,
}

impl Flags {
    #[inline]
    fn of(s: &TraceSample) -> Self {
        Self {
            fault: s.fault_active,
            fcw: s.fcw_alert,
            aeb: s.aeb_active,
            driver_brake: s.driver_braking,
            driver_steer: s.driver_steering,
            ml: s.ml_active,
        }
    }
}

impl TraceWriter {
    /// A writer in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if a ring capacity of zero is requested.
    #[must_use]
    pub fn new(mode: RecordMode) -> Self {
        if let RecordMode::Ring(n) = mode {
            assert!(n > 0, "ring capacity must be positive");
        }
        let cap = match mode {
            RecordMode::Full => 1024,
            RecordMode::Ring(n) => n,
        };
        Self {
            mode,
            samples: VecDeque::with_capacity(cap),
            events: Vec::new(),
            prev_flags: Flags::default(),
            steps_seen: 0,
            dropped: 0,
        }
    }

    /// A [`RecordMode::Full`] writer that adopts an existing sample
    /// buffer's allocation (cleared first) — the campaign capture path
    /// cycles one buffer through thousands of runs instead of re-faulting
    /// fresh pages for every run.
    #[must_use]
    pub fn from_buffer(mut buf: Vec<TraceSample>) -> Self {
        buf.clear();
        Self {
            mode: RecordMode::Full,
            // O(1): a VecDeque adopts a Vec's allocation directly.
            samples: VecDeque::from(buf),
            events: Vec::new(),
            prev_flags: Flags::default(),
            steps_seen: 0,
            dropped: 0,
        }
    }

    /// Pre-sizes the sample store for an expected run length (no-op in
    /// ring mode, which is already bounded).
    pub fn reserve(&mut self, steps: usize) {
        if self.mode == RecordMode::Full {
            self.samples.reserve(steps.saturating_sub(self.samples.len()));
        }
    }

    /// Records one step and derives any events its flag edges imply.
    ///
    /// Inlined across crates: this sits on the per-step hot path of traced
    /// campaigns (the platform calls it 10⁴ times per run).
    #[inline]
    pub fn record(&mut self, sample: TraceSample) {
        self.derive_events(&sample);
        if let RecordMode::Ring(cap) = self.mode {
            if self.samples.len() == cap {
                self.samples.pop_front();
                self.dropped += 1;
            }
        }
        self.samples.push_back(sample);
        self.steps_seen += 1;
    }

    /// Bulk-ingests a completed run's samples: derives the same events as
    /// repeated [`record`] calls. In [`RecordMode::Full`] on a fresh writer
    /// the buffer is adopted wholesale (no per-sample copy) and `None` is
    /// returned; otherwise the samples are pushed individually and the
    /// drained buffer is handed back so callers can recycle the allocation.
    ///
    /// [`record`]: TraceWriter::record
    pub fn ingest(&mut self, samples: Vec<TraceSample>) -> Option<Vec<TraceSample>> {
        if self.mode == RecordMode::Full && self.samples.is_empty() {
            for s in &samples {
                self.derive_events(s);
            }
            self.steps_seen += samples.len() as u64;
            // O(1): a VecDeque adopts a Vec's allocation directly.
            self.samples = VecDeque::from(samples);
            None
        } else {
            for s in &samples {
                self.record(*s);
            }
            let mut buf = samples;
            buf.clear();
            Some(buf)
        }
    }

    /// Emits on/off events for every flag edge between the previous sample
    /// and this one.
    #[inline]
    fn derive_events(&mut self, sample: &TraceSample) {
        let flags = Flags::of(sample);
        let prev = self.prev_flags;
        // Fast path: in the overwhelming majority of steps no channel
        // switches, and the whole edge scan reduces to one comparison.
        if flags == prev {
            return;
        }
        self.derive_edges(sample, flags, prev);
    }

    /// The slow path of [`derive_events`](Self::derive_events): at least
    /// one channel changed state since the previous sample.
    #[cold]
    fn derive_edges(&mut self, sample: &TraceSample, flags: Flags, prev: Flags) {
        let mut edge = |on: bool, was: bool, kind_on: EventKind, kind_off: EventKind, value: f64| {
            if on && !was {
                self.events.push(TraceEvent {
                    time: sample.time,
                    kind: kind_on,
                    value,
                });
            } else if !on && was {
                self.events.push(TraceEvent {
                    time: sample.time,
                    kind: kind_off,
                    value,
                });
            }
        };
        edge(
            flags.fault,
            prev.fault,
            EventKind::FaultOn,
            EventKind::FaultOff,
            sample.perceived_rd,
        );
        edge(
            flags.fcw,
            prev.fcw,
            EventKind::InterventionOn(InterventionKind::Fcw),
            EventKind::InterventionOff(InterventionKind::Fcw),
            sample.ttc,
        );
        edge(
            flags.aeb,
            prev.aeb,
            EventKind::InterventionOn(InterventionKind::Aeb),
            EventKind::InterventionOff(InterventionKind::Aeb),
            sample.ttc,
        );
        edge(
            flags.driver_brake,
            prev.driver_brake,
            EventKind::InterventionOn(InterventionKind::DriverBrake),
            EventKind::InterventionOff(InterventionKind::DriverBrake),
            sample.ttc,
        );
        edge(
            flags.driver_steer,
            prev.driver_steer,
            EventKind::InterventionOn(InterventionKind::DriverSteer),
            EventKind::InterventionOff(InterventionKind::DriverSteer),
            sample.lane_line_distance,
        );
        edge(
            flags.ml,
            prev.ml,
            EventKind::InterventionOn(InterventionKind::Ml),
            EventKind::InterventionOff(InterventionKind::Ml),
            sample.ttc,
        );
        self.prev_flags = flags;
    }

    /// Steps recorded so far (including any dropped by the ring).
    #[must_use]
    pub fn steps_seen(&self) -> u64 {
        self.steps_seen
    }

    /// Steps dropped by the ring buffer so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events derived so far.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Finalises into a [`Trace`]. `header.first_step` is overwritten with
    /// the index of the first retained sample.
    #[must_use]
    pub fn finish(self, mut header: TraceHeader, outcome: TraceOutcome) -> Trace {
        header.first_step = self.dropped;
        Trace {
            header,
            // O(1) for a deque that never wrapped (the adopted-Vec and
            // fresh-Full cases); ring tails pay one compaction copy.
            samples: Vec::from(self.samples),
            events: self.events,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::InterventionSummary;
    use adas_safety::AebsMode;
    use adas_scenarios::{InitialPosition, ScenarioId};

    fn header() -> TraceHeader {
        TraceHeader {
            scenario: ScenarioId::S1,
            position: InitialPosition::Near,
            repetition: 0,
            fault: None,
            campaign_seed: 1,
            config_fingerprint: 0,
            model_fingerprint: 0,
            interventions: InterventionSummary {
                driver: false,
                driver_reaction_time: 2.5,
                safety_check: false,
                aebs: AebsMode::Disabled,
                ml: false,
                mitigation: 0,
                views: 0,
            },
            friction: adas_simulator::FrictionCondition::Default,
            max_steps: 100,
            quiescence_steps: 0,
            first_step: 0,
            attack: adas_attack::AttackScheduler::Immediate,
        }
    }

    fn outcome(steps: u64) -> TraceOutcome {
        TraceOutcome {
            end: crate::trace::EndReason::TimeLimit,
            accident: None,
            accident_time: None,
            fault_start: None,
            min_ttc: f64::INFINITY,
            min_lane_line_distance: 1.0,
            steps,
        }
    }

    fn step(t: f64, aeb: bool, fault: bool) -> TraceSample {
        TraceSample {
            time: t,
            ttc: 3.0,
            aeb_active: aeb,
            fault_active: fault,
            ..TraceSample::default()
        }
    }

    #[test]
    fn derives_on_and_off_edges() {
        let mut w = TraceWriter::new(RecordMode::Full);
        w.record(step(0.0, false, false));
        w.record(step(0.01, false, true)); // fault on
        w.record(step(0.02, true, true)); // aeb on
        w.record(step(0.03, true, false)); // fault off
        w.record(step(0.04, false, false)); // aeb off
        let t = w.finish(header(), outcome(5));
        let kinds: Vec<EventKind> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::FaultOn,
                EventKind::InterventionOn(InterventionKind::Aeb),
                EventKind::FaultOff,
                EventKind::InterventionOff(InterventionKind::Aeb),
            ]
        );
        assert_eq!(t.events[1].time, 0.02);
        assert_eq!(t.events[1].value, 3.0);
        assert_eq!(t.samples.len(), 5);
        assert_eq!(t.header.first_step, 0);
    }

    #[test]
    fn first_sample_active_flags_emit_events() {
        let mut w = TraceWriter::new(RecordMode::Full);
        w.record(step(0.0, true, true));
        assert_eq!(w.events().len(), 2);
    }

    #[test]
    fn ring_keeps_tail_and_counts_drops() {
        let mut w = TraceWriter::new(RecordMode::Ring(10));
        for i in 0..25 {
            w.record(step(f64::from(i) * 0.01, false, i == 2));
        }
        assert_eq!(w.dropped(), 15);
        let t = w.finish(header(), outcome(25));
        assert_eq!(t.samples.len(), 10);
        assert_eq!(t.header.first_step, 15);
        assert!((t.samples[0].time - 0.15).abs() < 1e-12);
        // The fault-on/off events from the dropped prefix survive.
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_ring_capacity_panics() {
        let _ = TraceWriter::new(RecordMode::Ring(0));
    }

    #[test]
    fn ingest_matches_per_sample_recording() {
        let steps: Vec<TraceSample> = (0..30)
            .map(|i| step(f64::from(i) * 0.01, (10..20).contains(&i), i >= 5))
            .collect();
        for mode in [RecordMode::Full, RecordMode::Ring(8)] {
            let mut a = TraceWriter::new(mode);
            for s in &steps {
                a.record(*s);
            }
            let mut b = TraceWriter::new(mode);
            let returned = b.ingest(steps.clone());
            // Full mode adopts the buffer; ring mode hands it back drained.
            assert_eq!(returned.is_none(), mode == RecordMode::Full, "{mode:?}");
            if let Some(buf) = returned {
                assert!(buf.is_empty());
                assert!(buf.capacity() >= 30);
            }
            assert_eq!(
                a.finish(header(), outcome(30)),
                b.finish(header(), outcome(30)),
                "{mode:?}"
            );
        }
    }
}
