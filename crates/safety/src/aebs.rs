//! Advanced emergency braking system (AEBS) with forward collision warning.
//!
//! Implements the paper's TTC-based phase-controlled AEBS (Section III-C,
//! Eqs. (1)–(4), Table I), which follows UN R152 / Euro NCAP style
//! guidelines:
//!
//! * `ttc = RD / RS`                                          (1)
//! * `T_stop = V_ego / a_driver`                              (2)
//! * `t_fcw = T_react + T_stop`                               (3)
//! * `t_pb1 = V/3.8`, `t_pb2 = V/5.8`, `t_fb = V/9.8`         (4)
//!
//! | TTC in    | [t_fcw, t_pb1] | [t_pb1, t_pb2] | [t_pb2, t_fb] | [t_fb, 0] |
//! |-----------|----------------|----------------|---------------|-----------|
//! | Action    | FCW alert      | 90 % brake     | 95 % brake    | 100 %     |
//!
//! The paper evaluates three configurations (Section III-C): disabled,
//! enabled on compromised (DNN) data, and enabled on an independent sensor;
//! the *data source selection* happens in the platform — this module only
//! sees an `(RD, RS)` pair.

use serde::{Deserialize, Serialize};

/// Which data feeds the AEBS — the paper's three configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AebsMode {
    /// AEBS disabled entirely (some car models turn AEB off while the ADAS
    /// is engaged).
    #[default]
    Disabled,
    /// AEBS consumes the same (possibly fault-injected) DNN predictions the
    /// ACC uses.
    Compromised,
    /// AEBS consumes an independent, secure data source (e.g. radar).
    Independent,
}

impl AebsMode {
    /// True when the AEBS runs at all.
    #[must_use]
    pub fn enabled(self) -> bool {
        !matches!(self, AebsMode::Disabled)
    }
}

/// AEBS tuning parameters; defaults follow the paper exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AebsConfig {
    /// Assumed human braking deceleration used for the FCW horizon
    /// (Eq. (2)), m/s².
    pub driver_decel: f64,
    /// Assumed human reaction time (Eq. (3)), seconds.
    pub driver_react_time: f64,
    /// Speed divisor for the first partial-braking phase (Eq. (4)).
    pub pb1_divisor: f64,
    /// Speed divisor for the second partial-braking phase.
    pub pb2_divisor: f64,
    /// Speed divisor for the full-braking phase.
    pub fb_divisor: f64,
    /// Brake fraction applied in the first phase.
    pub pb1_brake: f64,
    /// Brake fraction applied in the second phase.
    pub pb2_brake: f64,
    /// Brake fraction applied in the full-braking phase.
    pub fb_brake: f64,
}

impl Default for AebsConfig {
    fn default() -> Self {
        Self {
            driver_decel: 4.9,
            driver_react_time: 2.5,
            pb1_divisor: 3.8,
            pb2_divisor: 5.8,
            fb_divisor: 9.8,
            pb1_brake: 0.90,
            pb2_brake: 0.95,
            fb_brake: 1.00,
        }
    }
}

/// Braking phase currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AebsStage {
    /// No warning, no braking.
    Inactive,
    /// FCW alert only.
    Warning,
    /// 90 % partial braking.
    PartialOne,
    /// 95 % partial braking.
    PartialTwo,
    /// 100 % full braking.
    Full,
}

/// Output of one AEBS evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AebsOutput {
    /// Stage reached this step.
    pub stage: AebsStage,
    /// Whether the FCW alert is sounding (true for every stage ≥ Warning).
    pub fcw_alert: bool,
    /// Commanded brake fraction, if braking.
    pub brake: Option<f64>,
    /// The TTC the decision was based on, seconds.
    pub ttc: f64,
    /// The FCW threshold `t_fcw` used this step, seconds.
    pub t_fcw: f64,
}

/// Stateful AEBS: latches escalation so the brake does not chatter between
/// phases as TTC recovers during the stop.
#[derive(Debug, Clone)]
pub struct Aebs {
    config: AebsConfig,
    mode: AebsMode,
    latched_stage: AebsStage,
    first_brake_time: Option<f64>,
    first_fcw_time: Option<f64>,
}

impl Aebs {
    /// Creates an AEBS in the given mode.
    #[must_use]
    pub fn new(config: AebsConfig, mode: AebsMode) -> Self {
        Self {
            config,
            mode,
            latched_stage: AebsStage::Inactive,
            first_brake_time: None,
            first_fcw_time: None,
        }
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(&self) -> AebsMode {
        self.mode
    }

    /// Time of the first braking activation, if any (for the paper's
    /// "mitigation time" metric).
    #[must_use]
    pub fn first_brake_time(&self) -> Option<f64> {
        self.first_brake_time
    }

    /// Time of the first FCW alert, if any.
    #[must_use]
    pub fn first_fcw_time(&self) -> Option<f64> {
        self.first_fcw_time
    }

    /// The FCW threshold for a given ego speed (Eq. (3)).
    #[must_use]
    pub fn t_fcw(&self, ego_speed: f64) -> f64 {
        self.config.driver_react_time + ego_speed / self.config.driver_decel
    }

    /// Evaluates the AEBS for one step.
    ///
    /// `distance`/`closing_speed` describe the lead vehicle as seen by this
    /// AEBS's data source (`None` when that source reports no lead);
    /// `ego_speed` comes from the CAN bus; `time` is the simulation clock.
    pub fn evaluate(
        &mut self,
        lead: Option<(f64, f64)>,
        ego_speed: f64,
        time: f64,
    ) -> AebsOutput {
        let t_fcw = self.t_fcw(ego_speed);
        if !self.mode.enabled() {
            return AebsOutput {
                stage: AebsStage::Inactive,
                fcw_alert: false,
                brake: None,
                ttc: f64::INFINITY,
                t_fcw,
            };
        }

        let ttc = match lead {
            Some((rd, rs)) if rs > 1e-6 && rd >= 0.0 => rd / rs,
            _ => f64::INFINITY,
        };

        let c = self.config;
        let v = ego_speed;
        let mut stage = if ttc <= v / c.fb_divisor {
            AebsStage::Full
        } else if ttc <= v / c.pb2_divisor {
            AebsStage::PartialTwo
        } else if ttc <= v / c.pb1_divisor {
            AebsStage::PartialOne
        } else if ttc <= t_fcw {
            AebsStage::Warning
        } else {
            AebsStage::Inactive
        };

        // Latch: once an emergency braking stage engages, the intervention
        // brakes the vehicle to a standstill (it does not feather on and
        // off as TTC recovers during the stop). This hold is what lets the
        // AEB arrest a lateral drift by stopping the vehicle outright — the
        // paper's observation that AEB prevents out-of-lane accidents.
        if ego_speed < 0.1 {
            self.latched_stage = AebsStage::Inactive;
        } else {
            stage = stage.max(self.latched_stage);
            if stage >= AebsStage::PartialOne {
                self.latched_stage = stage;
            }
        }

        let brake = match stage {
            AebsStage::Inactive | AebsStage::Warning => None,
            AebsStage::PartialOne => Some(c.pb1_brake),
            AebsStage::PartialTwo => Some(c.pb2_brake),
            AebsStage::Full => Some(c.fb_brake),
        };
        let fcw_alert = stage > AebsStage::Inactive;
        if fcw_alert && self.first_fcw_time.is_none() {
            self.first_fcw_time = Some(time);
        }
        if brake.is_some() && self.first_brake_time.is_none() {
            self.first_brake_time = Some(time);
        }

        AebsOutput {
            stage,
            fcw_alert,
            brake,
            ttc,
            t_fcw,
        }
    }

    /// Resets latches and trigger times (new run).
    pub fn reset(&mut self) {
        self.latched_stage = AebsStage::Inactive;
        self.first_brake_time = None;
        self.first_fcw_time = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_simulator::units::mph;

    fn aebs() -> Aebs {
        Aebs::new(AebsConfig::default(), AebsMode::Independent)
    }

    #[test]
    fn disabled_never_acts() {
        let mut a = Aebs::new(AebsConfig::default(), AebsMode::Disabled);
        let out = a.evaluate(Some((1.0, 20.0)), 25.0, 0.0);
        assert_eq!(out.stage, AebsStage::Inactive);
        assert!(out.brake.is_none());
        assert!(!out.fcw_alert);
    }

    #[test]
    fn table_i_phase_thresholds() {
        // V = 19 m/s → t_pb1 = 5.0, t_pb2 ≈ 3.276, t_fb ≈ 1.939,
        // t_fcw = 2.5 + 19/4.9 ≈ 6.378.
        let v: f64 = 19.0;
        let cases = [
            (6.0, AebsStage::Warning),
            (4.5, AebsStage::PartialOne),
            (2.5, AebsStage::PartialTwo),
            (1.5, AebsStage::Full),
            (8.0, AebsStage::Inactive),
        ];
        for (ttc, expected) in cases {
            let mut a = aebs();
            let rs = 8.0;
            let out = a.evaluate(Some((ttc * rs, rs)), v, 0.0);
            assert_eq!(out.stage, expected, "ttc={ttc}");
        }
    }

    #[test]
    fn brake_levels_match_table_i() {
        let v = 19.0;
        let mut a = aebs();
        assert_eq!(a.evaluate(Some((4.5 * 8.0, 8.0)), v, 0.0).brake, Some(0.90));
        a.reset();
        assert_eq!(a.evaluate(Some((2.5 * 8.0, 8.0)), v, 0.0).brake, Some(0.95));
        a.reset();
        assert_eq!(a.evaluate(Some((1.5 * 8.0, 8.0)), v, 0.0).brake, Some(1.00));
    }

    #[test]
    fn fcw_threshold_formula() {
        let a = aebs();
        // Paper Table IV S1: t_fcw ≈ 4.42 s at V ≈ 9.4 m/s.
        let t = a.t_fcw(9.4);
        assert!((t - (2.5 + 9.4 / 4.9)).abs() < 1e-12);
        assert!((t - 4.42).abs() < 0.05);
    }

    #[test]
    fn no_ttc_when_opening() {
        let mut a = aebs();
        let out = a.evaluate(Some((30.0, -2.0)), mph(50.0), 0.0);
        assert!(out.ttc.is_infinite());
        assert_eq!(out.stage, AebsStage::Inactive);
    }

    #[test]
    fn no_lead_no_action() {
        let mut a = aebs();
        let out = a.evaluate(None, mph(50.0), 0.0);
        assert_eq!(out.stage, AebsStage::Inactive);
    }

    #[test]
    fn latches_across_ttc_recovery() {
        let mut a = aebs();
        let v = 20.0;
        // Enter full braking.
        let out = a.evaluate(Some((4.0, 10.0)), v, 1.0);
        assert_eq!(out.stage, AebsStage::Full);
        // TTC recovers a bit (rs drops as we brake) but threat persists:
        // stage must not drop to a lighter phase.
        let out = a.evaluate(Some((4.0, 2.0)), 12.0, 1.1);
        assert_eq!(out.stage, AebsStage::Full, "must stay latched");
        // Fully stopped: release.
        let out = a.evaluate(Some((4.0, 0.0)), 0.0, 2.0);
        assert_eq!(out.stage, AebsStage::Inactive);
    }

    #[test]
    fn records_first_trigger_times() {
        let mut a = aebs();
        assert!(a.first_brake_time().is_none());
        let _ = a.evaluate(Some((100.0, 5.0)), 20.0, 0.5); // ttc 20: nothing
        let _ = a.evaluate(Some((20.0, 8.0)), 20.0, 1.5); // ttc 2.5: brake
        assert_eq!(a.first_brake_time(), Some(1.5));
        let _ = a.evaluate(Some((10.0, 8.0)), 18.0, 2.0);
        assert_eq!(a.first_brake_time(), Some(1.5), "first time latched");
    }

    #[test]
    fn warning_precedes_braking_when_approaching() {
        // Sweep a closing approach: the first alert must be a pure warning
        // before any braking phase fires (the Table I cascade).
        let mut a = aebs();
        let mut saw_warning_first = false;
        let mut rd = 120.0;
        let v = mph(50.0);
        let rs = v - mph(30.0);
        let mut t = 0.0;
        loop {
            let out = a.evaluate(Some((rd, rs)), v, t);
            if out.brake.is_some() {
                break;
            }
            if out.stage == AebsStage::Warning {
                saw_warning_first = true;
            }
            rd -= rs * 0.01;
            t += 0.01;
            assert!(rd > 0.0, "never braked during entire approach");
        }
        assert!(saw_warning_first);
    }

    #[test]
    fn reset_clears_latch() {
        let mut a = aebs();
        let _ = a.evaluate(Some((4.0, 10.0)), 20.0, 0.0);
        a.reset();
        assert!(a.first_brake_time().is_none());
        let out = a.evaluate(Some((200.0, 1.0)), 20.0, 0.0);
        assert_eq!(out.stage, AebsStage::Inactive);
    }
}
