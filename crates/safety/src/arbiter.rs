//! Priority arbitration among safety interventions.
//!
//! The paper assigns fixed priorities to resolve conflicts: **AEB highest,
//! safety checking lowest**, with the human driver in between. Concretely:
//!
//! * If AEB is braking, its pedal command wins the longitudinal channel and
//!   — because emergency braking owns the actuators — the driver's steering
//!   is *not* forwarded. This is the conflict the paper highlights in
//!   Observation 4: under mixed attacks, adding AEB can lower the prevention
//!   rate because it overrides the driver's lateral correction.
//! * Otherwise, driver inputs (brake and/or steering) override the ADAS/ML.
//! * Otherwise, an active ML-mitigation command overrides the ADAS.
//! * The PANDA-style safety check constrains the ADAS/ML command only; it is
//!   applied before arbitration by the platform.

use adas_control::AdasCommand;
use adas_simulator::{VehicleCommand, VehicleParams};
use serde::{Deserialize, Serialize};

use crate::driver::DriverAction;

/// Who won the longitudinal / lateral channel this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandSource {
    /// The ADAS (ACC/ALC) command.
    Adas,
    /// The ML mitigation model.
    Ml,
    /// The human driver.
    Driver,
    /// The automatic emergency braking system.
    Aeb,
}

/// Result of arbitrating one control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arbitration {
    /// The actuator command to execute.
    pub command: VehicleCommand,
    /// Longitudinal channel winner.
    pub longitudinal: CommandSource,
    /// Lateral channel winner.
    pub lateral: CommandSource,
}

/// Inputs to the arbiter for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArbiterInputs {
    /// ADAS command after any safety checking.
    pub adas: AdasCommand,
    /// ML mitigation command, if the recovery mode is active.
    pub ml: Option<AdasCommand>,
    /// Driver action (brake and/or steering).
    pub driver: DriverAction,
    /// AEB brake fraction, if the AEBS is braking.
    pub aeb_brake: Option<f64>,
}

/// Arbitrates one cycle with the paper's priority order (AEB > driver > ML >
/// ADAS).
#[must_use]
pub fn arbitrate(inputs: &ArbiterInputs, params: &VehicleParams) -> Arbitration {
    // Baseline: ADAS or (if active) ML.
    let (mut base, base_src) = match inputs.ml {
        Some(ml) => (ml, CommandSource::Ml),
        None => (inputs.adas, CommandSource::Adas),
    };
    let mut longitudinal = base_src;
    let mut lateral = base_src;

    // Driver overrides ML/ADAS per channel.
    let mut driver_brake = None;
    if let Some(brake) = inputs.driver.brake {
        driver_brake = Some(brake);
        longitudinal = CommandSource::Driver;
    }
    if let Some(steer) = inputs.driver.steer {
        base.steer = steer;
        lateral = CommandSource::Driver;
    }

    // AEB overrides everything it touches — and while it is braking the
    // automation owns the actuators, so the driver's steering correction is
    // suppressed (steering reverts to the ADAS/ML value).
    let mut aeb_brake = None;
    if let Some(brake) = inputs.aeb_brake {
        aeb_brake = Some(brake);
        longitudinal = CommandSource::Aeb;
        if lateral == CommandSource::Driver {
            base.steer = match inputs.ml {
                Some(ml) => ml.steer,
                None => inputs.adas.steer,
            };
            lateral = base_src;
        }
    }

    // Build the actuator command.
    let command = if let Some(brake) = aeb_brake {
        VehicleCommand {
            gas: 0.0,
            brake,
            steer: base.steer,
        }
    } else if let Some(brake) = driver_brake {
        // Emergency brake, zero throttle, steering per lateral winner.
        VehicleCommand {
            gas: 0.0,
            brake,
            steer: base.steer,
        }
    } else {
        VehicleCommand::from_accel(base.accel, params).with_steer(base.steer)
    };

    Arbitration {
        command,
        longitudinal,
        lateral,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adas(accel: f64, steer: f64) -> AdasCommand {
        AdasCommand {
            accel,
            steer,
            lead_engaged: true,
        }
    }

    fn params() -> VehicleParams {
        VehicleParams::sedan()
    }

    fn base_inputs() -> ArbiterInputs {
        ArbiterInputs {
            adas: adas(1.0, 0.02),
            ml: None,
            driver: DriverAction::default(),
            aeb_brake: None,
        }
    }

    #[test]
    fn adas_passthrough_when_nothing_active() {
        let arb = arbitrate(&base_inputs(), &params());
        assert_eq!(arb.longitudinal, CommandSource::Adas);
        assert_eq!(arb.lateral, CommandSource::Adas);
        assert!(arb.command.gas > 0.0);
        assert!((arb.command.steer - 0.02).abs() < 1e-12);
    }

    #[test]
    fn ml_overrides_adas() {
        let mut inputs = base_inputs();
        inputs.ml = Some(adas(-2.0, 0.0));
        let arb = arbitrate(&inputs, &params());
        assert_eq!(arb.longitudinal, CommandSource::Ml);
        assert!(arb.command.brake > 0.0);
    }

    #[test]
    fn driver_brake_overrides_ml_and_adas() {
        let mut inputs = base_inputs();
        inputs.ml = Some(adas(2.0, 0.0));
        inputs.driver.brake = Some(0.9);
        let arb = arbitrate(&inputs, &params());
        assert_eq!(arb.longitudinal, CommandSource::Driver);
        assert_eq!(arb.command.brake, 0.9);
        assert_eq!(arb.command.gas, 0.0, "zero throttle during driver brake");
        // Steering unchanged: still the ML value (the active automation).
        assert_eq!(arb.lateral, CommandSource::Ml);
    }

    #[test]
    fn driver_steer_overrides_lateral_only() {
        let mut inputs = base_inputs();
        inputs.driver.steer = Some(-0.1);
        let arb = arbitrate(&inputs, &params());
        assert_eq!(arb.lateral, CommandSource::Driver);
        assert_eq!(arb.longitudinal, CommandSource::Adas);
        assert_eq!(arb.command.steer, -0.1);
        assert!(arb.command.gas > 0.0);
    }

    #[test]
    fn aeb_wins_longitudinal() {
        let mut inputs = base_inputs();
        inputs.driver.brake = Some(0.5);
        inputs.aeb_brake = Some(1.0);
        let arb = arbitrate(&inputs, &params());
        assert_eq!(arb.longitudinal, CommandSource::Aeb);
        assert_eq!(arb.command.brake, 1.0);
        assert_eq!(arb.command.gas, 0.0);
    }

    #[test]
    fn aeb_suppresses_driver_steering() {
        // The paper's Observation 4 conflict: with AEB active the driver's
        // lateral correction is overridden back to the ADAS steering.
        let mut inputs = base_inputs();
        inputs.driver.steer = Some(-0.2);
        inputs.aeb_brake = Some(0.95);
        let arb = arbitrate(&inputs, &params());
        assert_eq!(arb.lateral, CommandSource::Adas);
        assert!((arb.command.steer - 0.02).abs() < 1e-12);
    }

    #[test]
    fn without_aeb_driver_keeps_steering_while_braking() {
        let mut inputs = base_inputs();
        inputs.driver.steer = Some(-0.2);
        inputs.driver.brake = Some(0.8);
        let arb = arbitrate(&inputs, &params());
        assert_eq!(arb.lateral, CommandSource::Driver);
        assert_eq!(arb.command.steer, -0.2);
        assert_eq!(arb.command.brake, 0.8);
    }

    #[test]
    fn aeb_with_ml_reverts_steer_to_ml() {
        let mut inputs = base_inputs();
        inputs.ml = Some(adas(0.5, 0.07));
        inputs.driver.steer = Some(-0.2);
        inputs.aeb_brake = Some(0.9);
        let arb = arbitrate(&inputs, &params());
        assert_eq!(arb.lateral, CommandSource::Ml);
        assert!((arb.command.steer - 0.07).abs() < 1e-12);
    }
}
