//! Firmware-style safety constraint checking (PANDA replica).
//!
//! OpenPilot's PANDA CAN interface enforces command-range limits in firmware;
//! the paper replicates the logic in software because PANDA is unavailable in
//! simulation. The checker bounds the ADAS acceleration command to
//! `[-3.5, 2.0]` m/s² (ISO 22179-derived, the exact PANDA thresholds the
//! paper cites) and rate-limits the steering command. It applies to the
//! *ADAS/ML* outputs only; emergency actors (AEB, the human driver) act
//! below this layer.

use adas_control::AdasCommand;
use serde::{Deserialize, Serialize};

/// Safety-check limits; defaults follow the paper / PANDA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyCheckConfig {
    /// Maximum allowed commanded acceleration, m/s².
    pub max_accel: f64,
    /// Minimum allowed commanded acceleration (most negative), m/s².
    pub min_accel: f64,
    /// Maximum steering angle magnitude the ADAS may command, radians.
    pub max_steer: f64,
    /// Maximum steering-angle change per second, rad/s.
    pub max_steer_rate: f64,
}

impl Default for SafetyCheckConfig {
    fn default() -> Self {
        Self {
            max_accel: 2.0,
            min_accel: -3.5,
            max_steer: 0.45,
            max_steer_rate: 0.5,
        }
    }
}

/// Outcome of checking one command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckedCommand {
    /// The (possibly clamped) command to forward.
    pub command: AdasCommand,
    /// True if the acceleration had to be limited.
    pub accel_limited: bool,
    /// True if the steering had to be limited.
    pub steer_limited: bool,
}

/// Stateful safety checker (remembers the last steering command for rate
/// limiting and counts violations).
#[derive(Debug, Clone)]
pub struct SafetyCheck {
    config: SafetyCheckConfig,
    last_steer: f64,
    violations: u64,
}

impl SafetyCheck {
    /// Creates a checker.
    #[must_use]
    pub fn new(config: SafetyCheckConfig) -> Self {
        Self {
            config,
            last_steer: 0.0,
            violations: 0,
        }
    }

    /// Total number of commands that required clamping so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Checks and clamps one ADAS command.
    pub fn check(&mut self, command: AdasCommand, dt: f64) -> CheckedCommand {
        let c = self.config;
        let accel = command.accel.clamp(c.min_accel, c.max_accel);
        let accel_limited = accel != command.accel;

        let steer_abs = command.steer.clamp(-c.max_steer, c.max_steer);
        let max_delta = c.max_steer_rate * dt;
        let steer = steer_abs.clamp(self.last_steer - max_delta, self.last_steer + max_delta);
        let steer_limited = (steer - command.steer).abs() > 1e-12;
        self.last_steer = steer;

        if accel_limited || steer_limited {
            self.violations += 1;
        }
        CheckedCommand {
            command: AdasCommand {
                accel,
                steer,
                lead_engaged: command.lead_engaged,
            },
            accel_limited,
            steer_limited,
        }
    }

    /// Resets the rate-limit memory and violation counter (new run).
    pub fn reset(&mut self) {
        self.last_steer = 0.0;
        self.violations = 0;
    }
}

impl Default for SafetyCheck {
    fn default() -> Self {
        Self::new(SafetyCheckConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(accel: f64, steer: f64) -> AdasCommand {
        AdasCommand {
            accel,
            steer,
            lead_engaged: false,
        }
    }

    #[test]
    fn passes_compliant_commands() {
        let mut sc = SafetyCheck::default();
        let out = sc.check(cmd(1.0, 0.001), 0.01);
        assert!(!out.accel_limited && !out.steer_limited);
        assert_eq!(out.command.accel, 1.0);
        assert_eq!(sc.violations(), 0);
    }

    #[test]
    fn clamps_hard_braking_to_paper_limit() {
        let mut sc = SafetyCheck::default();
        let out = sc.check(cmd(-8.0, 0.0), 0.01);
        assert!(out.accel_limited);
        assert_eq!(out.command.accel, -3.5);
    }

    #[test]
    fn clamps_excess_acceleration() {
        let mut sc = SafetyCheck::default();
        let out = sc.check(cmd(4.0, 0.0), 0.01);
        assert_eq!(out.command.accel, 2.0);
    }

    #[test]
    fn rate_limits_steering() {
        let mut sc = SafetyCheck::default();
        // 0.5 rad/s × 0.01 s = 0.005 rad per step.
        let out = sc.check(cmd(0.0, 0.3), 0.01);
        assert!(out.steer_limited);
        assert!((out.command.steer - 0.005).abs() < 1e-12);
        // Next step continues from the limited value.
        let out2 = sc.check(cmd(0.0, 0.3), 0.01);
        assert!((out2.command.steer - 0.010).abs() < 1e-12);
    }

    #[test]
    fn absolute_steer_limit() {
        let mut sc = SafetyCheck::default();
        let mut last = 0.0;
        for _ in 0..200 {
            last = sc.check(cmd(0.0, 1.0), 0.01).command.steer;
        }
        assert!((last - SafetyCheckConfig::default().max_steer).abs() < 1e-9);
    }

    #[test]
    fn counts_violations() {
        let mut sc = SafetyCheck::default();
        let _ = sc.check(cmd(-9.0, 0.0), 0.01);
        let _ = sc.check(cmd(0.0, 0.0), 0.01);
        let _ = sc.check(cmd(3.0, 0.0), 0.01);
        assert_eq!(sc.violations(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut sc = SafetyCheck::default();
        let _ = sc.check(cmd(0.0, 0.3), 0.01);
        sc.reset();
        assert_eq!(sc.violations(), 0);
        let out = sc.check(cmd(0.0, 0.3), 0.01);
        assert!((out.command.steer - 0.005).abs() < 1e-12);
    }
}
