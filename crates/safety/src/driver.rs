//! Rule-based human-driver reaction simulator (paper Table II).
//!
//! At Level-2 autonomy the driver must monitor and intervene. The simulator
//! watches the *true* world — a physical adversarial patch fools the DNN,
//! not human eyes — and reacts after a configurable reaction time
//! (default 2.5 s, swept 1.0–3.5 s in the paper's Table VII):
//!
//! | Activation condition                  | Reaction                        |
//! |---------------------------------------|---------------------------------|
//! | FCW alert, unsafe cruise speed,       | emergency brake, zero throttle, |
//! | unexpected acceleration, unsafe       | steering unchanged              |
//! | following distance, vehicle cutting in|                                 |
//! | LDW, unsafe distance to lane lines    | steer back to the lane center   |
//!
//! The emergency-brake profile ramps to a strong pedal level, following
//! driver brake-response studies (Gaspar & McGehee).

use serde::{Deserialize, Serialize};

/// Driver model parameters; defaults follow the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Time between a hazard becoming observable and the driver acting,
    /// seconds.
    pub reaction_time: f64,
    /// Peak emergency brake fraction.
    pub brake_peak: f64,
    /// Time to ramp from first pedal contact to the peak, seconds.
    pub brake_ramp: f64,
    /// Following distance below which the driver panics, metres (the paper
    /// uses "less than a vehicle length").
    pub unsafe_follow_distance: f64,
    /// Cruise speed is unsafe above `speed_limit × unsafe_cruise_factor`
    /// (the paper uses +10 % of the limit).
    pub unsafe_cruise_factor: f64,
    /// Posted speed limit, m/s.
    pub speed_limit: f64,
    /// Gap below which commanded acceleration towards the lead alarms the
    /// driver, metres.
    pub unexpected_accel_gap: f64,
    /// Commanded acceleration above which (with a close lead) the driver
    /// considers it unexpected, m/s².
    pub unexpected_accel_threshold: f64,
    /// Edge-to-line distance below which the driver corrects laterally,
    /// metres (the paper uses 0.5 m).
    pub lane_line_threshold: f64,
    /// Proportional steering gain on lateral offset, rad/m.
    pub steer_gain_offset: f64,
    /// Damping steering gain on heading error, rad/rad.
    pub steer_gain_heading: f64,
    /// Driver steering authority, radians.
    pub steer_limit: f64,
    /// Threat must stay clear this long before the driver releases the
    /// brake, seconds.
    pub release_hold: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            reaction_time: 2.5,
            brake_peak: 0.55,
            brake_ramp: 0.4,
            unsafe_follow_distance: 4.9,
            unsafe_cruise_factor: 1.1,
            speed_limit: adas_simulator::units::mph(50.0),
            unexpected_accel_gap: 20.0,
            unexpected_accel_threshold: 1.0,
            lane_line_threshold: 0.5,
            steer_gain_offset: 0.09,
            steer_gain_heading: 1.0,
            steer_limit: 0.25,
            release_hold: 2.0,
        }
    }
}

impl DriverConfig {
    /// A config identical to the default except for the reaction time — the
    /// Table VII sweep.
    #[must_use]
    pub fn with_reaction_time(reaction_time: f64) -> Self {
        Self {
            reaction_time,
            ..Self::default()
        }
    }
}

/// What the driver can observe in one step (ground truth + alerts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverInputs {
    /// Simulation clock, seconds.
    pub time: f64,
    /// Whether the FCW alert is sounding.
    pub fcw_alert: bool,
    /// Whether an LDW alert is active.
    pub ldw_alert: bool,
    /// Ego speed, m/s.
    pub ego_speed: f64,
    /// Acceleration the ADAS is commanding this cycle, m/s².
    pub adas_accel: f64,
    /// The vehicle's realised acceleration, m/s² — what the driver's body
    /// actually feels.
    pub ego_accel: f64,
    /// True bumper gap and closing speed to the lead, if one exists.
    pub true_lead: Option<(f64, f64)>,
    /// Whether another vehicle is cutting into the lane.
    pub cut_in: bool,
    /// True lateral offset of the ego from its lane center, metres.
    pub lateral_offset: f64,
    /// True heading error relative to the road tangent, radians.
    pub heading_error: f64,
    /// True distance from the ego's body edge to the nearest lane line,
    /// metres.
    pub lane_line_distance: f64,
}

/// Which longitudinal condition first triggered the driver (for analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrakeTrigger {
    /// Forward collision warning from the AEBS.
    FcwAlert,
    /// Speed above 110 % of the limit.
    UnsafeCruiseSpeed,
    /// Throttle while close behind the lead.
    UnexpectedAcceleration,
    /// Gap below one vehicle length.
    UnsafeFollowingDistance,
    /// Vehicle cutting in from an adjacent lane.
    CutIn,
}

/// Driver output for one step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DriverAction {
    /// Emergency brake fraction, if braking.
    pub brake: Option<f64>,
    /// Corrective steering angle, if steering.
    pub steer: Option<f64>,
}

/// The stateful driver model.
#[derive(Debug, Clone)]
pub struct DriverModel {
    config: DriverConfig,
    // Longitudinal channel.
    accel_anomaly_steps: u32,
    brake_scheduled: Option<f64>,
    braking_since: Option<f64>,
    last_brake_threat: Option<f64>,
    first_brake_trigger: Option<(f64, BrakeTrigger)>,
    // Lateral channel.
    steer_scheduled: Option<f64>,
    steering: bool,
    last_steer_threat: Option<f64>,
    first_steer_trigger: Option<f64>,
}

impl DriverModel {
    /// Creates a driver with the given parameters.
    #[must_use]
    pub fn new(config: DriverConfig) -> Self {
        Self {
            config,
            accel_anomaly_steps: 0,
            brake_scheduled: None,
            braking_since: None,
            last_brake_threat: None,
            first_brake_trigger: None,
            steer_scheduled: None,
            steering: false,
            last_steer_threat: None,
            first_steer_trigger: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Time and cause of the first longitudinal trigger condition, if any.
    #[must_use]
    pub fn first_brake_trigger(&self) -> Option<(f64, BrakeTrigger)> {
        self.first_brake_trigger
    }

    /// Time of the first lateral trigger condition, if any.
    #[must_use]
    pub fn first_steer_trigger(&self) -> Option<f64> {
        self.first_steer_trigger
    }

    /// True while the emergency brake is being applied.
    #[must_use]
    pub fn is_braking(&self) -> bool {
        self.braking_since.is_some()
    }

    /// True while the corrective steering is being applied.
    #[must_use]
    pub fn is_steering(&self) -> bool {
        self.steering
    }

    fn brake_threat(&self, inputs: &DriverInputs) -> Option<BrakeTrigger> {
        let c = &self.config;
        if inputs.fcw_alert {
            return Some(BrakeTrigger::FcwAlert);
        }
        if inputs.ego_speed > c.speed_limit * c.unsafe_cruise_factor {
            return Some(BrakeTrigger::UnsafeCruiseSpeed);
        }
        if let Some((rd, closing)) = inputs.true_lead {
            if rd < c.unsafe_follow_distance {
                return Some(BrakeTrigger::UnsafeFollowingDistance);
            }
            // Sustained felt acceleration towards a close lead: the driver
            // needs ~0.25 s of it before registering it as anomalous.
            if closing > 1.0
                && rd < c.unexpected_accel_gap
                && inputs.ego_accel > c.unexpected_accel_threshold
                && self.accel_anomaly_steps >= 25
            {
                return Some(BrakeTrigger::UnexpectedAcceleration);
            }
        }
        if inputs.cut_in {
            return Some(BrakeTrigger::CutIn);
        }
        None
    }

    fn steer_threat(&self, inputs: &DriverInputs) -> bool {
        inputs.ldw_alert || inputs.lane_line_distance < self.config.lane_line_threshold
    }

    /// Advances the driver by one step and returns any manual inputs.
    pub fn update(&mut self, inputs: &DriverInputs) -> DriverAction {
        let c = self.config;
        let t = inputs.time;

        // ---- Longitudinal channel ----------------------------------------
        let accel_anomalous = inputs.ego_accel > c.unexpected_accel_threshold
            && inputs
                .true_lead
                .is_some_and(|(rd, closing)| closing > 1.0 && rd < c.unexpected_accel_gap);
        if accel_anomalous {
            self.accel_anomaly_steps = self.accel_anomaly_steps.saturating_add(1);
        } else {
            self.accel_anomaly_steps = 0;
        }
        let threat = self.brake_threat(inputs);
        if let Some(cause) = threat {
            self.last_brake_threat = Some(t);
            if self.first_brake_trigger.is_none() {
                self.first_brake_trigger = Some((t, cause));
            }
            if self.braking_since.is_none() && self.brake_scheduled.is_none() {
                self.brake_scheduled = Some(t + c.reaction_time);
            }
        }
        if let Some(when) = self.brake_scheduled {
            if t >= when {
                self.brake_scheduled = None;
                // Act only if the threat was still live recently; otherwise
                // the driver relaxes without braking.
                if self.last_brake_threat.is_some_and(|lt| t - lt <= 1.0) {
                    self.braking_since = Some(t);
                }
            }
        }
        if let Some(_since) = self.braking_since {
            let clear = self
                .last_brake_threat
                .is_none_or(|lt| t - lt > c.release_hold);
            if clear && inputs.ego_speed > 0.5 {
                self.braking_since = None;
            }
        }
        let brake = self.braking_since.map(|since| {
            let ramp = ((t - since) / c.brake_ramp).clamp(0.0, 1.0);
            c.brake_peak * ramp.max(0.2)
        });

        // ---- Lateral channel ----------------------------------------------
        if self.steer_threat(inputs) {
            self.last_steer_threat = Some(t);
            if self.first_steer_trigger.is_none() {
                self.first_steer_trigger = Some(t);
            }
            if !self.steering && self.steer_scheduled.is_none() {
                self.steer_scheduled = Some(t + c.reaction_time);
            }
        }
        if let Some(when) = self.steer_scheduled {
            if t >= when {
                self.steer_scheduled = None;
                if self.last_steer_threat.is_some_and(|lt| t - lt <= 1.0) {
                    self.steering = true;
                }
            }
        }
        // Release the wheel only once the vehicle is centred AND the lateral
        // threat has stayed quiet — an alerted driver keeps correcting while
        // the automation keeps pulling towards the line.
        if self.steering
            && inputs.lateral_offset.abs() < 0.15
            && inputs.heading_error.abs() < 0.02
            && self.last_steer_threat.is_none_or(|lt| t - lt > 1.5)
        {
            self.steering = false;
        }
        let steer = if self.steering {
            Some(
                (-c.steer_gain_offset * inputs.lateral_offset
                    - c.steer_gain_heading * inputs.heading_error)
                    .clamp(-c.steer_limit, c.steer_limit),
            )
        } else {
            None
        };

        DriverAction { brake, steer }
    }

    /// Resets all driver state (new run).
    pub fn reset(&mut self) {
        *self = Self::new(self.config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_inputs(t: f64) -> DriverInputs {
        DriverInputs {
            time: t,
            fcw_alert: false,
            ldw_alert: false,
            ego_speed: 20.0,
            adas_accel: 0.0,
            ego_accel: 0.0,
            true_lead: None,
            cut_in: false,
            lateral_offset: 0.0,
            heading_error: 0.0,
            lane_line_distance: 0.8,
        }
    }

    fn run_driver(
        driver: &mut DriverModel,
        mut make: impl FnMut(f64) -> DriverInputs,
        t0: f64,
        t1: f64,
    ) -> Vec<(f64, DriverAction)> {
        let mut out = Vec::new();
        let mut t = t0;
        while t < t1 {
            out.push((t, driver.update(&make(t))));
            t += 0.01;
        }
        out
    }

    #[test]
    fn no_threat_no_action() {
        let mut d = DriverModel::new(DriverConfig::default());
        let log = run_driver(&mut d, quiet_inputs, 0.0, 5.0);
        assert!(log.iter().all(|(_, a)| a.brake.is_none() && a.steer.is_none()));
        assert!(d.first_brake_trigger().is_none());
    }

    #[test]
    fn fcw_brake_after_reaction_time() {
        let mut d = DriverModel::new(DriverConfig::default());
        let log = run_driver(
            &mut d,
            |t| DriverInputs {
                fcw_alert: true,
                true_lead: Some((20.0, 8.0)),
                ..quiet_inputs(t)
            },
            0.0,
            4.0,
        );
        let first_brake = log
            .iter()
            .find(|(_, a)| a.brake.is_some())
            .expect("driver must brake")
            .0;
        assert!((first_brake - 2.5).abs() < 0.05, "braked at {first_brake}");
        assert_eq!(d.first_brake_trigger().unwrap().1, BrakeTrigger::FcwAlert);
        assert!((d.first_brake_trigger().unwrap().0 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_reaction_time_brakes_sooner() {
        let mut d = DriverModel::new(DriverConfig::with_reaction_time(1.0));
        let log = run_driver(
            &mut d,
            |t| DriverInputs {
                fcw_alert: true,
                true_lead: Some((20.0, 8.0)),
                ..quiet_inputs(t)
            },
            0.0,
            3.0,
        );
        let first = log.iter().find(|(_, a)| a.brake.is_some()).unwrap().0;
        assert!((first - 1.0).abs() < 0.05);
    }

    #[test]
    fn brake_ramps_to_peak() {
        let mut d = DriverModel::new(DriverConfig::default());
        let log = run_driver(
            &mut d,
            |t| DriverInputs {
                fcw_alert: true,
                true_lead: Some((20.0, 8.0)),
                ..quiet_inputs(t)
            },
            0.0,
            4.0,
        );
        let peak = log
            .iter()
            .filter_map(|(_, a)| a.brake)
            .fold(0.0_f64, f64::max);
        assert!((peak - DriverConfig::default().brake_peak).abs() < 1e-9);
    }

    #[test]
    fn unsafe_following_distance_triggers() {
        let mut d = DriverModel::new(DriverConfig::default());
        let _ = run_driver(
            &mut d,
            |t| DriverInputs {
                true_lead: Some((3.0, 2.0)),
                ..quiet_inputs(t)
            },
            0.0,
            0.1,
        );
        assert_eq!(
            d.first_brake_trigger().unwrap().1,
            BrakeTrigger::UnsafeFollowingDistance
        );
    }

    #[test]
    fn unexpected_acceleration_triggers_after_sustained_burst() {
        let mut d = DriverModel::new(DriverConfig::default());
        // A brief blip is ignored…
        for t in 0..10 {
            let _ = d.update(&DriverInputs {
                true_lead: Some((15.0, 5.0)),
                ego_accel: 1.5,
                ..quiet_inputs(t as f64 * 0.01)
            });
        }
        let _ = d.update(&DriverInputs {
            true_lead: Some((15.0, 5.0)),
            ego_accel: 0.0,
            ..quiet_inputs(0.1)
        });
        assert!(d.first_brake_trigger().is_none());
        // …but a sustained burst registers.
        for t in 0..40 {
            let _ = d.update(&DriverInputs {
                true_lead: Some((15.0, 5.0)),
                ego_accel: 1.5,
                ..quiet_inputs(0.2 + t as f64 * 0.01)
            });
        }
        assert_eq!(
            d.first_brake_trigger().unwrap().1,
            BrakeTrigger::UnexpectedAcceleration
        );
    }

    #[test]
    fn overspeed_triggers() {
        let mut d = DriverModel::new(DriverConfig::default());
        let limit = DriverConfig::default().speed_limit;
        let _ = d.update(&DriverInputs {
            ego_speed: limit * 1.2,
            ..quiet_inputs(0.0)
        });
        assert_eq!(
            d.first_brake_trigger().unwrap().1,
            BrakeTrigger::UnsafeCruiseSpeed
        );
    }

    #[test]
    fn cut_in_triggers() {
        let mut d = DriverModel::new(DriverConfig::default());
        let _ = d.update(&DriverInputs {
            cut_in: true,
            ..quiet_inputs(0.0)
        });
        assert_eq!(d.first_brake_trigger().unwrap().1, BrakeTrigger::CutIn);
    }

    #[test]
    fn transient_threat_is_forgotten() {
        // Threat lasts 0.2 s then disappears; at the end of the reaction time
        // the driver should not slam the brakes.
        let mut d = DriverModel::new(DriverConfig::default());
        let log = run_driver(
            &mut d,
            |t| DriverInputs {
                fcw_alert: t < 0.2,
                true_lead: Some((60.0, 1.0)),
                ..quiet_inputs(t)
            },
            0.0,
            6.0,
        );
        assert!(log.iter().all(|(_, a)| a.brake.is_none()));
    }

    #[test]
    fn steering_corrects_lane_drift() {
        let mut d = DriverModel::new(DriverConfig::default());
        let log = run_driver(
            &mut d,
            |t| DriverInputs {
                lateral_offset: 1.2,
                lane_line_distance: 0.2,
                ..quiet_inputs(t)
            },
            0.0,
            4.0,
        );
        let (when, act) = log
            .iter()
            .find(|(_, a)| a.steer.is_some())
            .expect("driver must steer");
        assert!((when - 2.5).abs() < 0.05);
        // Off to the left → steer right (negative).
        assert!(act.steer.unwrap() < 0.0);
        assert!(d.first_steer_trigger().is_some());
    }

    #[test]
    fn steering_releases_once_centered() {
        let mut d = DriverModel::new(DriverConfig::default());
        // Trigger and engage.
        let _ = run_driver(
            &mut d,
            |t| DriverInputs {
                lateral_offset: 1.0,
                lane_line_distance: 0.1,
                ..quiet_inputs(t)
            },
            0.0,
            3.0,
        );
        assert!(d.is_steering());
        // Vehicle back in the center with the threat quiet: the driver holds
        // on briefly, then releases.
        let mut t = 3.0;
        while t < 6.0 {
            let _ = d.update(&DriverInputs {
                lateral_offset: 0.05,
                heading_error: 0.0,
                lane_line_distance: 0.8,
                ..quiet_inputs(t)
            });
            t += 0.01;
        }
        assert!(!d.is_steering());
    }

    #[test]
    fn brake_releases_after_threat_clears() {
        let mut d = DriverModel::new(DriverConfig::default());
        // Persistent threat for 4 s.
        let _ = run_driver(
            &mut d,
            |t| DriverInputs {
                fcw_alert: true,
                true_lead: Some((15.0, 6.0)),
                ..quiet_inputs(t)
            },
            0.0,
            4.0,
        );
        assert!(d.is_braking());
        // Threat gone; release after release_hold.
        let log = run_driver(&mut d, quiet_inputs, 4.0, 8.0);
        assert!(!d.is_braking());
        assert!(log.iter().any(|(_, a)| a.brake.is_none()));
    }

    #[test]
    fn ldw_alert_triggers_steering_channel() {
        let mut d = DriverModel::new(DriverConfig::default());
        let _ = d.update(&DriverInputs {
            ldw_alert: true,
            ..quiet_inputs(0.0)
        });
        assert!(d.first_steer_trigger().is_some());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut d = DriverModel::new(DriverConfig::default());
        let _ = d.update(&DriverInputs {
            fcw_alert: true,
            ..quiet_inputs(0.0)
        });
        d.reset();
        assert!(d.first_brake_trigger().is_none());
        assert!(!d.is_braking());
    }
}
