//! Intervention tagging shared with the flight recorder.
//!
//! Every safety mechanism in this crate can "fire" during a run; the flight
//! recorder (`adas-recorder`) records those firings as discrete events so a
//! hazard can be reconstructed as a timeline (fault onset → perception error
//! → intervention firings → outcome). This module gives each intervention a
//! stable tag with a wire code and a human-readable label, so the recorder's
//! binary format and its `explain` output never drift apart from the safety
//! stack's own vocabulary.

use serde::{Deserialize, Serialize};

/// The intervention channels a recorded event can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterventionKind {
    /// Forward-collision warning (alert only, no actuation).
    Fcw,
    /// Automatic emergency braking.
    Aeb,
    /// Human driver, longitudinal channel (brake).
    DriverBrake,
    /// Human driver, lateral channel (corrective steering).
    DriverSteer,
    /// ML recovery mode (Algorithm 1).
    Ml,
    /// Firmware safety check clamping a command.
    SafetyCheck,
}

impl InterventionKind {
    /// All kinds in wire-code order.
    pub const ALL: [InterventionKind; 6] = [
        InterventionKind::Fcw,
        InterventionKind::Aeb,
        InterventionKind::DriverBrake,
        InterventionKind::DriverSteer,
        InterventionKind::Ml,
        InterventionKind::SafetyCheck,
    ];

    /// Stable wire code (used by the flight-recorder binary format; never
    /// renumber).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            InterventionKind::Fcw => 0,
            InterventionKind::Aeb => 1,
            InterventionKind::DriverBrake => 2,
            InterventionKind::DriverSteer => 3,
            InterventionKind::Ml => 4,
            InterventionKind::SafetyCheck => 5,
        }
    }

    /// Inverse of [`Self::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Human-readable label used in timelines and divergence reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InterventionKind::Fcw => "FCW alert",
            InterventionKind::Aeb => "AEB braking",
            InterventionKind::DriverBrake => "driver brake",
            InterventionKind::DriverSteer => "driver steer",
            InterventionKind::Ml => "ML recovery",
            InterventionKind::SafetyCheck => "safety-check clamp",
        }
    }
}

impl std::fmt::Display for InterventionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_are_dense() {
        for (i, kind) in InterventionKind::ALL.into_iter().enumerate() {
            assert_eq!(usize::from(kind.code()), i);
            assert_eq!(InterventionKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(InterventionKind::from_code(99), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            InterventionKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), InterventionKind::ALL.len());
    }
}
