//! Lane departure warning (LDW).
//!
//! A camera-based alert that fires when the vehicle's body edge approaches a
//! lane line. Its output is one of the driver model's lateral triggers
//! (paper Table II). The warning consumes the perception module's lane-line
//! predictions — in the paper's threat model the adversarial road patch
//! poisons the *desired curvature* output, while lane-line positions remain
//! usable, which is why LDW still helps against ALC attacks.

use serde::{Deserialize, Serialize};

/// LDW parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdwConfig {
    /// Edge-to-line distance below which the warning fires, metres.
    pub warn_distance: f64,
    /// Additional early warning when drifting outward faster than this,
    /// m/s, inside `warn_distance + margin`.
    pub drift_rate: f64,
    /// Extra distance margin for the drift-based warning, metres.
    pub drift_margin: f64,
}

impl Default for LdwConfig {
    fn default() -> Self {
        Self {
            warn_distance: 0.30,
            drift_rate: 0.35,
            drift_margin: 0.30,
        }
    }
}

/// Stateful LDW (estimates the drift rate between frames).
#[derive(Debug, Clone)]
pub struct Ldw {
    config: LdwConfig,
    prev_distance: Option<f64>,
    first_alert_time: Option<f64>,
}

impl Ldw {
    /// Creates the warning system.
    #[must_use]
    pub fn new(config: LdwConfig) -> Self {
        Self {
            config,
            prev_distance: None,
            first_alert_time: None,
        }
    }

    /// Time of the first alert, if any.
    #[must_use]
    pub fn first_alert_time(&self) -> Option<f64> {
        self.first_alert_time
    }

    /// Evaluates the warning for one step.
    ///
    /// `edge_distance` is the (perceived) distance from the vehicle's body
    /// edge to the nearest lane line, metres; may be negative once the edge
    /// pokes over the line.
    pub fn evaluate(&mut self, edge_distance: f64, time: f64, dt: f64) -> bool {
        let c = self.config;
        let rate = match self.prev_distance {
            Some(prev) if dt > 0.0 => (prev - edge_distance) / dt, // positive = closing
            _ => 0.0,
        };
        self.prev_distance = Some(edge_distance);

        let alert = edge_distance < c.warn_distance
            || (rate > c.drift_rate && edge_distance < c.warn_distance + c.drift_margin);
        if alert && self.first_alert_time.is_none() {
            self.first_alert_time = Some(time);
        }
        alert
    }

    /// Resets the drift estimator (new run).
    pub fn reset(&mut self) {
        self.prev_distance = None;
        self.first_alert_time = None;
    }
}

impl Default for Ldw {
    fn default() -> Self {
        Self::new(LdwConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_vehicle_no_alert() {
        let mut ldw = Ldw::default();
        assert!(!ldw.evaluate(0.8, 0.0, 0.01));
        assert!(ldw.first_alert_time().is_none());
    }

    #[test]
    fn close_to_line_alerts() {
        let mut ldw = Ldw::default();
        assert!(ldw.evaluate(0.2, 1.0, 0.01));
        assert_eq!(ldw.first_alert_time(), Some(1.0));
    }

    #[test]
    fn fast_drift_alerts_early() {
        let mut ldw = Ldw::default();
        let _ = ldw.evaluate(0.55, 0.0, 0.01);
        // Closing at 1 m/s (0.01 m per 10 ms step) inside the margin band.
        assert!(ldw.evaluate(0.54, 0.01, 0.01));
    }

    #[test]
    fn slow_drift_far_from_line_is_fine() {
        let mut ldw = Ldw::default();
        let _ = ldw.evaluate(0.80, 0.0, 0.01);
        assert!(!ldw.evaluate(0.7999, 0.01, 0.01));
    }

    #[test]
    fn negative_distance_always_alerts() {
        let mut ldw = Ldw::default();
        assert!(ldw.evaluate(-0.1, 0.0, 0.01));
    }

    #[test]
    fn first_alert_latched() {
        let mut ldw = Ldw::default();
        let _ = ldw.evaluate(0.1, 2.0, 0.01);
        let _ = ldw.evaluate(0.05, 3.0, 0.01);
        assert_eq!(ldw.first_alert_time(), Some(2.0));
    }

    #[test]
    fn reset_clears() {
        let mut ldw = Ldw::default();
        let _ = ldw.evaluate(0.1, 2.0, 0.01);
        ldw.reset();
        assert!(ldw.first_alert_time().is_none());
    }
}
