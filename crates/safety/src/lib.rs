//! Safety interventions: AEBS/FCW, firmware safety checks, LDW, the human
//! driver model, and the priority arbiter that resolves conflicts among
//! them.
//!
//! This crate implements the paper's three levels of safety mechanism
//! (Section III-C):
//!
//! 1. **basic level** — a TTC-based phase-controlled [`Aebs`] with FCW,
//!    runnable on disabled / compromised / independent data sources;
//! 2. **application level** — a PANDA-replica [`SafetyCheck`] bounding
//!    control commands to ISO 22179-derived ranges;
//! 3. **human level** — a rule-based [`DriverModel`] reacting to FCW/LDW
//!    alerts and to directly observable hazards after a configurable
//!    reaction time.
//!
//! [`arbiter::arbitrate`] combines their outputs with the paper's priority
//! order (AEB highest, safety checking lowest).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aebs;
pub mod arbiter;
pub mod check;
pub mod driver;
pub mod event;
pub mod ldw;

pub use aebs::{Aebs, AebsConfig, AebsMode, AebsOutput, AebsStage};
pub use event::InterventionKind;
pub use arbiter::{arbitrate, ArbiterInputs, Arbitration, CommandSource};
pub use check::{CheckedCommand, SafetyCheck, SafetyCheckConfig};
pub use driver::{BrakeTrigger, DriverAction, DriverConfig, DriverInputs, DriverModel};
pub use ldw::{Ldw, LdwConfig};
