//! Systematic sweep tests of the AEBS phase table (paper Table I) and the
//! FCW horizon across the speed range the scenarios use.

use adas_safety::{Aebs, AebsConfig, AebsMode, AebsStage};

fn stage_at(ttc: f64, v: f64) -> AebsStage {
    let mut aebs = Aebs::new(AebsConfig::default(), AebsMode::Independent);
    let rs = 8.0;
    aebs.evaluate(Some((ttc * rs, rs)), v, 0.0).stage
}

#[test]
fn phase_boundaries_track_speed() {
    // Every phase boundary is speed-proportional (Eq. 4): doubling the
    // speed doubles each threshold.
    for v in [10.0_f64, 15.0, 20.0, 25.0] {
        let eps = 1e-6;
        assert_eq!(stage_at(v / 3.8 - eps, v), AebsStage::PartialOne, "v={v}");
        assert_eq!(stage_at(v / 5.8 - eps, v), AebsStage::PartialTwo, "v={v}");
        assert_eq!(stage_at(v / 9.8 - eps, v), AebsStage::Full, "v={v}");
        // Just above pb1: warning region (if within t_fcw).
        let just_above = v / 3.8 + eps;
        let cfg = AebsConfig::default();
        let t_fcw = cfg.driver_react_time + v / cfg.driver_decel;
        if just_above <= t_fcw {
            assert_eq!(stage_at(just_above, v), AebsStage::Warning, "v={v}");
        }
    }
}

#[test]
fn brake_levels_are_monotone_in_threat() {
    let v = 20.0;
    let mut levels = Vec::new();
    for ttc in [6.0, 4.5, 3.0, 1.5] {
        let mut aebs = Aebs::new(AebsConfig::default(), AebsMode::Independent);
        let rs = 8.0;
        let out = aebs.evaluate(Some((ttc * rs, rs)), v, 0.0);
        levels.push(out.brake.unwrap_or(0.0));
    }
    for pair in levels.windows(2) {
        assert!(pair[0] <= pair[1], "{levels:?}");
    }
    assert_eq!(levels.last(), Some(&1.0));
}

#[test]
fn fcw_horizon_matches_eq3_over_speed_range() {
    let aebs = Aebs::new(AebsConfig::default(), AebsMode::Independent);
    for v in [0.0, 5.0, 13.4, 22.35, 30.0] {
        let expected = 2.5 + v / 4.9;
        assert!((aebs.t_fcw(v) - expected).abs() < 1e-12, "v={v}");
    }
}

#[test]
fn full_brake_holds_to_standstill_through_recovering_ttc() {
    // Emergency braking must not feather off while the vehicle is still
    // moving, even as TTC recovers — this is what arrests lateral drifts.
    let mut aebs = Aebs::new(AebsConfig::default(), AebsMode::Independent);
    let out = aebs.evaluate(Some((4.0, 10.0)), 20.0, 0.0);
    assert_eq!(out.stage, AebsStage::Full);
    let mut v = 20.0;
    let mut t = 0.0;
    while v > 0.2 {
        v -= 8.8 * 0.01;
        t += 0.01;
        // Lead pulls away: opening gap, infinite TTC.
        let out = aebs.evaluate(Some((10.0, -2.0)), v, t);
        assert!(out.brake.is_some(), "released early at v={v:.1}");
    }
    let out = aebs.evaluate(Some((10.0, -2.0)), 0.05, t + 0.01);
    assert!(out.brake.is_none(), "must release at standstill");
}

#[test]
fn compromised_and_independent_differ_only_by_input() {
    // Identical inputs produce identical outputs regardless of mode label;
    // the paper's configuration difference is purely which data is fed.
    let mut comp = Aebs::new(AebsConfig::default(), AebsMode::Compromised);
    let mut indep = Aebs::new(AebsConfig::default(), AebsMode::Independent);
    for (rd, rs, v) in [(60.0, 9.0, 22.0), (30.0, 8.0, 20.0), (10.0, 8.0, 18.0)] {
        let a = comp.evaluate(Some((rd, rs)), v, 0.0);
        let b = indep.evaluate(Some((rd, rs)), v, 0.0);
        assert_eq!(a.stage, b.stage);
        comp.reset();
        indep.reset();
    }
}

#[test]
fn disabled_mode_is_inert_across_the_sweep() {
    let mut aebs = Aebs::new(AebsConfig::default(), AebsMode::Disabled);
    for ttc in [0.5, 1.0, 2.0, 5.0] {
        let out = aebs.evaluate(Some((ttc * 8.0, 8.0)), 20.0, 0.0);
        assert_eq!(out.stage, AebsStage::Inactive);
        assert!(!out.fcw_alert);
    }
    assert!(aebs.first_fcw_time().is_none());
}
