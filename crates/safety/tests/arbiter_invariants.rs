//! Property tests of the priority arbiter: for *any* combination of inputs
//! the paper's priority order and actuator sanity must hold.

use adas_control::AdasCommand;
use adas_safety::{arbitrate, ArbiterInputs, CommandSource, DriverAction};
use adas_simulator::VehicleParams;
use proptest::prelude::*;

fn adas_cmd(accel: f64, steer: f64) -> AdasCommand {
    AdasCommand {
        accel,
        steer,
        lead_engaged: true,
    }
}

proptest! {
    #[test]
    fn actuator_outputs_always_physical(
        accel in -12.0f64..4.0,
        steer in -0.6f64..0.6,
        ml_on in prop::bool::ANY,
        ml_accel in -12.0f64..4.0,
        driver_brake in prop::option::of(0.0f64..1.0),
        driver_steer in prop::option::of(-0.3f64..0.3),
        aeb in prop::option::of(0.85f64..1.0),
    ) {
        let params = VehicleParams::sedan();
        let inputs = ArbiterInputs {
            adas: adas_cmd(accel, steer),
            ml: ml_on.then(|| adas_cmd(ml_accel, steer * 0.5)),
            driver: DriverAction {
                brake: driver_brake,
                steer: driver_steer,
            },
            aeb_brake: aeb,
        };
        let out = arbitrate(&inputs, &params);
        let cmd = out.command.sanitized(&params);
        prop_assert!((0.0..=1.0).contains(&cmd.gas));
        prop_assert!((0.0..=1.0).contains(&cmd.brake));
        prop_assert!(cmd.steer.abs() <= params.max_steer_angle + 1e-12);
        // Never gas and emergency-brake simultaneously.
        if out.command.brake > 0.5 {
            prop_assert_eq!(out.command.gas, 0.0);
        }
    }

    #[test]
    fn aeb_always_wins_longitudinal(
        accel in -12.0f64..4.0,
        driver_brake in prop::option::of(0.0f64..1.0),
        aeb_level in 0.85f64..1.0,
    ) {
        let params = VehicleParams::sedan();
        let inputs = ArbiterInputs {
            adas: adas_cmd(accel, 0.01),
            ml: None,
            driver: DriverAction {
                brake: driver_brake,
                steer: None,
            },
            aeb_brake: Some(aeb_level),
        };
        let out = arbitrate(&inputs, &params);
        prop_assert_eq!(out.longitudinal, CommandSource::Aeb);
        prop_assert!((out.command.brake - aeb_level).abs() < 1e-12);
    }

    #[test]
    fn driver_steering_suppressed_exactly_when_aeb_active(
        driver_steer in -0.3f64..0.3,
        aeb in prop::option::of(0.85f64..1.0),
    ) {
        let params = VehicleParams::sedan();
        let adas_steer = 0.015;
        let inputs = ArbiterInputs {
            adas: adas_cmd(0.5, adas_steer),
            ml: None,
            driver: DriverAction {
                brake: None,
                steer: Some(driver_steer),
            },
            aeb_brake: aeb,
        };
        let out = arbitrate(&inputs, &params);
        if aeb.is_some() {
            // The paper's conflict: automation owns the wheel during AEB.
            prop_assert_eq!(out.lateral, CommandSource::Adas);
            prop_assert!((out.command.steer - adas_steer).abs() < 1e-12);
        } else {
            prop_assert_eq!(out.lateral, CommandSource::Driver);
            prop_assert!((out.command.steer - driver_steer).abs() < 1e-12);
        }
    }

    #[test]
    fn priority_order_is_total(
        ml_on in prop::bool::ANY,
        driver_brakes in prop::bool::ANY,
        aeb_on in prop::bool::ANY,
    ) {
        let params = VehicleParams::sedan();
        let inputs = ArbiterInputs {
            adas: adas_cmd(1.0, 0.0),
            ml: ml_on.then(|| adas_cmd(-1.0, 0.0)),
            driver: DriverAction {
                brake: driver_brakes.then_some(0.55),
                steer: None,
            },
            aeb_brake: aeb_on.then_some(0.9),
        };
        let out = arbitrate(&inputs, &params);
        let expected = if aeb_on {
            CommandSource::Aeb
        } else if driver_brakes {
            CommandSource::Driver
        } else if ml_on {
            CommandSource::Ml
        } else {
            CommandSource::Adas
        };
        prop_assert_eq!(out.longitudinal, expected);
    }
}
